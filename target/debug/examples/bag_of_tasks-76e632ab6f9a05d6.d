/root/repo/target/debug/examples/bag_of_tasks-76e632ab6f9a05d6.d: examples/bag_of_tasks.rs

/root/repo/target/debug/examples/bag_of_tasks-76e632ab6f9a05d6: examples/bag_of_tasks.rs

examples/bag_of_tasks.rs:

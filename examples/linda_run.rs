//! `linda_run` — execute an FT-Linda DSL program on a simulated cluster.
//!
//! ```text
//! cargo run --example linda_run -- path/to/program.linda [hosts]
//! cargo run --example linda_run            # runs a built-in demo program
//! ```
//!
//! Statements execute in source order, round-robined across the hosts.
//! `stable` declarations are created on the cluster in declaration order
//! (so DSL ids line up with runtime ids); the final contents of every
//! declared stable space are printed at the end.

use ft_lcc::Compiler;
use ftlinda::Cluster;

const DEMO: &str = r#"
    # Demo: a tiny atomic inventory workflow.
    stable shop;

    out(shop, "stock", "apples", 10);
    out(shop, "till", 0);

    # Sell three apples: stock down, till up, atomically.
    < in(shop, "stock", "apples", ?int s) =>
        in(shop, "till", ?int t);
        out(shop, "stock", "apples", s - 3);
        out(shop, "till", t + 3) >

    # Audit with strong rdp (definitive answer).
    rdp(shop, "stock", "apples", ?int);
"#;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let source = match args.get(1) {
        Some(path) => {
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => DEMO.to_owned(),
    };
    let hosts: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);

    // Compile.
    let mut compiler = Compiler::new();
    let program = match compiler.compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compile error at {e}");
            std::process::exit(1);
        }
    };
    println!(
        "compiled {} statement(s), {} stable space(s), {} catalog signature(s)",
        program.statements.len(),
        program.declared_stables.len(),
        program.catalog.len()
    );

    // Bring up the cluster and create the declared spaces in order.
    let (cluster, rts) = Cluster::new(hosts);
    let mut spaces = Vec::new();
    for name in &program.declared_stables {
        let id = rts[0].create_stable_ts(name).unwrap();
        spaces.push((name.clone(), id));
    }

    // Execute.
    for (i, ags) in program.statements.iter().enumerate() {
        let rt = &rts[i % rts.len()];
        match rt.execute(ags) {
            Ok(out) => {
                if out.bindings.is_empty() {
                    println!("stmt {i:>2} @ {}: branch {}", rt.host(), out.branch);
                } else {
                    println!(
                        "stmt {i:>2} @ {}: branch {} bound {:?}",
                        rt.host(),
                        out.branch,
                        out.bindings
                    );
                }
            }
            Err(e) => println!("stmt {i:>2}: FAILED — {e}"),
        }
    }

    // Dump final state.
    for (name, id) in &spaces {
        println!("--- {name} ---");
        for t in rts[0].snapshot(*id).unwrap_or_default() {
            println!("  {t}");
        }
    }
    cluster.shutdown();
}

/root/repo/target/debug/deps/linda_tuple-d2e0cf1a1928fec0.d: crates/tuple/src/lib.rs crates/tuple/src/codec.rs crates/tuple/src/pattern.rs crates/tuple/src/signature.rs crates/tuple/src/tuple.rs crates/tuple/src/value.rs

/root/repo/target/debug/deps/linda_tuple-d2e0cf1a1928fec0: crates/tuple/src/lib.rs crates/tuple/src/codec.rs crates/tuple/src/pattern.rs crates/tuple/src/signature.rs crates/tuple/src/tuple.rs crates/tuple/src/value.rs

crates/tuple/src/lib.rs:
crates/tuple/src/codec.rs:
crates/tuple/src/pattern.rs:
crates/tuple/src/signature.rs:
crates/tuple/src/tuple.rs:
crates/tuple/src/value.rs:

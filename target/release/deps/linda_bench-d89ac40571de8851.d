/root/repo/target/release/deps/linda_bench-d89ac40571de8851.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblinda_bench-d89ac40571de8851.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblinda_bench-d89ac40571de8851.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

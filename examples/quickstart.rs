//! Quickstart: stable tuple spaces, atomic guarded statements, and the
//! failure tuple, in ~60 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ftlinda::{Ags, Cluster, HostId, MatchField as MF, Operand, TypeTag};
use linda_tuple::{pat, tuple};

fn main() {
    // A simulated network of 3 workstations, each holding a replica of
    // every stable tuple space (the paper's prototype used 3 Sun-3s).
    let (cluster, rts) = Cluster::new(3);

    // Stable tuple spaces are created by name; all hosts resolve the same
    // name to the same space.
    let ts = rts[0].create_stable_ts("main").unwrap();

    // Classic Linda, made stable: out/rd/in are single-op AGSs.
    rts[0].out(ts, tuple!("greeting", "hello", 1)).unwrap();
    let t = rts[2].rd(ts, &pat!("greeting", ?str, ?int)).unwrap();
    println!("host2 read {t}");

    // The paper's flagship example: an atomic distributed-variable
    // update. In plain Linda a crash between `in` and `out` loses the
    // variable; in FT-Linda the pair is one atomic guarded statement
    // disseminated in a single multicast.
    rts[0].out(ts, tuple!("count", 0)).unwrap();
    let increment = Ags::builder()
        .guard_in(ts, vec![MF::actual("count"), MF::bind(TypeTag::Int)])
        .out(ts, vec![Operand::cst("count"), Operand::formal(0).add(1)])
        .build()
        .unwrap();
    for rt in &rts {
        rt.execute(&increment).unwrap();
    }
    let t = rts[1].rd(ts, &pat!("count", ?int)).unwrap();
    println!("after 3 atomic increments: {t}");
    assert_eq!(t, tuple!("count", 3));

    // Strong inp: a None answer is an absolute guarantee, agreed by every
    // replica at the same point of the total order.
    assert!(rts[1].inp(ts, &pat!("missing", ?int)).unwrap().is_none());

    // Failures become fail-stop: crash a host and the runtime deposits a
    // distinguished ("failure", host) tuple into every stable space.
    cluster.crash(HostId(2));
    let f = rts[0].in_(ts, &pat!("failure", ?int)).unwrap();
    println!("observed failure tuple: {f}");
    assert_eq!(f, tuple!("failure", 2));

    // Tuple spaces survive the crash: the counter is still there.
    assert_eq!(
        rts[1].rd(ts, &pat!("count", ?int)).unwrap(),
        tuple!("count", 3)
    );
    println!("stable TS contents survived the crash — done.");
    cluster.shutdown();
}

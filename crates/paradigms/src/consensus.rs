//! Distributed consensus on top of AGS disjunction (paper §2.3).
//!
//! The paper cites the impossibility of solving consensus with single-op
//! Linda atomicity (its reference 38) as a key motivation for multi-op AGSs. With
//! disjunction the solution is one statement:
//!
//! ```text
//! ⟨ rd(ts, "decided", key, ?v) ⇒                      (someone decided)
//! or true ⇒ out(ts, "decided", key, my_value) ⟩       (I decide)
//! ```
//!
//! Because branch selection happens atomically against the totally
//! ordered replica state, exactly one proposer's `true` branch fires
//! first and every later proposer's `rd` branch observes that value —
//! agreement, validity, and (crash-)termination all follow from the
//! total order. Survivors always decide even if the winner crashes right
//! afterwards, since the decision lives in a stable tuple space.

use ftlinda::{Ags, FtError, MatchField as MF, Operand, Runtime, TsId};
use linda_tuple::{TypeTag, Value};

/// Propose `my_value` for the consensus instance `key`; returns the
/// decided value (which is `my_value` iff this proposer won).
pub fn propose(rt: &Runtime, ts: TsId, key: &str, my_value: i64) -> Result<i64, FtError> {
    let ags = Ags::builder()
        .guard_rd(
            ts,
            vec![
                MF::actual("decided"),
                MF::actual(key),
                MF::bind(TypeTag::Int),
            ],
        )
        .or()
        .guard_true()
        .out(
            ts,
            vec![
                Operand::cst("decided"),
                Operand::cst(key),
                Operand::cst(my_value),
            ],
        )
        .build()?;
    let o = rt.execute(&ags)?;
    Ok(match o.branch {
        0 => o.bindings[0].as_int().expect("decided value"),
        _ => my_value,
    })
}

/// Read the decided value if any (strong semantics: `None` is definitive
/// at this point of the total order).
pub fn decided(rt: &Runtime, ts: TsId, key: &str) -> Result<Option<i64>, FtError> {
    let p = linda_tuple::Pattern::new(vec![
        linda_tuple::PatField::Actual(Value::Str("decided".into())),
        linda_tuple::PatField::Actual(Value::Str(key.into())),
        linda_tuple::PatField::Formal(TypeTag::Int),
    ]);
    Ok(rt
        .rdp(ts, &p)?
        .map(|t| t[2].as_int().expect("decided value")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftlinda::{Cluster, HostId};

    #[test]
    fn single_proposer_decides_own_value() {
        let (cluster, rts) = Cluster::new(2);
        let ts = rts[0].create_stable_ts("cons").unwrap();
        assert_eq!(propose(&rts[0], ts, "k", 42).unwrap(), 42);
        assert_eq!(decided(&rts[1], ts, "k").unwrap(), Some(42));
        cluster.shutdown();
    }

    #[test]
    fn concurrent_proposers_agree() {
        let (cluster, rts) = Cluster::new(3);
        let ts = rts[0].create_stable_ts("cons").unwrap();
        let handles: Vec<_> = rts
            .iter()
            .enumerate()
            .map(|(i, rt)| {
                let rt = rt.clone();
                std::thread::spawn(move || propose(&rt, ts, "k", 100 + i as i64).unwrap())
            })
            .collect();
        let decisions: Vec<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(decisions.windows(2).all(|w| w[0] == w[1]), "{decisions:?}");
        assert!((100..103).contains(&decisions[0]), "validity");
        cluster.shutdown();
    }

    #[test]
    fn decision_survives_winner_crash() {
        let (cluster, rts) = Cluster::new(3);
        let ts = rts[0].create_stable_ts("cons").unwrap();
        let v = propose(&rts[2], ts, "k", 7).unwrap();
        assert_eq!(v, 7);
        cluster.crash(HostId(2));
        // Survivors still see the decision (stable TS).
        assert_eq!(propose(&rts[0], ts, "k", 99).unwrap(), 7);
        assert_eq!(decided(&rts[1], ts, "k").unwrap(), Some(7));
        cluster.shutdown();
    }

    #[test]
    fn independent_keys_independent_decisions() {
        let (cluster, rts) = Cluster::new(2);
        let ts = rts[0].create_stable_ts("cons").unwrap();
        assert_eq!(propose(&rts[0], ts, "a", 1).unwrap(), 1);
        assert_eq!(propose(&rts[1], ts, "b", 2).unwrap(), 2);
        assert_eq!(decided(&rts[0], ts, "a").unwrap(), Some(1));
        assert_eq!(decided(&rts[0], ts, "b").unwrap(), Some(2));
        assert_eq!(decided(&rts[0], ts, "c").unwrap(), None);
        cluster.shutdown();
    }
}

/root/repo/target/debug/deps/consul_sim-a5c695d93951d441.d: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libconsul_sim-a5c695d93951d441.rmeta: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs Cargo.toml

crates/consul/src/lib.rs:
crates/consul/src/isis.rs:
crates/consul/src/net.rs:
crates/consul/src/order.rs:
crates/consul/src/sequencer.rs:
crates/consul/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

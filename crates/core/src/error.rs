//! Errors surfaced by the FT-Linda client API.

use ftlinda_kernel::ExecError;
use std::fmt;

/// Client-visible failure of an FT-Linda operation.
#[derive(Debug, Clone, PartialEq)]
pub enum FtError {
    /// The AGS executed but its body failed deterministically (state was
    /// rolled back at every replica).
    Exec(ExecError),
    /// The local runtime has shut down (cluster torn down or host
    /// crashed under this client).
    Shutdown,
    /// An `execute_timeout` deadline expired while the AGS was still
    /// blocked. The AGS remains queued and may still fire later; the
    /// caller should treat the handle as abandoned.
    Timeout,
    /// The AGS failed static validation before submission.
    Invalid(ftlinda_ags::AgsError),
    /// Under a sharded deployment, the AGS's signature buckets could not
    /// be determined statically, so no shard (or shard set) can be
    /// chosen for it. Only degenerate AGSs — ones containing an operand
    /// that could never evaluate — are undecidable; well-formed AGSs
    /// always route.
    Unroutable,
    /// This host's replica was replaced wholesale by a checkpoint image
    /// (it fell behind the cluster's log-compaction watermark and caught
    /// up via state transfer). In-flight calls at the jump are
    /// indeterminate — the AGS may or may not have executed inside the
    /// restored state — so the caller must re-inspect and resubmit
    /// idempotently.
    StateTransfer,
    /// The cluster's coordinator evicted this host on a false failure
    /// suspicion (missed heartbeats) while the call was in flight. The
    /// host re-admits itself through the snapshot rejoin path, but
    /// whether this call's record landed inside its Fail/Join bracket
    /// is indeterminate — re-inspect and resubmit idempotently.
    Evicted,
}

impl fmt::Display for FtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtError::Exec(e) => write!(f, "AGS execution failed: {e}"),
            FtError::Shutdown => write!(f, "FT-Linda runtime shut down"),
            FtError::Timeout => write!(f, "timed out waiting for AGS"),
            FtError::Invalid(e) => write!(f, "invalid AGS: {e}"),
            FtError::Unroutable => {
                write!(
                    f,
                    "AGS signature buckets not statically decidable for sharding"
                )
            }
            FtError::StateTransfer => {
                write!(f, "replica state replaced by checkpoint transfer")
            }
            FtError::Evicted => {
                write!(
                    f,
                    "host evicted by the coordinator (false failure suspicion)"
                )
            }
        }
    }
}

impl std::error::Error for FtError {}

impl From<ExecError> for FtError {
    fn from(e: ExecError) -> Self {
        FtError::Exec(e)
    }
}

impl From<ftlinda_ags::AgsError> for FtError {
    fn from(e: ftlinda_ags::AgsError) -> Self {
        FtError::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(FtError::Shutdown.to_string().contains("shut down"));
        assert!(FtError::Timeout.to_string().contains("timed out"));
        assert!(FtError::Exec(ExecError::BodyUnmatched { op_index: 0 })
            .to_string()
            .contains("execution failed"));
        assert!(FtError::Invalid(ftlinda_ags::AgsError::NoBranches)
            .to_string()
            .contains("invalid"));
        assert!(FtError::StateTransfer.to_string().contains("checkpoint"));
        assert!(FtError::Evicted.to_string().contains("evicted"));
    }
}

//! # ftlinda-kernel
//!
//! The replicated tuple-space state machine of FT-Linda. Every host runs
//! one [`Kernel`] fed the identical totally-ordered delivery stream from
//! the Consul layer; the kernel holds the replicas of all stable tuple
//! spaces, executes atomic guarded statements with exact rollback,
//! manages the deterministic blocked-AGS queue, and deposits the
//! distinguished failure tuple when membership changes are delivered.
//!
//! The `ftlinda` crate wires kernels to `consul-sim` groups and exposes
//! the user-facing API; this crate is the deterministic core that the
//! replica-convergence property tests exercise directly.

#![warn(missing_docs)]

mod checkpoint;
mod exec;
#[path = "kernel.rs"]
mod kernel_mod;
mod proto;

pub use checkpoint::{CheckpointError, KernelCheckpoint};
pub use exec::{guard_labels, probe_guard, try_execute, ExecError, TryOutcome};
pub use kernel_mod::{
    BlockedReport, IntrospectReport, Kernel, KernelNote, ShardSpec, SpaceReport, StarvationReport,
    XStageResult, FAILURE_TUPLE_HEAD,
};
pub use linda_space::{IndexReport, MatchStats, SignatureOccupancy, StoreConfig};
pub use proto::{decode_request, encode_request, Request, SigBucket};

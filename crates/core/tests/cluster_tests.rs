//! End-to-end tests of the FT-Linda runtime over the simulated cluster.

use ftlinda::{Ags, Cluster, FtError, HostId, MatchField as MF, NetConfig, Operand, TypeTag};
use linda_tuple::{pat, tuple, Value};
use std::time::Duration;

#[test]
fn out_on_one_host_in_on_another() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, tuple!("msg", 42)).unwrap();
    let got = rts[2].in_(ts, &pat!("msg", ?int)).unwrap();
    assert_eq!(got, tuple!("msg", 42));
    // Withdrawn everywhere (wait for lagging kernels to catch up to the
    // withdrawing host before asserting).
    for rt in &rts {
        assert!(rt.wait_applied(rts[2].applied_seq(), Duration::from_secs(5)));
        assert_eq!(rt.stable_len(ts), Some(0));
    }
    cluster.shutdown();
}

#[test]
fn blocking_in_wakes_on_remote_out() {
    let (cluster, rts) = Cluster::new(2);
    let ts = rts[0].create_stable_ts("main").unwrap();
    let rt1 = rts[1].clone();
    let waiter = std::thread::spawn(move || rt1.in_(ts, &pat!("later", ?int)).unwrap());
    std::thread::sleep(Duration::from_millis(50));
    rts[0].out(ts, tuple!("later", 7)).unwrap();
    assert_eq!(waiter.join().unwrap(), tuple!("later", 7));
    cluster.shutdown();
}

#[test]
fn concurrent_counter_increments_lose_nothing() {
    // The paper's motivating distributed-variable example: with atomic
    // in+out, no increment is lost regardless of interleaving.
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("ctr").unwrap();
    rts[0].out(ts, tuple!("count", 0)).unwrap();
    let per = 25;
    let handles: Vec<_> = rts
        .iter()
        .map(|rt| {
            let rt = rt.clone();
            std::thread::spawn(move || {
                let ags = Ags::builder()
                    .guard_in(ts, vec![MF::actual("count"), MF::bind(TypeTag::Int)])
                    .out(ts, vec![Operand::cst("count"), Operand::formal(0).add(1)])
                    .build()
                    .unwrap();
                for _ in 0..per {
                    rt.execute(&ags).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let t = rts[1].rd(ts, &pat!("count", ?int)).unwrap();
    assert_eq!(t, tuple!("count", 3 * per as i64));
    cluster.shutdown();
}

#[test]
fn strong_inp_and_rdp() {
    let (cluster, rts) = Cluster::new(2);
    let ts = rts[0].create_stable_ts("main").unwrap();
    assert_eq!(rts[1].inp(ts, &pat!("x", ?int)).unwrap(), None);
    rts[0].out(ts, tuple!("x", 1)).unwrap();
    assert_eq!(
        rts[1].rdp(ts, &pat!("x", ?int)).unwrap(),
        Some(tuple!("x", 1))
    );
    assert_eq!(
        rts[1].inp(ts, &pat!("x", ?int)).unwrap(),
        Some(tuple!("x", 1))
    );
    assert_eq!(rts[0].inp(ts, &pat!("x", ?int)).unwrap(), None);
    cluster.shutdown();
}

#[test]
fn replicas_converge_after_traffic() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    for i in 0..20 {
        rts[(i % 3) as usize].out(ts, tuple!("n", i)).unwrap();
    }
    for _ in 0..10 {
        rts[1].in_(ts, &pat!("n", ?int)).unwrap();
    }
    // Wait for all replicas to catch up to the same seq.
    let target = rts[1].applied_seq();
    for _ in 0..200 {
        if rts.iter().all(|r| r.applied_seq() >= target) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let d0 = rts[0].digest();
    assert_eq!(d0, rts[1].digest());
    assert_eq!(d0, rts[2].digest());
    cluster.shutdown();
}

#[test]
fn failure_tuple_appears_in_every_stable_space() {
    let (cluster, rts) = Cluster::new(3);
    let a = rts[0].create_stable_ts("a").unwrap();
    let b = rts[0].create_stable_ts("b").unwrap();
    cluster.crash(HostId(2));
    // Blocking in on the failure tuple is the paper's monitor idiom.
    let fa = rts[0].rd(a, &pat!("failure", ?int)).unwrap();
    assert_eq!(fa, tuple!("failure", 2));
    let fb = rts[1].rd(b, &pat!("failure", ?int)).unwrap();
    assert_eq!(fb, tuple!("failure", 2));
    cluster.shutdown();
}

#[test]
fn failure_event_subscription() {
    let (cluster, rts) = Cluster::new(3);
    let _ts = rts[0].create_stable_ts("main").unwrap();
    let events = rts[0].events();
    cluster.crash(HostId(1));
    let ev = events.recv_timeout(Duration::from_secs(3)).unwrap();
    assert_eq!(ev, ftlinda::FtEvent::HostFailed(HostId(1)));
    cluster.shutdown();
}

#[test]
fn crash_and_restart_rejoins_with_converged_state() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    for i in 0..10 {
        rts[0].out(ts, tuple!("k", i)).unwrap();
    }
    cluster.crash(HostId(2));
    rts[0].rd(ts, &pat!("failure", 2)).unwrap();
    rts[0].out(ts, tuple!("post-crash")).unwrap();
    let rt2 = cluster.restart(HostId(2));
    // Wait for replay to converge.
    let target = rts[0].applied_seq();
    for _ in 0..300 {
        if rt2.applied_seq() >= target {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(rt2.applied_seq() >= target, "joiner caught up");
    assert_eq!(rt2.snapshot(ts), rts[0].snapshot(ts));
    // And the restarted host can participate again.
    rt2.out(ts, tuple!("back")).unwrap();
    assert_eq!(rts[1].in_(ts, &pat!("back")).unwrap(), tuple!("back"));
    cluster.shutdown();
}

#[test]
fn scratch_space_receives_ags_output() {
    let (cluster, rts) = Cluster::new(2);
    let ts = rts[0].create_stable_ts("main").unwrap();
    let (sid, scratch) = rts[1].create_scratch();
    rts[0].out(ts, tuple!("data", 5)).unwrap();
    // Host 1 atomically withdraws and drops a local copy into scratch.
    let ags = Ags::builder()
        .guard_in(ts, vec![MF::actual("data"), MF::bind(TypeTag::Int)])
        .out(sid, vec![Operand::cst("local"), Operand::formal(0)])
        .build()
        .unwrap();
    rts[1].execute(&ags).unwrap();
    assert_eq!(
        scratch.in_(&pat!("local", ?int)).unwrap(),
        tuple!("local", 5)
    );
    // Host 0's kernel did NOT materialize anything locally (scratch is
    // owner-local): its scratch table is empty (no scratch created).
    assert!(rts[0].wait_applied(rts[1].applied_seq(), Duration::from_secs(5)));
    assert_eq!(rts[0].stable_len(ts), Some(0));
    cluster.shutdown();
}

#[test]
fn execute_timeout_on_blocked_ags() {
    let (cluster, rts) = Cluster::new(2);
    let ts = rts[0].create_stable_ts("main").unwrap();
    let ags = Ags::in_one(ts, vec![MF::actual("never")]).unwrap();
    let r = rts[0].execute_timeout(&ags, Duration::from_millis(100));
    assert_eq!(r, Err(FtError::Timeout));
    assert_eq!(rts[0].blocked_len(), 1);
    cluster.shutdown();
}

#[test]
fn body_failure_reported_to_client() {
    let (cluster, rts) = Cluster::new(2);
    let ts = rts[0].create_stable_ts("main").unwrap();
    let ags = Ags::builder()
        .guard_true()
        .in_(ts, vec![MF::actual("absent")])
        .build()
        .unwrap();
    match rts[1].execute(&ags) {
        Err(FtError::Exec(e)) => assert!(e.to_string().contains("no matching")),
        other => panic!("{other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn disjunction_over_cluster() {
    let (cluster, rts) = Cluster::new(2);
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, tuple!("b", 2)).unwrap();
    let ags = Ags::builder()
        .guard_in(ts, vec![MF::actual("a"), MF::bind(TypeTag::Int)])
        .or()
        .guard_in(ts, vec![MF::actual("b"), MF::bind(TypeTag::Int)])
        .build()
        .unwrap();
    let out = rts[1].execute(&ags).unwrap();
    assert_eq!(out.branch, 1);
    assert_eq!(out.bindings, vec![Value::Int(2)]);
    cluster.shutdown();
}

#[test]
fn one_multicast_per_ags_regardless_of_body_size() {
    // E9's core claim at the API level: adding ops to an AGS does not add
    // messages.
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    std::thread::sleep(Duration::from_millis(50));

    cluster.reset_net_stats();
    rts[1].out(ts, tuple!("single")).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let (small, _) = cluster.net_stats();

    cluster.reset_net_stats();
    let mut b = Ags::builder().guard_true();
    for i in 0..10 {
        b = b.out(ts, vec![Operand::cst("multi"), Operand::cst(i as i64)]);
    }
    rts[1].execute(&b.build().unwrap()).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let (big, _) = cluster.net_stats();

    assert_eq!(small, big, "10-op AGS costs the same messages as 1-op");
    cluster.shutdown();
}

#[test]
fn latency_cluster_works() {
    let (cluster, rts) = Cluster::builder()
        .hosts(3)
        .net(NetConfig::lan(Duration::from_micros(300)))
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[2].out(ts, tuple!("hi")).unwrap();
    assert_eq!(rts[1].in_(ts, &pat!("hi")).unwrap(), tuple!("hi"));
    cluster.shutdown();
}

#[test]
fn create_stable_ts_is_idempotent_across_hosts() {
    let (cluster, rts) = Cluster::new(3);
    let a = rts[0].create_stable_ts("shared").unwrap();
    let b = rts[1].create_stable_ts("shared").unwrap();
    let c = rts[2].create_stable_ts("other").unwrap();
    assert_eq!(a, b);
    assert_ne!(a, c);
    cluster.shutdown();
}

#[test]
fn heartbeat_detection_produces_failure_tuple() {
    // No oracle: the crash is discovered from ping silence, then ordered
    // into the stream and converted to a failure tuple like any other.
    let (cluster, rts) = Cluster::builder()
        .hosts(3)
        .heartbeats(Duration::from_millis(5), Duration::from_millis(40))
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, tuple!("seed")).unwrap();
    cluster.crash(HostId(2));
    let f = rts[0].in_(ts, &pat!("failure", ?int)).unwrap();
    assert_eq!(f, tuple!("failure", 2));
    // Traffic continues normally post-detection.
    rts[1].out(ts, tuple!("after")).unwrap();
    assert_eq!(rts[0].in_(ts, &pat!("after")).unwrap(), tuple!("after"));
    cluster.shutdown();
}

#[test]
fn execute_async_pipelines_submissions() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    // Fire 20 outs without waiting, then await them all.
    let handles: Vec<_> = (0..20i64)
        .map(|i| rts[1].execute_async(&Ags::out_one(ts, vec![Operand::cst("n"), Operand::cst(i)])))
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    assert!(rts[2].wait_applied(rts[1].applied_seq(), Duration::from_secs(5)));
    assert_eq!(rts[2].stable_len(ts), Some(20));
    // Async blocking in with ready-probe.
    let h = rts[2].execute_async(&Ags::in_one(ts, vec![MF::actual("never-there")]).unwrap());
    assert!(!h.is_ready());
    assert_eq!(
        h.wait_timeout(Duration::from_millis(50)),
        Err(FtError::Timeout)
    );
    cluster.shutdown();
}

#[test]
fn host_joined_event_on_restart() {
    let (cluster, rts) = Cluster::new(3);
    let _ts = rts[0].create_stable_ts("main").unwrap();
    let events = rts[0].events();
    cluster.crash(HostId(2));
    assert_eq!(
        events.recv_timeout(Duration::from_secs(3)).unwrap(),
        ftlinda::FtEvent::HostFailed(HostId(2))
    );
    let _rt2 = cluster.restart(HostId(2));
    assert_eq!(
        events.recv_timeout(Duration::from_secs(5)).unwrap(),
        ftlinda::FtEvent::HostJoined(HostId(2))
    );
    cluster.shutdown();
}

#[test]
fn move_between_stable_spaces_over_cluster() {
    let (cluster, rts) = Cluster::new(2);
    let a = rts[0].create_stable_ts("a").unwrap();
    let b = rts[0].create_stable_ts("b").unwrap();
    for i in 0..5 {
        rts[0].out(a, tuple!("job", i)).unwrap();
    }
    rts[0].out(a, tuple!("keep")).unwrap();
    let ags = Ags::builder()
        .guard_true()
        .move_(a, b, vec![MF::actual("job"), MF::bind(TypeTag::Int)])
        .build()
        .unwrap();
    rts[1].execute(&ags).unwrap();
    // execute() returns when host 1's kernel applies; host 0 may lag.
    assert!(rts[0].wait_applied(rts[1].applied_seq(), Duration::from_secs(5)));
    assert_eq!(rts[0].stable_len(a), Some(1));
    assert_eq!(rts[0].stable_len(b), Some(5));
    // Age order preserved across the move.
    assert_eq!(rts[1].in_(b, &pat!("job", ?int)).unwrap(), tuple!("job", 0));
    cluster.shutdown();
}

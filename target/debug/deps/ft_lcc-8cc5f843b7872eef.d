/root/repo/target/debug/deps/ft_lcc-8cc5f843b7872eef.d: crates/lcc/src/lib.rs crates/lcc/src/lexer.rs crates/lcc/src/parser.rs crates/lcc/src/pretty.rs Cargo.toml

/root/repo/target/debug/deps/libft_lcc-8cc5f843b7872eef.rmeta: crates/lcc/src/lib.rs crates/lcc/src/lexer.rs crates/lcc/src/parser.rs crates/lcc/src/pretty.rs Cargo.toml

crates/lcc/src/lib.rs:
crates/lcc/src/lexer.rs:
crates/lcc/src/parser.rs:
crates/lcc/src/pretty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

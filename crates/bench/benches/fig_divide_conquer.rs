//! E6 — fault-tolerant divide-and-conquer (adaptive quadrature).
//!
//! Completion time of ∫sin over [0,π] at decreasing tolerance (more
//! interval splitting ⇒ more AGS traffic) and worker-count scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use ftlinda::Cluster;
use linda_paradigms::DivideConquer;
use std::time::Duration;

fn run_once(workers: usize, tol: f64) -> f64 {
    let (cluster, rts) = Cluster::new(workers as u32 + 1);
    let dc = DivideConquer::create(&rts[0], "quad", 0.0, std::f64::consts::PI).unwrap();
    let handles: Vec<_> = (0..workers)
        .map(|w| dc.spawn_worker(rts[w + 1].clone(), f64::sin, tol))
        .collect();
    let v = dc.wait_result(&rts[0]).unwrap();
    for h in handles {
        h.join().unwrap();
    }
    cluster.shutdown();
    v
}

fn bench(c: &mut Criterion) {
    println!("\nE6 — adaptive quadrature of sin over [0, π]:");
    // Verify convergence once per configuration.
    for tol in [1e-8, 1e-10] {
        let v = run_once(2, tol);
        linda_bench::print_row(
            &format!("result at tol {tol:.0e}"),
            format!("{v:.10} (exact 2.0)"),
        );
        assert!((v - 2.0).abs() < 1e-5);
    }

    let mut g = c.benchmark_group("fig_divide_conquer");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for workers in [1usize, 2, 3] {
        g.bench_function(format!("workers_{workers}_tol_1e-8"), |b| {
            b.iter(|| run_once(workers, 1e-8))
        });
    }
    for tol in [1e-6, 1e-10] {
        g.bench_function(format!("tolerance_{tol:.0e}_workers_2"), |b| {
            b.iter(|| run_once(2, tol))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

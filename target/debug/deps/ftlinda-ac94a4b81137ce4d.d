/root/repo/target/debug/deps/ftlinda-ac94a4b81137ce4d.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libftlinda-ac94a4b81137ce4d.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/error.rs:
crates/core/src/runtime.rs:
crates/core/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

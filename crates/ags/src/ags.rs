//! The atomic guarded statement (AGS) itself: guards, branches,
//! disjunction, builder, and static validation.
//!
//! Concrete syntax from the paper (Figure 6-style):
//!
//! ```text
//! ⟨ in(TSmain, "count", ?old) ⇒ out(TSmain, "count", old + 1) ⟩
//! ```
//!
//! with disjunction:
//!
//! ```text
//! ⟨ in(TS, "token")        ⇒ out(TS, "held", my_id)
//! or rd(TS, "failure", ?h) ⇒ out(TS, "giveup", my_id) ⟩
//! ```
//!
//! An AGS blocks until some branch's guard is satisfiable, then executes
//! that branch's guard + body as one atomic step of the replicated tuple
//! space state machine. `true` guards are always satisfiable.

use crate::expr::Operand;
use crate::ops::{BodyOp, MatchField, SpaceRef};
use linda_tuple::TypeTag;
use std::fmt;

/// The blocking operation at the head of a branch.
#[derive(Debug, Clone, PartialEq)]
pub enum Guard {
    /// `true ⇒ …`: always satisfiable, executes immediately.
    True,
    /// `in(ts, pattern) ⇒ …`: waits for a match, then withdraws it.
    In {
        /// Guarded space (must be stable).
        ts: SpaceRef,
        /// Match template.
        pattern: Vec<MatchField>,
    },
    /// `rd(ts, pattern) ⇒ …`: waits for a match, then reads it.
    Rd {
        /// Guarded space (must be stable).
        ts: SpaceRef,
        /// Match template.
        pattern: Vec<MatchField>,
    },
}

impl Guard {
    /// Number of formals the guard binds.
    pub fn binds(&self) -> usize {
        match self {
            Guard::True => 0,
            Guard::In { pattern, .. } | Guard::Rd { pattern, .. } => {
                pattern.iter().filter(|f| f.is_bind()).count()
            }
        }
    }

    /// Types of the formals the guard binds, in order.
    pub fn bind_types(&self) -> Vec<TypeTag> {
        match self {
            Guard::True => Vec::new(),
            Guard::In { pattern, .. } | Guard::Rd { pattern, .. } => pattern
                .iter()
                .filter_map(|f| match f {
                    MatchField::Bind(t) => Some(*t),
                    MatchField::Expr(_) => None,
                })
                .collect(),
        }
    }

    /// Whether this guard can always fire (i.e. is `true`).
    pub fn is_true(&self) -> bool {
        matches!(self, Guard::True)
    }
}

/// One `guard ⇒ body` alternative of an AGS.
#[derive(Debug, Clone, PartialEq)]
pub struct Branch {
    /// The blocking guard.
    pub guard: Guard,
    /// Operations executed atomically once the guard fires.
    pub body: Vec<BodyOp>,
    /// Types of every formal bound in this branch (guard first, then body
    /// ops in order) — the layout of [`AgsOutcome::bindings`].
    pub formal_types: Vec<TypeTag>,
}

/// A complete atomic guarded statement: one or more branches combined by
/// disjunction (`or`).
#[derive(Debug, Clone, PartialEq)]
pub struct Ags {
    /// The alternatives, tried in order.
    pub branches: Vec<Branch>,
}

/// Result of executing an AGS, delivered back to the submitting process.
#[derive(Debug, Clone, PartialEq)]
pub struct AgsOutcome {
    /// Index of the branch that fired.
    pub branch: usize,
    /// Values of every formal bound in that branch, in formal-index order.
    pub bindings: Vec<linda_tuple::Value>,
}

/// Static validation errors produced by [`AgsBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgsError {
    /// An AGS must have at least one branch.
    NoBranches,
    /// A branch must contain a guard (possibly `true`) — builder misuse.
    EmptyBranch,
    /// Guards must target stable tuple spaces: their satisfiability must
    /// be decidable identically at every replica.
    GuardOnScratch,
    /// Body `in`/`rd` must target stable spaces for the same reason.
    BindFromScratch,
    /// `move`/`copy` must read from a stable space.
    MoveFromScratch,
    /// An operand referenced formal `i` but only `bound` formals are bound
    /// at that point in the branch.
    UnboundFormal {
        /// Referenced index.
        index: u16,
        /// Number of formals bound at that point.
        bound: usize,
    },
    /// More formals than the wire format supports (u16).
    TooManyFormals,
}

impl fmt::Display for AgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgsError::NoBranches => write!(f, "AGS has no branches"),
            AgsError::EmptyBranch => write!(f, "branch has no guard"),
            AgsError::GuardOnScratch => {
                write!(f, "guard must target a stable tuple space")
            }
            AgsError::BindFromScratch => {
                write!(f, "body in/rd must target a stable tuple space")
            }
            AgsError::MoveFromScratch => {
                write!(f, "move/copy source must be a stable tuple space")
            }
            AgsError::UnboundFormal { index, bound } => {
                write!(
                    f,
                    "operand references ?{index} but only {bound} formals are bound"
                )
            }
            AgsError::TooManyFormals => write!(f, "too many formals in one branch"),
        }
    }
}

impl std::error::Error for AgsError {}

fn check_operand(op: &Operand, bound: usize) -> Result<(), AgsError> {
    if let Some(i) = op.max_formal() {
        if (i as usize) >= bound {
            return Err(AgsError::UnboundFormal { index: i, bound });
        }
    }
    Ok(())
}

fn check_fields(fields: &[MatchField], bound: usize) -> Result<(), AgsError> {
    for f in fields {
        if let MatchField::Expr(op) = f {
            check_operand(op, bound)?;
        }
    }
    Ok(())
}

fn validate_branch(guard: &Guard, body: &[BodyOp]) -> Result<Vec<TypeTag>, AgsError> {
    let mut types: Vec<TypeTag> = Vec::new();
    match guard {
        Guard::True => {}
        Guard::In { ts, pattern } | Guard::Rd { ts, pattern } => {
            if !ts.is_stable() {
                return Err(AgsError::GuardOnScratch);
            }
            // Guard expression fields may not reference formals (nothing is
            // bound yet).
            check_fields(pattern, 0)?;
            types.extend(guard.bind_types());
        }
    }
    for op in body {
        let bound = types.len();
        match op {
            BodyOp::Out { template, .. } => {
                for o in template {
                    check_operand(o, bound)?;
                }
            }
            BodyOp::In { ts, pattern } | BodyOp::Rd { ts, pattern } => {
                if !ts.is_stable() {
                    return Err(AgsError::BindFromScratch);
                }
                check_fields(pattern, bound)?;
                types.extend(op.bind_types());
            }
            BodyOp::Move { from, pattern, .. } | BodyOp::Copy { from, pattern, .. } => {
                if !from.is_stable() {
                    return Err(AgsError::MoveFromScratch);
                }
                check_fields(pattern, bound)?;
            }
        }
    }
    if types.len() > u16::MAX as usize {
        return Err(AgsError::TooManyFormals);
    }
    Ok(types)
}

impl Ags {
    /// Start building an AGS.
    pub fn builder() -> AgsBuilder {
        AgsBuilder::new()
    }

    /// Convenience: `⟨ true ⇒ out(ts, template) ⟩` — a plain Linda `out`.
    pub fn out_one(ts: impl Into<SpaceRef>, template: Vec<Operand>) -> Ags {
        Ags::builder()
            .guard_true()
            .out(ts, template)
            .build()
            .expect("out_one is statically valid")
    }

    /// Convenience: `⟨ in(ts, pattern) ⇒ ⟩` — a plain blocking Linda `in`.
    pub fn in_one(ts: impl Into<SpaceRef>, pattern: Vec<MatchField>) -> Result<Ags, AgsError> {
        Ags::builder().guard_in(ts, pattern).build()
    }

    /// Convenience: `⟨ rd(ts, pattern) ⇒ ⟩` — a plain blocking Linda `rd`.
    pub fn rd_one(ts: impl Into<SpaceRef>, pattern: Vec<MatchField>) -> Result<Ags, AgsError> {
        Ags::builder().guard_rd(ts, pattern).build()
    }

    /// Convenience for strong `inp`: `⟨ in(ts, p) ⇒ or true ⇒ ⟩`.
    /// Branch 0 firing means "found" (with bindings); branch 1 means a
    /// replica-agreed, absolute "no matching tuple existed".
    pub fn inp_one(ts: impl Into<SpaceRef>, pattern: Vec<MatchField>) -> Result<Ags, AgsError> {
        Ags::builder()
            .guard_in(ts, pattern)
            .or()
            .guard_true()
            .build()
    }

    /// Convenience for strong `rdp` (see [`Ags::inp_one`]).
    pub fn rdp_one(ts: impl Into<SpaceRef>, pattern: Vec<MatchField>) -> Result<Ags, AgsError> {
        Ags::builder()
            .guard_rd(ts, pattern)
            .or()
            .guard_true()
            .build()
    }

    /// Total number of TS operations (guards + body ops), the unit of the
    /// paper's Table 1/2 marginal-cost accounting.
    pub fn op_count(&self) -> usize {
        self.branches
            .iter()
            .map(|b| usize::from(!b.guard.is_true()) + b.body.len())
            .sum()
    }

    /// Whether some branch is guaranteed to fire immediately (has a `true`
    /// guard) — such an AGS never blocks.
    pub fn has_true_branch(&self) -> bool {
        self.branches.iter().any(|b| b.guard.is_true())
    }
}

/// Incremental builder for [`Ags`]. Operations are appended to the current
/// branch; [`AgsBuilder::or`] starts a new branch.
#[derive(Debug, Default)]
pub struct AgsBuilder {
    branches: Vec<(Option<Guard>, Vec<BodyOp>)>,
    current: Option<(Option<Guard>, Vec<BodyOp>)>,
}

impl AgsBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn cur(&mut self) -> &mut (Option<Guard>, Vec<BodyOp>) {
        self.current.get_or_insert_with(|| (None, Vec::new()))
    }

    /// Set the current branch's guard to `true`.
    pub fn guard_true(mut self) -> Self {
        self.cur().0 = Some(Guard::True);
        self
    }

    /// Set the current branch's guard to a blocking `in`.
    pub fn guard_in(mut self, ts: impl Into<SpaceRef>, pattern: Vec<MatchField>) -> Self {
        self.cur().0 = Some(Guard::In {
            ts: ts.into(),
            pattern,
        });
        self
    }

    /// Set the current branch's guard to a blocking `rd`.
    pub fn guard_rd(mut self, ts: impl Into<SpaceRef>, pattern: Vec<MatchField>) -> Self {
        self.cur().0 = Some(Guard::Rd {
            ts: ts.into(),
            pattern,
        });
        self
    }

    /// Append `out(ts, template)` to the current branch body.
    pub fn out(mut self, ts: impl Into<SpaceRef>, template: Vec<Operand>) -> Self {
        let ts = ts.into();
        self.cur().1.push(BodyOp::Out { ts, template });
        self
    }

    /// Append a body `in(ts, pattern)` (aborting if unmatched).
    pub fn in_(mut self, ts: impl Into<SpaceRef>, pattern: Vec<MatchField>) -> Self {
        let ts = ts.into();
        self.cur().1.push(BodyOp::In { ts, pattern });
        self
    }

    /// Append a body `rd(ts, pattern)` (aborting if unmatched).
    pub fn rd(mut self, ts: impl Into<SpaceRef>, pattern: Vec<MatchField>) -> Self {
        let ts = ts.into();
        self.cur().1.push(BodyOp::Rd { ts, pattern });
        self
    }

    /// Append `move(from, to, pattern)`.
    pub fn move_(
        mut self,
        from: impl Into<SpaceRef>,
        to: impl Into<SpaceRef>,
        pattern: Vec<MatchField>,
    ) -> Self {
        let (from, to) = (from.into(), to.into());
        self.cur().1.push(BodyOp::Move { from, to, pattern });
        self
    }

    /// Append `copy(from, to, pattern)`.
    pub fn copy(
        mut self,
        from: impl Into<SpaceRef>,
        to: impl Into<SpaceRef>,
        pattern: Vec<MatchField>,
    ) -> Self {
        let (from, to) = (from.into(), to.into());
        self.cur().1.push(BodyOp::Copy { from, to, pattern });
        self
    }

    /// Close the current branch and start the next disjunct.
    pub fn or(mut self) -> Self {
        if let Some(b) = self.current.take() {
            self.branches.push(b);
        }
        self
    }

    /// Validate and produce the [`Ags`].
    pub fn build(mut self) -> Result<Ags, AgsError> {
        if let Some(b) = self.current.take() {
            self.branches.push(b);
        }
        if self.branches.is_empty() {
            return Err(AgsError::NoBranches);
        }
        let mut out = Vec::with_capacity(self.branches.len());
        for (guard, body) in self.branches {
            let guard = guard.ok_or(AgsError::EmptyBranch)?;
            let formal_types = validate_branch(&guard, &body)?;
            out.push(Branch {
                guard,
                body,
                formal_types,
            });
        }
        Ok(Ags { branches: out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{ScratchId, TsId};
    use linda_tuple::TypeTag::*;

    fn counter_ags() -> Ags {
        // ⟨ in(ts0, "count", ?int) ⇒ out(ts0, "count", f0 + 1) ⟩
        Ags::builder()
            .guard_in(
                TsId(0),
                vec![MatchField::actual("count"), MatchField::bind(Int)],
            )
            .out(
                TsId(0),
                vec![Operand::cst("count"), Operand::formal(0).add(1)],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn build_counter_update() {
        let ags = counter_ags();
        assert_eq!(ags.branches.len(), 1);
        assert_eq!(ags.branches[0].formal_types, vec![Int]);
        assert_eq!(ags.op_count(), 2);
        assert!(!ags.has_true_branch());
    }

    #[test]
    fn disjunction_builds_two_branches() {
        let ags = Ags::builder()
            .guard_in(TsId(0), vec![MatchField::actual("token")])
            .out(TsId(0), vec![Operand::cst("held"), Operand::SelfHost])
            .or()
            .guard_rd(
                TsId(0),
                vec![MatchField::actual("failure"), MatchField::bind(Int)],
            )
            .build()
            .unwrap();
        assert_eq!(ags.branches.len(), 2);
        assert_eq!(ags.branches[0].formal_types, vec![]);
        assert_eq!(ags.branches[1].formal_types, vec![Int]);
        assert_eq!(ags.op_count(), 3);
    }

    #[test]
    fn body_in_extends_formals() {
        let ags = Ags::builder()
            .guard_in(TsId(0), vec![MatchField::bind(Int)])
            .in_(
                TsId(0),
                vec![MatchField::bind(Str), MatchField::Expr(Operand::formal(0))],
            )
            .out(TsId(0), vec![Operand::formal(1)])
            .build()
            .unwrap();
        assert_eq!(ags.branches[0].formal_types, vec![Int, Str]);
    }

    #[test]
    fn unbound_formal_rejected() {
        let err = Ags::builder()
            .guard_in(TsId(0), vec![MatchField::bind(Int)])
            .out(TsId(0), vec![Operand::formal(1)])
            .build()
            .unwrap_err();
        assert_eq!(err, AgsError::UnboundFormal { index: 1, bound: 1 });
    }

    #[test]
    fn guard_exprs_may_not_reference_formals() {
        let err = Ags::builder()
            .guard_in(TsId(0), vec![MatchField::Expr(Operand::formal(0))])
            .build()
            .unwrap_err();
        assert_eq!(err, AgsError::UnboundFormal { index: 0, bound: 0 });
    }

    #[test]
    fn scratch_guard_rejected() {
        let err = Ags::builder()
            .guard_in(ScratchId(0), vec![MatchField::bind(Int)])
            .build()
            .unwrap_err();
        assert_eq!(err, AgsError::GuardOnScratch);
    }

    #[test]
    fn scratch_body_in_rejected() {
        let err = Ags::builder()
            .guard_true()
            .in_(ScratchId(0), vec![MatchField::bind(Int)])
            .build()
            .unwrap_err();
        assert_eq!(err, AgsError::BindFromScratch);
    }

    #[test]
    fn scratch_move_source_rejected_but_dest_ok() {
        let err = Ags::builder()
            .guard_true()
            .move_(ScratchId(0), TsId(0), vec![MatchField::bind(Int)])
            .build()
            .unwrap_err();
        assert_eq!(err, AgsError::MoveFromScratch);

        let ok = Ags::builder()
            .guard_true()
            .move_(TsId(0), ScratchId(0), vec![MatchField::bind(Int)])
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn out_to_scratch_allowed() {
        let ags = Ags::builder()
            .guard_in(TsId(0), vec![MatchField::bind(Int)])
            .out(ScratchId(3), vec![Operand::formal(0)])
            .build()
            .unwrap();
        assert_eq!(ags.branches[0].body.len(), 1);
    }

    #[test]
    fn empty_builder_rejected() {
        assert_eq!(Ags::builder().build().unwrap_err(), AgsError::NoBranches);
    }

    #[test]
    fn branch_without_guard_rejected() {
        let err = Ags::builder()
            .out(TsId(0), vec![Operand::cst(1)])
            .build()
            .unwrap_err();
        assert_eq!(err, AgsError::EmptyBranch);
    }

    #[test]
    fn convenience_constructors() {
        let out = Ags::out_one(TsId(0), vec![Operand::cst("x")]);
        assert!(out.has_true_branch());
        assert_eq!(out.op_count(), 1);

        let inp = Ags::inp_one(TsId(0), vec![MatchField::bind(Int)]).unwrap();
        assert_eq!(inp.branches.len(), 2);
        assert!(inp.has_true_branch());

        let rdp = Ags::rdp_one(TsId(0), vec![MatchField::bind(Int)]).unwrap();
        assert!(matches!(rdp.branches[0].guard, Guard::Rd { .. }));

        let in1 = Ags::in_one(TsId(0), vec![MatchField::actual(1)]).unwrap();
        assert!(!in1.has_true_branch());
        let rd1 = Ags::rd_one(TsId(0), vec![MatchField::actual(1)]).unwrap();
        assert_eq!(rd1.op_count(), 1);
    }

    #[test]
    fn guard_bind_accounting() {
        let g = Guard::In {
            ts: TsId(0).into(),
            pattern: vec![
                MatchField::actual("a"),
                MatchField::bind(Int),
                MatchField::bind(Float),
            ],
        };
        assert_eq!(g.binds(), 2);
        assert_eq!(g.bind_types(), vec![Int, Float]);
        assert!(!g.is_true());
        assert!(Guard::True.is_true());
    }

    #[test]
    fn error_display() {
        assert!(AgsError::GuardOnScratch.to_string().contains("stable"));
        assert!(AgsError::UnboundFormal { index: 2, bound: 1 }
            .to_string()
            .contains("?2"));
    }
}

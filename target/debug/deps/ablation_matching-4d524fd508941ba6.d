/root/repo/target/debug/deps/ablation_matching-4d524fd508941ba6.d: crates/bench/benches/ablation_matching.rs Cargo.toml

/root/repo/target/debug/deps/libablation_matching-4d524fd508941ba6.rmeta: crates/bench/benches/ablation_matching.rs Cargo.toml

crates/bench/benches/ablation_matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/bytes-660e25c6fb20cd90.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-660e25c6fb20cd90.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-660e25c6fb20cd90.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:

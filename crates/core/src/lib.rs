//! # ftlinda
//!
//! A reproduction of **FT-Linda** (Bakken & Schlichting, TR 93-18): Linda
//! extended with *stable tuple spaces* and *atomic guarded statements*
//! (AGSs) for fault-tolerant parallel programming.
//!
//! Stable tuple spaces are replicated on every host using the replicated
//! state machine approach; each AGS — `⟨ guard ⇒ body ⟩`, with
//! disjunction — is disseminated in **one** totally-ordered multicast and
//! executed atomically (w.r.t. both concurrency and failures) by every
//! replica. Crashes are converted to fail-stop semantics by depositing a
//! distinguished `("failure", host)` tuple into every stable space.
//!
//! ```
//! use ftlinda::{Cluster, Runtime};
//! use ftlinda_ags::{Ags, MatchField, Operand};
//! use linda_tuple::{pat, tuple, TypeTag};
//!
//! let (cluster, rts) = Cluster::new(3);
//! let rt = &rts[0];
//! let ts = rt.create_stable_ts("main").unwrap();
//!
//! // Atomic distributed-variable update (paper Fig. 2 made failure-safe):
//! rt.out(ts, tuple!("count", 0)).unwrap();
//! let ags = Ags::builder()
//!     .guard_in(ts, vec![MatchField::actual("count"),
//!                        MatchField::bind(TypeTag::Int)])
//!     .out(ts, vec![Operand::cst("count"), Operand::formal(0).add(1)])
//!     .build()
//!     .unwrap();
//! rt.execute(&ags).unwrap();
//! assert_eq!(rt.rd(ts, &pat!("count", ?int)).unwrap(), tuple!("count", 1));
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

mod cluster;
mod error;
mod federation;
mod flight;
mod runtime;
mod server;

pub use cluster::{Cluster, ClusterBuilder, TcpClusterConfig, Transport};
pub use error::FtError;
pub use federation::{federate_metrics, federate_trace, MemberSource, FEDERATION_TIMEOUT};
pub use flight::{FlightRecorder, FlightSection};
pub use runtime::{
    pattern_fields, rebuild_tuple, AgsHandle, CompletionOk, FtEvent, Runtime, RuntimeConfig,
};
pub use server::{
    events_json_lines, http_get, http_post_metrics, ExporterSources, HttpExporter, RpcClient,
    TupleServer,
};

// Re-export the pieces users need to build AGSs and patterns.
pub use consul_sim::{BatchConfig, CheckpointConfig, Heartbeat, HostId, NetConfig};
pub use ftlinda_ags::{Ags, AgsOutcome, MatchField, Operand, ScratchId, TsId};
pub use ftlinda_kernel::{
    BlockedReport, ExecError, IndexReport, IntrospectReport, MatchStats, SignatureOccupancy,
    SpaceReport, StarvationReport, StoreConfig, FAILURE_TUPLE_HEAD,
};
/// Observability primitives (metrics registry, histograms, event sink).
pub use linda_obs as obs;
pub use linda_tuple::{Pattern, Tuple, TypeTag, Value};

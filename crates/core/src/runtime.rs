//! The per-host FT-Linda runtime: the library a process links against.
//!
//! Each host runs one [`Runtime`]. It owns the host's replica kernels
//! (one per shard — a single kernel in the default unsharded
//! configuration), one apply thread per shard feeding each kernel its
//! totally-ordered delivery stream, and the completion plumbing that
//! resolves a client's blocking call when *this* host's kernel reports
//! the client's AGS as executed.
//!
//! The paper's Figure 15 architecture maps as: FT-Linda library =
//! [`Runtime`] methods; Consul = `consul_sim::SeqMember`; TS state
//! machine = `ftlinda_kernel::Kernel`.
//!
//! ## Sharded routing
//!
//! Under `ClusterBuilder::shards(K)` with K > 1, stable tuple spaces are
//! partitioned by `(TsId, signature stable-hash)` across K independent
//! sequencer groups. Every AGS is analysed statically
//! ([`ftlinda_ags::static_keys`]): the signature buckets it can touch
//! are decidable from types alone, so almost every AGS routes to exactly
//! one shard's ordering stream and pays one multicast there — K disjoint
//! total orders instead of one. The rare AGS whose buckets span shards
//! commits through a three-leg protocol (`XLock`/`XExec`/`XRelease`)
//! driven from [`Runtime::execute`]: it freezes every participating
//! shard in ascending shard-id order (deadlock freedom), stages the
//! execution on the lowest-id ("home") shard against the checked-out
//! buckets, and releases each shard with its rewritten buckets.

use crate::error::FtError;
use consul_sim::{HostId, LocalId, SeqMember};
use crossbeam::channel::{Receiver, Sender};
use ftlinda_ags::{
    imbalance_bp, shard_of, static_keys, Ags, AgsOutcome, MatchField, Operand, ScratchId, TsId,
};
use ftlinda_kernel::{
    encode_request, IntrospectReport, Kernel, KernelNote, Request, ShardSpec, SigBucket,
    StoreConfig, XStageResult,
};
use linda_space::LocalSpace;
use linda_tuple::{PatField, Pattern, Tuple, Value};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Failure/recovery events observable by application code (in addition to
/// the failure *tuples* deposited in every stable TS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtEvent {
    /// A host was detected as failed (ordered with the command stream).
    HostFailed(HostId),
    /// A host rejoined.
    HostJoined(HostId),
}

type CompletionTx = Sender<Result<CompletionOk, FtError>>;

/// Observability configuration for one [`Runtime`] (set through
/// [`crate::ClusterBuilder`]; [`Runtime::new`] uses the defaults).
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Emit an `ags_starving` event each time a blocked AGS's age crosses
    /// a further multiple of this threshold. `None` disables the
    /// watchdog thread.
    pub starvation_after: Option<Duration>,
    /// Deep introspection: per-signature occupancy/match-cost metric
    /// families and the `/introspect` endpoint. When `false` the kernel
    /// keeps only its scalar gauges and [`Runtime::introspect`] returns
    /// `None`.
    pub introspection: bool,
    /// Matching-engine tuning for the kernel's stable stores: value-index
    /// promotion thresholds and the miss-cache capacity. Derived state
    /// only — never affects match results or the replicated digest.
    pub store: StoreConfig,
    /// Per-signature overrides of `store`, keyed by signature
    /// stable-hash: a hot signature can get its own promotion thresholds
    /// or miss-cache capacity without retuning every bucket. Derived
    /// state only, like `store`.
    pub store_overrides: Vec<(u64, StoreConfig)>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            starvation_after: Some(Duration::from_secs(5)),
            introspection: true,
            store: StoreConfig::default(),
            store_overrides: Vec::new(),
        }
    }
}

/// Successful completion payload routed back to a waiting client.
#[derive(Debug, Clone, PartialEq)]
pub enum CompletionOk {
    /// An AGS fired.
    Ags(AgsOutcome),
    /// A `CreateTs` (or `RegisterTs`) resolved.
    Ts(TsId),
    /// An `XLock` checked its buckets out (cross-shard leg 1).
    Buckets(Vec<SigBucket>),
    /// An `XExec` staged at the home shard (cross-shard leg 2).
    Staged {
        /// What the staged execution did.
        result: XStageResult,
        /// The foreign buckets, rewritten by the execution.
        writebacks: Vec<SigBucket>,
    },
    /// An `XRelease` reinstated its buckets (cross-shard leg 3).
    Released,
}

/// One shard's slice of the host: the ordering-layer member and the
/// replica kernel applying its delivery stream.
struct Lane {
    member: Arc<SeqMember>,
    kernel: Mutex<Kernel>,
}

struct Shared {
    /// Per-call completion channel and submit instant, keyed by the
    /// origin-local broadcast id. Shared across shards: per-shard
    /// `local_base` offsets keep the id spaces disjoint.
    waiting: Mutex<HashMap<LocalId, (CompletionTx, Instant)>>,
    events: Mutex<Vec<Sender<FtEvent>>>,
    lanes: Vec<Lane>,
    alive: AtomicBool,
    config: RuntimeConfig,
    next_scratch: AtomicU32,
    /// Cross-shard transaction ids handed out by this origin.
    next_xid: AtomicU64,
    /// Runtime-level registry (shard 0's): client histograms, runtime
    /// events. Per-shard ordering/kernel metrics live on each lane's own
    /// member registry; [`Runtime::metrics_text`] merges them.
    obs: Arc<linda_obs::Registry>,
    spans: Arc<linda_obs::SpanLog>,
    hist_submit: Arc<linda_obs::Histogram>,
    hist_notify: Arc<linda_obs::Histogram>,
    hist_total: Arc<linda_obs::Histogram>,
    completions: Arc<linda_obs::Counter>,
    /// Cross-shard commit attempts this origin re-drove after a
    /// `Blocked` stage, labeled by the home shard that refused.
    xcommit_retries: Arc<linda_obs::CounterFamily>,
}

/// Handle to the FT-Linda runtime on one host. Cloneable; clones share
/// the host's kernels and connections.
#[derive(Clone)]
pub struct Runtime {
    host: HostId,
    shared: Arc<Shared>,
}

/// Where one AGS goes.
enum RouteTo {
    /// Every bucket the AGS touches lives on this one shard: submit it
    /// to that shard's sequencer like any unsharded AGS.
    Single(usize),
    /// The buckets span shards: drive the cross-shard commit protocol
    /// over these `(ts, sig)` keys.
    Cross(Vec<(TsId, u64)>),
}

impl Runtime {
    /// Wire a runtime on top of an ordered-multicast member. Spawns the
    /// apply thread. (Use [`crate::Cluster`] rather than calling this
    /// directly.)
    pub fn new(member: SeqMember) -> Runtime {
        Runtime::with_config(member, RuntimeConfig::default())
    }

    /// [`Runtime::new`] with explicit observability configuration —
    /// starvation-watchdog threshold and deep-introspection switch.
    pub fn with_config(member: SeqMember, config: RuntimeConfig) -> Runtime {
        Runtime::with_members(vec![member], config)
    }

    /// Wire a runtime over one ordering member per shard (all for the
    /// same host). `members[i]` carries shard `i`'s total order; each
    /// gets its own replica kernel scoped to that shard's buckets.
    pub fn with_members(members: Vec<SeqMember>, config: RuntimeConfig) -> Runtime {
        assert!(!members.is_empty(), "at least one shard member");
        let host = members[0].host();
        let shard_count = members.len() as u32;
        let obs0 = members[0].obs();
        let hist_submit = obs0.histogram(
            "ftlinda_ags_submit_seconds",
            "Client encode + broadcast handoff latency",
        );
        let hist_notify = obs0.histogram(
            "ftlinda_ags_notify_seconds",
            "Kernel completion to client notify latency",
        );
        let hist_total = obs0.histogram(
            "ftlinda_ags_total_seconds",
            "End-to-end AGS latency: submit to completion routed",
        );
        let completions = obs0.counter(
            "ftlinda_ags_completions_total",
            "AGS/CreateTs completions routed to local clients",
        );
        let xcommit_retries = obs0.counter_family(
            "ftlinda_xcommit_retries_total",
            "Cross-shard commits re-driven after a Blocked stage, by home shard",
        );
        let spans = obs0.spans_handle();
        let mut lanes = Vec::with_capacity(members.len());
        let mut note_rxs = Vec::with_capacity(members.len());
        for (i, member) in members.into_iter().enumerate() {
            let (note_tx, note_rx) = crossbeam::channel::unbounded::<KernelNote>();
            let mut kernel = Kernel::new(host, note_tx);
            kernel.set_store_config(config.store);
            for (sig, cfg) in &config.store_overrides {
                kernel.set_store_config_override(*sig, *cfg);
            }
            kernel.set_shard(ShardSpec {
                index: i as u32,
                count: shard_count,
            });
            kernel.attach_obs_with(&member.obs(), config.introspection);
            lanes.push(Lane {
                member: Arc::new(member),
                kernel: Mutex::new(kernel),
            });
            note_rxs.push(note_rx);
        }
        let shared = Arc::new(Shared {
            waiting: Mutex::new(HashMap::new()),
            events: Mutex::new(Vec::new()),
            lanes,
            alive: AtomicBool::new(true),
            config,
            next_scratch: AtomicU32::new(0),
            next_xid: AtomicU64::new(1),
            obs: obs0,
            spans,
            hist_submit,
            hist_notify,
            hist_total,
            completions,
            xcommit_retries,
        });
        let rt = Runtime {
            host,
            shared: shared.clone(),
        };
        for (i, note_rx) in note_rxs.into_iter().enumerate() {
            Self::spawn_apply(shared.clone(), i, note_rx);
        }
        if let Some(threshold) = rt.shared.config.starvation_after.filter(|t| !t.is_zero()) {
            rt.spawn_watchdog(threshold);
        }
        rt
    }

    /// One apply thread per shard: feed the lane's kernel its delivery
    /// stream and route the resulting kernel notes to local waiters.
    fn spawn_apply(shared: Arc<Shared>, lane_idx: usize, note_rx: Receiver<KernelNote>) {
        let member = shared.lanes[lane_idx].member.clone();
        let host = member.host();
        std::thread::Builder::new()
            .name(format!("ftlinda-apply-{host}-s{lane_idx}"))
            .spawn(move || loop {
                let d = match member.deliveries().recv_timeout(Duration::from_millis(100)) {
                    Ok(d) => d,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        if !shared.alive.load(AtomicOrdering::Relaxed) {
                            return;
                        }
                        continue;
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                        shared.alive.store(false, AtomicOrdering::Relaxed);
                        // Wake all waiters with Shutdown.
                        let mut w = shared.waiting.lock();
                        for (_, (tx, _)) in w.drain() {
                            let _ = tx.send(Err(FtError::Shutdown));
                        }
                        return;
                    }
                };
                // Pipelining: a batched multicast (or a replayed
                // snapshot) lands many deliveries at once; drain them
                // and apply the whole run under one kernel lock instead
                // of re-acquiring per record.
                let mut run = vec![d];
                run.extend(member.deliveries().try_iter().take(255));
                let pending = {
                    let mut k = shared.lanes[lane_idx].kernel.lock();
                    k.apply_all(&run);
                    k.take_pending_checkpoint()
                };
                // An ordered checkpoint boundary was in the run: the
                // kernel snapshotted itself there; hand the image back to
                // the ordering layer so it can truncate its log and serve
                // joiners in O(state).
                if let Some(image) = pending {
                    shared.obs.events_handle().emit(linda_obs::Event::new(
                        "checkpoint_taken",
                        vec![
                            ("host".into(), host.to_string()),
                            ("shard".into(), lane_idx.to_string()),
                            ("seq".into(), image.seq.to_string()),
                            ("bytes".into(), image.bytes.len().to_string()),
                        ],
                    ));
                    member.install_checkpoint(image);
                }
                // Route kernel notes produced by this apply.
                for note in note_rx.try_iter() {
                    let routed_at = Instant::now();
                    let route_ok =
                        |local: LocalId, outcome: &str, payload: Result<CompletionOk, FtError>| {
                            if let Some((tx, t0)) = shared.waiting.lock().remove(&local) {
                                shared.hist_total.observe(t0.elapsed());
                                shared.completions.inc();
                                shared.spans.record(
                                    linda_obs::TraceId::new(host.0, local),
                                    "complete",
                                    host.0,
                                    vec![("outcome".into(), outcome.into())],
                                );
                                let _ = tx.send(payload);
                                shared.hist_notify.observe(routed_at.elapsed());
                            }
                        };
                    match note {
                        KernelNote::Completed { local, result, .. } => {
                            let outcome = if result.is_ok() { "ok" } else { "err" };
                            route_ok(
                                local,
                                outcome,
                                result.map(CompletionOk::Ags).map_err(FtError::Exec),
                            );
                        }
                        KernelNote::TsCreated { local, id, .. } => {
                            route_ok(local, "ts_created", Ok(CompletionOk::Ts(id)));
                        }
                        KernelNote::XCheckedOut { local, buckets, .. } => {
                            route_ok(local, "xlock", Ok(CompletionOk::Buckets(buckets)));
                        }
                        KernelNote::XStaged {
                            local,
                            result,
                            writebacks,
                            ..
                        } => {
                            route_ok(
                                local,
                                "xexec",
                                Ok(CompletionOk::Staged { result, writebacks }),
                            );
                        }
                        KernelNote::XReleased { local, .. } => {
                            route_ok(local, "xrelease", Ok(CompletionOk::Released));
                        }
                        KernelNote::HostFailed { host, .. } => {
                            Self::publish(&shared, FtEvent::HostFailed(host));
                        }
                        KernelNote::HostJoined { host, .. } => {
                            Self::publish(&shared, FtEvent::HostJoined(host));
                        }
                        KernelNote::Restored { seq } => {
                            shared.obs.events_handle().emit(linda_obs::Event::new(
                                "state_restored",
                                vec![
                                    ("host".into(), host.to_string()),
                                    ("shard".into(), lane_idx.to_string()),
                                    ("seq".into(), seq.to_string()),
                                ],
                            ));
                            // The replica jumped to a checkpoint image:
                            // calls in flight across the jump are
                            // indeterminate (their records may lie inside
                            // the compacted history). Fail their waiters
                            // explicitly rather than leaving them hung.
                            let mut w = shared.waiting.lock();
                            for (_, (tx, _)) in w.drain() {
                                let _ = tx.send(Err(FtError::StateTransfer));
                            }
                        }
                        KernelNote::Evicted { seq } => {
                            shared.obs.events_handle().emit(linda_obs::Event::new(
                                "evicted",
                                vec![
                                    ("host".into(), host.to_string()),
                                    ("shard".into(), lane_idx.to_string()),
                                    ("seq".into(), seq.to_string()),
                                ],
                            ));
                            // The coordinator ordered a Fail for us while
                            // we were alive: records delivered between the
                            // Fail and our re-admission bypassed us, so
                            // in-flight calls are indeterminate. Fail
                            // their waiters rather than leaving them hung
                            // until the rejoin replays the stream.
                            let mut w = shared.waiting.lock();
                            for (_, (tx, _)) in w.drain() {
                                let _ = tx.send(Err(FtError::Evicted));
                            }
                        }
                        KernelNote::RestoreFailed { seq, ref error } => {
                            shared.obs.events_handle().emit(linda_obs::Event::new(
                                "restore_failed",
                                vec![
                                    ("host".into(), host.to_string()),
                                    ("shard".into(), lane_idx.to_string()),
                                    ("seq".into(), seq.to_string()),
                                    ("error".into(), error.to_string()),
                                ],
                            ));
                        }
                        KernelNote::Malformed { .. } => {}
                    }
                }
            })
            .expect("spawn apply thread");
    }

    /// Background starvation watchdog: periodically runs every lane
    /// kernel's sweep so blocked AGSs whose age crosses the threshold
    /// surface as `ags_starving` events without anyone polling
    /// `/introspect`.
    ///
    /// Shard-aware in three phases so no two kernel locks are ever held
    /// at once: collect each lane's foreign guard keys, resolve their
    /// occupancy against the owning lanes, then sweep each lane with the
    /// resolved map — nearest-miss counts are attributed to the shard
    /// that actually stores the bucket, not read as zero from the lane
    /// where the AGS happens to be queued.
    fn spawn_watchdog(&self, threshold: Duration) {
        let shared = self.shared.clone();
        let host = self.host;
        // Sweep a few times per threshold so a crossing is reported
        // promptly, but never spin faster than 10ms.
        let period = (threshold / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
        std::thread::Builder::new()
            .name(format!("ftlinda-watchdog-{host}"))
            .spawn(move || {
                while shared.alive.load(AtomicOrdering::Relaxed) {
                    std::thread::sleep(period);
                    Self::sweep_lanes(&shared, threshold);
                }
            })
            .expect("spawn starvation watchdog");
    }

    /// One shard-aware watchdog pass over every lane (see
    /// [`Runtime::spawn_watchdog`] for the three-phase locking rationale).
    fn sweep_lanes(shared: &Shared, threshold: Duration) -> Vec<ftlinda_kernel::StarvationReport> {
        let mut wanted: Vec<(u32, TsId, u64)> = Vec::new();
        for lane in &shared.lanes {
            wanted.extend(lane.kernel.lock().blocked_foreign_keys());
        }
        wanted.sort_unstable();
        wanted.dedup();
        let mut resolved: BTreeMap<(u32, TsId, u64), usize> = BTreeMap::new();
        for &(owner, ts, sig) in &wanted {
            if let Some(lane) = shared.lanes.get(owner as usize) {
                resolved.insert((owner, ts, sig), lane.kernel.lock().signature_len(ts, sig));
            }
        }
        let peer = |owner: u32, ts: TsId, sig: u64| -> usize {
            resolved.get(&(owner, ts, sig)).copied().unwrap_or(0)
        };
        let mut out = Vec::new();
        for lane in &shared.lanes {
            out.extend(lane.kernel.lock().starvation_sweep_with(threshold, &peer));
        }
        out
    }

    fn publish(shared: &Shared, ev: FtEvent) {
        let mut subs = shared.events.lock();
        subs.retain(|tx| tx.send(ev.clone()).is_ok());
    }

    /// This runtime's host id.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Number of shards (independent ordering streams) this runtime
    /// spans. 1 in the default unsharded configuration.
    pub fn shard_count(&self) -> usize {
        self.shared.lanes.len()
    }

    /// Subscribe to failure/recovery events.
    pub fn events(&self) -> Receiver<FtEvent> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.shared.events.lock().push(tx);
        rx
    }

    fn submit_on(
        &self,
        shard: usize,
        req: &Request,
    ) -> (Receiver<Result<CompletionOk, FtError>>, LocalId) {
        let (tx, rx) = crossbeam::channel::bounded(1);
        let t0 = Instant::now();
        let kind = match req {
            Request::CreateTs { .. } => "create",
            Request::Ags(_) => "ags",
            Request::RegisterTs { .. } => "register",
            Request::XLock { .. } => "xlock",
            Request::XExec { .. } => "xexec",
            Request::XRelease { .. } => "xrelease",
        };
        let member = &self.shared.lanes[shard].member;
        let payload = bytes::Bytes::from(encode_request(req));
        // Stamp the submit span *before* the broadcast: the local id is
        // only known afterwards, but with a fast network downstream
        // stages can record their spans before this thread resumes, and
        // the submit must still sort first in the assembled tree.
        let at0 = linda_obs::now_micros();
        // Hold the waiting lock across broadcast + insert so the apply
        // thread cannot route the completion before the waiter exists.
        let mut w = self.shared.waiting.lock();
        let local = member.broadcast(payload);
        w.insert(local, (tx, t0));
        drop(w);
        self.shared.spans.push(linda_obs::SpanRecord {
            trace: linda_obs::TraceId::new(self.host.0, local),
            stage: "submit".into(),
            host: self.host.0,
            at_micros: at0,
            fields: vec![("kind".into(), kind.into())],
        });
        self.shared.hist_submit.observe(t0.elapsed());
        (rx, local)
    }

    fn await_ok(
        &self,
        rx: Receiver<Result<CompletionOk, FtError>>,
        timeout: Option<Duration>,
    ) -> Result<CompletionOk, FtError> {
        match timeout {
            None => rx.recv().map_err(|_| FtError::Shutdown)?,
            Some(t) => match rx.recv_timeout(t) {
                Ok(r) => r,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(FtError::Timeout),
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(FtError::Shutdown),
            },
        }
    }

    /// Decide which shard(s) an AGS must be ordered on. With one shard
    /// everything is local; otherwise the static key analysis decides,
    /// and an AGS it cannot decide is rejected (such an AGS contains an
    /// operand that could never evaluate anyway).
    fn route(&self, ags: &Ags) -> Result<RouteTo, FtError> {
        let k = self.shared.lanes.len() as u32;
        if k <= 1 {
            return Ok(RouteTo::Single(0));
        }
        let Some(keys) = static_keys(ags) else {
            return Err(FtError::Unroutable);
        };
        let mut shards: Vec<u32> = keys
            .iter()
            .map(|(ts, sig)| shard_of(*ts, *sig, k))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        match shards.as_slice() {
            // A pure-scratch AGS touches no stable bucket: any shard
            // works; shard 0 keeps it deterministic.
            [] => Ok(RouteTo::Single(0)),
            [s] => Ok(RouteTo::Single(*s as usize)),
            _ => Ok(RouteTo::Cross(keys)),
        }
    }

    /// Drive the three-leg cross-shard commit from this origin.
    ///
    /// Freezes every participating shard in ascending shard-id order
    /// (all origins acquire in the same order, so there is no deadlock),
    /// stages the execution on the lowest-id shard against the union of
    /// checked-out buckets, then releases each shard with its rewritten
    /// buckets. A `Blocked` stage releases everything unchanged and
    /// retries with backoff under a fresh transaction id — cross-shard
    /// AGSs are never parked in any shard's blocked table.
    fn execute_cross(
        &self,
        ags: &Ags,
        keys: Vec<(TsId, u64)>,
        deadline: Option<Instant>,
    ) -> Result<(AgsOutcome, linda_obs::TraceId), FtError> {
        let k = self.shared.lanes.len() as u32;
        let mut by_shard: BTreeMap<u32, Vec<(u32, u64)>> = BTreeMap::new();
        for (ts, sig) in &keys {
            by_shard
                .entry(shard_of(*ts, *sig, k))
                .or_default()
                .push((ts.0, *sig));
        }
        let home = *by_shard.keys().next().expect("cross-shard key set");
        let shard_list = by_shard
            .keys()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut backoff = Duration::from_micros(200);
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let xid = (u64::from(self.host.0) << 48)
                | self.shared.next_xid.fetch_add(1, AtomicOrdering::Relaxed);
            self.xspan_origin(
                xid,
                "xbegin",
                vec![
                    ("attempt".into(), attempt.to_string()),
                    ("shards".into(), shard_list.clone()),
                    ("home".into(), home.to_string()),
                ],
            );
            // Leg 1: check out every shard's buckets, ascending.
            let mut foreign: Vec<SigBucket> = Vec::new();
            for (&s, ks) in by_shard.iter() {
                let (rx, _) = self.submit_on(
                    s as usize,
                    &Request::XLock {
                        xid,
                        keys: ks.clone(),
                    },
                );
                match self.await_ok(rx, None)? {
                    CompletionOk::Buckets(b) => foreign.extend(b),
                    other => unreachable!("xlock resolved as {other:?}"),
                }
            }
            // Leg 2: stage at the home shard (its own freeze lets this
            // transaction's legs through).
            let (rx, _) = self.submit_on(
                home as usize,
                &Request::XExec {
                    xid,
                    ags: ags.clone(),
                    foreign,
                },
            );
            let (result, writebacks) = match self.await_ok(rx, None)? {
                CompletionOk::Staged { result, writebacks } => (result, writebacks),
                other => unreachable!("xexec resolved as {other:?}"),
            };
            // Leg 3: hand each shard back its own rewritten buckets.
            for &s in by_shard.keys() {
                let buckets: Vec<SigBucket> = writebacks
                    .iter()
                    .filter(|(ts, sig, _)| shard_of(TsId(*ts), *sig, k) == s)
                    .cloned()
                    .collect();
                let (rx, _) = self.submit_on(s as usize, &Request::XRelease { xid, buckets });
                match self.await_ok(rx, None)? {
                    CompletionOk::Released => {}
                    other => unreachable!("xrelease resolved as {other:?}"),
                }
            }
            match result {
                XStageResult::Fired(o) => {
                    self.xspan_origin(
                        xid,
                        "xcommit",
                        vec![("attempts".into(), attempt.to_string())],
                    );
                    return Ok((o, linda_obs::TraceId::for_xid(xid)));
                }
                XStageResult::Failed(e) => {
                    self.xspan_origin(
                        xid,
                        "xabort",
                        vec![
                            ("cause".into(), "body_failure".into()),
                            ("attempts".into(), attempt.to_string()),
                        ],
                    );
                    return Err(FtError::Exec(e));
                }
                XStageResult::Blocked => {
                    self.shared
                        .xcommit_retries
                        .with(&[("shard", &home.to_string())])
                        .inc();
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            self.xspan_origin(
                                xid,
                                "xabort",
                                vec![
                                    ("cause".into(), "blocked_retry".into()),
                                    ("attempts".into(), attempt.to_string()),
                                ],
                            );
                            return Err(FtError::Timeout);
                        }
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(5));
                }
            }
        }
    }

    /// Record an origin-side span on the transaction trace of cross-shard
    /// commit `xid`. Origin spans carry no `shard` field: the per-shard
    /// lanes of the assembled tree are the participants, and the origin's
    /// xbegin/xcommit/xabort bracket them.
    fn xspan_origin(&self, xid: u64, stage: &str, fields: Vec<(String, String)>) {
        let mut fields = fields;
        fields.push(("xid".into(), xid.to_string()));
        self.shared.spans.push(linda_obs::SpanRecord {
            trace: linda_obs::TraceId::for_xid(xid),
            stage: stage.into(),
            host: self.host.0,
            at_micros: linda_obs::now_micros(),
            fields,
        });
    }

    // ----- stable tuple spaces -------------------------------------------

    /// Create (or look up) a stable tuple space by name. Stable spaces are
    /// replicated on every host; their contents survive any minority of
    /// crashes and are updated with one multicast per AGS.
    ///
    /// Under sharding, shard 0 assigns the id and the runtime registers
    /// it on every other shard before returning, so the `TsId` means the
    /// same space in all K orderings.
    pub fn create_stable_ts(&self, name: &str) -> Result<TsId, FtError> {
        let (rx, _) = self.submit_on(0, &Request::CreateTs { name: name.into() });
        let id = match self.await_ok(rx, None)? {
            CompletionOk::Ts(id) => id,
            other => unreachable!("create resolved as {other:?}"),
        };
        for s in 1..self.shared.lanes.len() {
            let (rx, _) = self.submit_on(
                s,
                &Request::RegisterTs {
                    id: id.0,
                    name: name.into(),
                },
            );
            match self.await_ok(rx, None)? {
                CompletionOk::Ts(_) => {}
                other => unreachable!("register resolved as {other:?}"),
            }
        }
        Ok(id)
    }

    /// Execute an AGS, blocking until it fires (or fails).
    pub fn execute(&self, ags: &Ags) -> Result<AgsOutcome, FtError> {
        self.execute_traced(ags).map(|(o, _)| o)
    }

    /// Execute an AGS and return the [`linda_obs::TraceId`] its spans
    /// were recorded under, so the caller can fetch the assembled tree
    /// from `/trace/<id>` (or [`crate::Cluster::trace`]) afterwards. For
    /// a cross-shard AGS this is the transaction trace of the attempt
    /// that actually committed (retried attempts get fresh xids).
    pub fn execute_traced(&self, ags: &Ags) -> Result<(AgsOutcome, linda_obs::TraceId), FtError> {
        match self.route(ags)? {
            RouteTo::Single(s) => {
                let (rx, local) = self.submit_on(s, &Request::Ags(ags.clone()));
                match self.await_ok(rx, None)? {
                    CompletionOk::Ags(o) => Ok((o, linda_obs::TraceId::new(self.host.0, local))),
                    other => unreachable!("AGS resolved as {other:?}"),
                }
            }
            RouteTo::Cross(keys) => self.execute_cross(ags, keys, None),
        }
    }

    /// Submit an AGS without waiting: returns a handle whose
    /// [`AgsHandle::wait`] blocks for the outcome. Useful for pipelining
    /// many independent statements (each is still one ordered multicast).
    ///
    /// A cross-shard AGS is driven by a background thread (its multi-leg
    /// protocol needs an active driver); its handle has no meaningful
    /// trace id.
    pub fn execute_async(&self, ags: &Ags) -> AgsHandle {
        match self.route(ags) {
            Ok(RouteTo::Single(s)) => {
                let (rx, local) = self.submit_on(s, &Request::Ags(ags.clone()));
                AgsHandle {
                    rx,
                    trace: linda_obs::TraceId::new(self.host.0, local),
                }
            }
            Ok(RouteTo::Cross(keys)) => {
                let (tx, rx) = crossbeam::channel::bounded(1);
                let rt = self.clone();
                let ags = ags.clone();
                std::thread::Builder::new()
                    .name(format!("ftlinda-xdriver-{}", self.host))
                    .spawn(move || {
                        let _ = tx.send(
                            rt.execute_cross(&ags, keys, None)
                                .map(|(o, _)| CompletionOk::Ags(o)),
                        );
                    })
                    .expect("spawn cross-shard driver");
                AgsHandle {
                    rx,
                    trace: linda_obs::TraceId::new(self.host.0, 0),
                }
            }
            Err(e) => {
                let (tx, rx) = crossbeam::channel::bounded(1);
                let _ = tx.send(Err(e));
                AgsHandle {
                    rx,
                    trace: linda_obs::TraceId::new(self.host.0, 0),
                }
            }
        }
    }

    /// Execute an AGS with a client-side deadline. On `Timeout` the AGS
    /// remains blocked at the replicas and may fire later (its effects
    /// then occur without a visible completion).
    pub fn execute_timeout(&self, ags: &Ags, t: Duration) -> Result<AgsOutcome, FtError> {
        match self.route(ags)? {
            RouteTo::Single(s) => {
                let (rx, _) = self.submit_on(s, &Request::Ags(ags.clone()));
                match self.await_ok(rx, Some(t))? {
                    CompletionOk::Ags(o) => Ok(o),
                    other => unreachable!("AGS resolved as {other:?}"),
                }
            }
            // The deadline bounds the Blocked-retry loop; individual
            // protocol legs complete at ordering-layer speed and are
            // never abandoned half-way (that would leave shards frozen).
            RouteTo::Cross(keys) => self
                .execute_cross(ags, keys, Some(Instant::now() + t))
                .map(|(o, _)| o),
        }
    }

    // ----- classic Linda sugar over AGSs ---------------------------------

    /// Linda `out` to a stable space: `⟨ true ⇒ out(ts, tuple) ⟩`.
    pub fn out(&self, ts: TsId, tuple: Tuple) -> Result<(), FtError> {
        let template = tuple
            .into_fields()
            .into_iter()
            .map(Operand::Const)
            .collect();
        self.execute(&Ags::out_one(ts, template)).map(|_| ())
    }

    /// Blocking Linda `in` on a stable space. Returns the full withdrawn
    /// tuple (actuals re-attached to the bound formals).
    pub fn in_(&self, ts: TsId, pattern: &Pattern) -> Result<Tuple, FtError> {
        let ags = Ags::in_one(ts, pattern_fields(pattern))?;
        let out = self.execute(&ags)?;
        Ok(rebuild_tuple(pattern, &out.bindings))
    }

    /// Blocking Linda `rd` on a stable space.
    pub fn rd(&self, ts: TsId, pattern: &Pattern) -> Result<Tuple, FtError> {
        let ags = Ags::rd_one(ts, pattern_fields(pattern))?;
        let out = self.execute(&ags)?;
        Ok(rebuild_tuple(pattern, &out.bindings))
    }

    /// Strong `inp`: a `None` is an absolute guarantee that no matching
    /// tuple existed at this point of the total order (paper §5: of other
    /// distributed Linda implementations, only PLinda offers this).
    pub fn inp(&self, ts: TsId, pattern: &Pattern) -> Result<Option<Tuple>, FtError> {
        let ags = Ags::inp_one(ts, pattern_fields(pattern))?;
        let out = self.execute(&ags)?;
        Ok((out.branch == 0).then(|| rebuild_tuple(pattern, &out.bindings)))
    }

    /// Strong `rdp` (see [`Runtime::inp`]).
    pub fn rdp(&self, ts: TsId, pattern: &Pattern) -> Result<Option<Tuple>, FtError> {
        let ags = Ags::rdp_one(ts, pattern_fields(pattern))?;
        let out = self.execute(&ags)?;
        Ok((out.branch == 0).then(|| rebuild_tuple(pattern, &out.bindings)))
    }

    // ----- scratch spaces -------------------------------------------------

    /// Create a volatile, host-local scratch tuple space. The returned
    /// [`LocalSpace`] is the direct (cheap, unreplicated) interface; the
    /// [`ScratchId`] lets AGS bodies `out`/`move` into it. Registered
    /// with every shard's kernel: whichever shard executes the AGS can
    /// deposit into it.
    pub fn create_scratch(&self) -> (ScratchId, LocalSpace) {
        let id = ScratchId(
            self.shared
                .next_scratch
                .fetch_add(1, AtomicOrdering::Relaxed),
        );
        let space = LocalSpace::new();
        for lane in &self.shared.lanes {
            lane.kernel.lock().register_scratch(id, space.clone());
        }
        (id, space)
    }

    // ----- introspection ---------------------------------------------------

    /// Deterministic digest of this host's replica state (tests). With
    /// multiple shards, the XOR of every lane kernel's digest.
    pub fn digest(&self) -> u64 {
        self.shared
            .lanes
            .iter()
            .fold(0, |acc, lane| acc ^ lane.kernel.lock().digest())
    }

    /// Order-canonical digest of one stable space across all shards:
    /// XOR of each lane's per-signature-bucket digest. Two deployments
    /// with different shard counts that executed equivalent histories
    /// agree on this value even though tuples of different signatures
    /// interleave differently in their stores.
    pub fn canonical_space_digest(&self, ts: TsId) -> u64 {
        self.shared.lanes.iter().fold(0, |acc, lane| {
            acc ^ lane.kernel.lock().canonical_space_digest(ts)
        })
    }

    /// Number of tuples in a stable space at this replica (summed over
    /// shards; each shard holds its own signature buckets of the space).
    pub fn stable_len(&self, ts: TsId) -> Option<usize> {
        let mut total = None;
        for lane in &self.shared.lanes {
            if let Some(n) = lane.kernel.lock().stable_len(ts) {
                *total.get_or_insert(0) += n;
            }
        }
        total
    }

    /// Snapshot a stable space at this replica. With multiple shards the
    /// buckets are concatenated in shard order: within one signature the
    /// order is the replicated insertion order; across signatures it is
    /// not meaningful (use [`Runtime::canonical_space_digest`] to
    /// compare sharded against unsharded deployments).
    pub fn snapshot(&self, ts: TsId) -> Option<Vec<Tuple>> {
        let mut out: Option<Vec<Tuple>> = None;
        for lane in &self.shared.lanes {
            if let Some(mut v) = lane.kernel.lock().snapshot(ts) {
                out.get_or_insert_with(Vec::new).append(&mut v);
            }
        }
        out
    }

    /// Number of blocked AGSs at this replica (all shards).
    pub fn blocked_len(&self) -> usize {
        self.shared
            .lanes
            .iter()
            .map(|lane| lane.kernel.lock().blocked_len())
            .sum()
    }

    /// Sequence number of the last applied record (shard 0; each shard
    /// numbers its own stream — see [`Runtime::applied_seqs`]).
    pub fn applied_seq(&self) -> u64 {
        self.shared.lanes[0].kernel.lock().applied_seq()
    }

    /// Last applied sequence number of every shard's stream.
    pub fn applied_seqs(&self) -> Vec<u64> {
        self.shared
            .lanes
            .iter()
            .map(|lane| lane.kernel.lock().applied_seq())
            .collect()
    }

    /// Block until this replica has applied at least `seq` on shard 0
    /// (e.g. a lagging or restarted host catching up to
    /// `other.applied_seq()`). Returns `false` if the deadline passes
    /// first.
    pub fn wait_applied(&self, seq: u64, timeout: Duration) -> bool {
        self.wait_applied_shard(0, seq, timeout)
    }

    /// [`Runtime::wait_applied`] against one shard's stream.
    pub fn wait_applied_shard(&self, shard: usize, seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.lanes[shard].kernel.lock().applied_seq() >= seq {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Deep introspection snapshot of this replica: per-space signature
    /// census, match-cost totals, and the blocked-AGS table with ages.
    /// `None` when the runtime was built with introspection disabled.
    /// With multiple shards, shard 0's report (see
    /// [`Runtime::introspect_shard`]).
    pub fn introspect(&self) -> Option<IntrospectReport> {
        self.introspect_shard(0)
    }

    /// [`Runtime::introspect`] for one shard's kernel.
    pub fn introspect_shard(&self, shard: usize) -> Option<IntrospectReport> {
        if !self.shared.config.introspection || shard >= self.shared.lanes.len() {
            return None;
        }
        Some(self.shared.lanes[shard].kernel.lock().introspect())
    }

    /// The `/introspect` JSON payload. Unsharded: the
    /// [`Runtime::introspect`] report plus the top-`k` hottest signatures
    /// across all spaces (by current occupancy). Sharded: a shard map —
    /// `{"host":…,"shards":K,"shard_reports":[…]}` with one full report
    /// per shard, each tagged with its shard id. `None` when
    /// introspection is disabled.
    pub fn introspect_json(&self, top_k: usize) -> Option<String> {
        let shards = self.shared.lanes.len();
        if shards == 1 {
            let r = self.introspect()?;
            return Some(report_json(&r, top_k));
        }
        let reports: Vec<IntrospectReport> = (0..shards)
            .map(|s| self.introspect_shard(s))
            .collect::<Option<Vec<_>>>()?;
        // Load census: tuples stored per shard (summed over spaces from
        // the per-signature occupancy each report already carries), and
        // the heaviest shard's excess share in integer basis points.
        let loads: Vec<u64> = reports
            .iter()
            .map(|r| r.spaces.iter().map(|sp| sp.tuples as u64).sum())
            .collect();
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"host\":{},\"shards\":{},\"shard_census\":{{\"tuples\":[{}],\"imbalance_bp\":{}}},\"shard_reports\":[",
            self.host.0,
            shards,
            loads
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(","),
            imbalance_bp(&loads),
        ));
        for (s, r) in reports.iter().enumerate() {
            if s > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"shard\":{s},\"report\":"));
            let body = report_json(r, top_k);
            out.push_str(body.trim_end());
            out.push('}');
        }
        out.push_str("]}\n");
        Some(out)
    }

    /// Run one starvation-watchdog sweep now over every shard's kernel
    /// (the background thread does this periodically; tests and
    /// operators can force a pass). Shard-aware: foreign guard keys are
    /// resolved against their owning lanes first.
    pub fn starvation_sweep(&self, threshold: Duration) -> Vec<ftlinda_kernel::StarvationReport> {
        Self::sweep_lanes(&self.shared, threshold)
    }

    /// The observability configuration this runtime was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.shared.config
    }

    /// Applied sequence number and state digest, read under one kernel
    /// lock so they describe the same replica state (used by the
    /// divergence detector: equal seq must imply equal digest). Shard
    /// 0's stream; see [`Runtime::applied_digest_shard`].
    pub fn applied_digest(&self) -> (u64, u64) {
        self.applied_digest_shard(0)
    }

    /// [`Runtime::applied_digest`] for one shard's stream. Divergence is
    /// detected per shard: each shard's replicas apply the same ordered
    /// prefix, so equal shard-seq must imply equal shard-digest.
    pub fn applied_digest_shard(&self, shard: usize) -> (u64, u64) {
        let k = self.shared.lanes[shard].kernel.lock();
        (k.applied_seq(), k.digest())
    }

    /// Sequence number of the checkpoint image this host's shard-0
    /// ordering member currently holds, or `None` before the first
    /// boundary.
    pub fn checkpoint_seq(&self) -> Option<u64> {
        self.shared.lanes[0].member.checkpoint_seq()
    }

    /// This host's shard-0 log-compaction watermark: ordered records at
    /// or below it have been truncated and are served from the
    /// checkpoint.
    pub fn log_base(&self) -> u64 {
        self.shared.lanes[0].member.log_base()
    }

    /// Number of ordered records currently retained in this host's
    /// shard-0 log (bounded under compaction).
    pub fn retained_log_len(&self) -> usize {
        self.shared.lanes[0].member.retained_log_len()
    }

    // ----- observability ----------------------------------------------------

    /// This host's shard-0 metrics/event registry (shared with that
    /// shard's sequencer member and kernel; client-side histograms live
    /// here).
    pub fn obs(&self) -> Arc<linda_obs::Registry> {
        self.shared.obs.clone()
    }

    /// Every shard's registry on this host, shard order.
    pub fn obs_all(&self) -> Vec<Arc<linda_obs::Registry>> {
        self.shared
            .lanes
            .iter()
            .map(|lane| lane.member.obs())
            .collect()
    }

    /// One merged snapshot of every shard's registry on this host.
    /// Counters and families sum; config/process-level gauges merge by
    /// max so they are not multiplied by the shard count.
    pub fn metrics_snapshot(&self) -> linda_obs::RegistrySnapshot {
        let mut snap = self.shared.lanes[0].member.obs().snapshot();
        for lane in &self.shared.lanes[1..] {
            snap.merge(&lane.member.obs().snapshot());
        }
        snap
    }

    /// Render this host's metrics (all shards merged) in Prometheus text
    /// exposition format.
    pub fn metrics_text(&self) -> String {
        if self.shared.lanes.len() == 1 {
            return self.shared.obs.render();
        }
        self.metrics_snapshot().render()
    }

    /// If this (restarted) host exhausted its rejoin retry budget without
    /// finding a live peer on some shard, the error message describing
    /// the give-up.
    pub fn rejoin_error(&self) -> Option<String> {
        self.shared
            .lanes
            .iter()
            .find_map(|lane| lane.member.rejoin_error())
    }

    /// Deposit a tuple directly into this replica's copy of a stable
    /// space, bypassing the total order (routed to the shard owning the
    /// tuple's signature bucket). Returns `false` if the space does not
    /// exist here. **Test hook**: this deliberately breaks replica
    /// determinism so divergence detection can be exercised.
    #[doc(hidden)]
    pub fn fault_inject_local(&self, ts: TsId, t: Tuple) -> bool {
        let shard = shard_of(
            ts,
            t.signature().stable_hash(),
            self.shared.lanes.len() as u32,
        );
        self.shared.lanes[shard as usize]
            .kernel
            .lock()
            .fault_inject(ts, t)
    }

    /// Stop the apply threads (cluster teardown).
    pub fn shutdown(&self) {
        self.shared.alive.store(false, AtomicOrdering::Relaxed);
        for lane in &self.shared.lanes {
            lane.member.stop();
        }
        let mut w = self.shared.waiting.lock();
        for (_, (tx, _)) in w.drain() {
            let _ = tx.send(Err(FtError::Shutdown));
        }
    }
}

/// Render one shard's introspection report as the classic `/introspect`
/// JSON object (trailing newline included).
fn report_json(r: &IntrospectReport, top_k: usize) -> String {
    let mut out = String::with_capacity(512);
    out.push_str(&format!(
        "{{\"host\":{},\"applied_seq\":{},\"spaces\":[",
        r.host.0, r.applied
    ));
    for (i, s) in r.spaces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"name\":\"{}\",\"tuples\":{},\"match\":{{\
             \"attempts\":{},\"probes\":{},\"hits\":{},\"cache_hits\":{},\
             \"efficiency_bp\":{}}},\"index\":{{\"value_indexes\":{},\
             \"index_builds\":{},\"miss_cached\":{}}},\
             \"signatures\":[",
            s.id.0,
            linda_obs::json_escape(&s.name),
            s.tuples,
            s.match_stats.attempts,
            s.match_stats.probes,
            s.match_stats.hits,
            s.match_stats.cache_hits,
            s.match_stats.efficiency_bp(),
            s.index.value_indexes,
            s.index.index_builds,
            s.index.miss_cached,
        ));
        for (j, occ) in s.signatures.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"signature\":\"{}\",\"count\":{},\"high_water\":{}}}",
                linda_obs::json_escape(&occ.signature.to_string()),
                occ.count,
                occ.high_water
            ));
        }
        out.push_str("]}");
    }
    out.push_str("],\"blocked\":[");
    for (i, b) in r.blocked.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"seq\":{},\"origin\":{},\"local\":{},\"age_ms\":{},\
             \"guards\":\"{}\",\"nearest_miss\":{},\"starving\":{}}}",
            b.seq,
            b.origin.0,
            b.local,
            b.age.as_millis(),
            linda_obs::json_escape(&b.guards),
            b.nearest_miss,
            b.starving
        ));
    }
    // Hottest signatures across all spaces, by current occupancy.
    let mut hot: Vec<(&str, &linda_space::SignatureOccupancy)> = r
        .spaces
        .iter()
        .flat_map(|s| s.signatures.iter().map(move |occ| (s.name.as_str(), occ)))
        .collect();
    hot.sort_by(|a, b| b.1.count.cmp(&a.1.count).then_with(|| a.0.cmp(b.0)));
    out.push_str("],\"hot_signatures\":[");
    for (i, (space, occ)) in hot.into_iter().take(top_k).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"space\":\"{}\",\"signature\":\"{}\",\"count\":{}}}",
            linda_obs::json_escape(space),
            linda_obs::json_escape(&occ.signature.to_string()),
            occ.count
        ));
    }
    out.push_str("]}\n");
    out
}

/// An in-flight AGS submitted with [`Runtime::execute_async`].
pub struct AgsHandle {
    rx: Receiver<Result<CompletionOk, FtError>>,
    trace: linda_obs::TraceId,
}

impl AgsHandle {
    /// The causal trace id of this AGS — the key for `/trace/<id>` on the
    /// cluster's HTTP exporters and [`crate::Cluster::trace`].
    pub fn trace_id(&self) -> linda_obs::TraceId {
        self.trace
    }
    /// Block for the outcome.
    pub fn wait(self) -> Result<AgsOutcome, FtError> {
        match self.rx.recv().map_err(|_| FtError::Shutdown)?? {
            CompletionOk::Ags(o) => Ok(o),
            other => unreachable!("AGS resolved as {other:?}"),
        }
    }

    /// Block with a deadline (see [`Runtime::execute_timeout`] caveats).
    pub fn wait_timeout(self, t: Duration) -> Result<AgsOutcome, FtError> {
        match self.rx.recv_timeout(t) {
            Ok(r) => match r? {
                CompletionOk::Ags(o) => Ok(o),
                other => unreachable!("AGS resolved as {other:?}"),
            },
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(FtError::Timeout),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(FtError::Shutdown),
        }
    }

    /// Whether the outcome has arrived (non-blocking probe).
    pub fn is_ready(&self) -> bool {
        !self.rx.is_empty()
    }
}

/// Convert a plain [`Pattern`] into AGS match fields.
pub fn pattern_fields(p: &Pattern) -> Vec<MatchField> {
    p.fields()
        .iter()
        .map(|f| match f {
            PatField::Actual(v) => MatchField::Expr(Operand::Const(v.clone())),
            PatField::Formal(t) => MatchField::Bind(*t),
        })
        .collect()
}

/// Reassemble the matched tuple from a pattern and the bound formals.
pub fn rebuild_tuple(p: &Pattern, bindings: &[Value]) -> Tuple {
    let mut bi = 0;
    Tuple::new(
        p.fields()
            .iter()
            .map(|f| match f {
                PatField::Actual(v) => v.clone(),
                PatField::Formal(_) => {
                    let v = bindings[bi].clone();
                    bi += 1;
                    v
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use linda_tuple::{pat, tuple, TypeTag};

    #[test]
    fn pattern_fields_roundtrip() {
        let p = pat!("job", ?int, 2.5);
        let fields = pattern_fields(&p);
        assert_eq!(fields.len(), 3);
        assert!(matches!(fields[1], MatchField::Bind(TypeTag::Int)));
    }

    #[test]
    fn rebuild_tuple_interleaves() {
        let p = pat!("job", ?int, "x", ?str);
        let t = rebuild_tuple(&p, &[Value::Int(4), Value::Str("s".into())]);
        assert_eq!(t, tuple!("job", 4, "x", "s"));
    }

    #[test]
    fn rebuild_all_actuals() {
        let p = pat!("a", 1);
        assert_eq!(rebuild_tuple(&p, &[]), tuple!("a", 1));
    }
}

/root/repo/target/debug/examples/distributed_variable-08fd4de6d84ab8a3.d: examples/distributed_variable.rs

/root/repo/target/debug/examples/distributed_variable-08fd4de6d84ab8a3: examples/distributed_variable.rs

examples/distributed_variable.rs:

//! E8 / Figures 16–17 — the tuple-server RPC variant.
//!
//! Figure 17's point: a host without a local replica forwards each AGS
//! via RPC to a request handler on a tuple server, paying one extra round
//! trip. We measure direct (library-on-replica) vs RPC clients at
//! several simulated RPC latencies; expected shape: direct ≈ RPC@0 minus
//! queue hop, and RPC latency adds exactly 2× the one-way hop.

use criterion::{criterion_group, criterion_main, Criterion};
use ftlinda::{Ags, Cluster, MatchField as MF, Operand, TupleServer, TypeTag};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, linda_tuple::tuple!("count", 0)).unwrap();
    let server = TupleServer::start(rts[0].clone(), 2).unwrap();
    let ags = Ags::builder()
        .guard_in(ts, vec![MF::actual("count"), MF::bind(TypeTag::Int)])
        .out(ts, vec![Operand::cst("count"), Operand::formal(0).add(1)])
        .build()
        .unwrap();

    println!("\nE8 — direct library vs tuple-server RPC:");
    let mut g = c.benchmark_group("fig_rpc_variant");
    g.sample_size(15).measurement_time(Duration::from_secs(2));

    g.bench_function("direct_library", |b| {
        b.iter(|| rts[1].execute(&ags).unwrap())
    });

    for (label, hop_us) in [("rpc_0us", 0u64), ("rpc_100us", 100), ("rpc_500us", 500)] {
        let client = server.client(Duration::from_micros(hop_us));
        // Print an estimate row alongside the Criterion stats.
        let reps = 30;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            client.execute(&ags).unwrap();
        }
        linda_bench::print_row(
            label,
            format!(
                "{:>9.1} µs/AGS",
                t0.elapsed().as_secs_f64() * 1e6 / reps as f64
            ),
        );
        g.bench_function(label, |b| b.iter(|| client.execute(&ags).unwrap()));
    }
    g.finish();
    cluster.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);

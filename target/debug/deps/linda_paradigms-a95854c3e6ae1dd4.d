/root/repo/target/debug/deps/linda_paradigms-a95854c3e6ae1dd4.d: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

/root/repo/target/debug/deps/liblinda_paradigms-a95854c3e6ae1dd4.rlib: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

/root/repo/target/debug/deps/liblinda_paradigms-a95854c3e6ae1dd4.rmeta: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

crates/paradigms/src/lib.rs:
crates/paradigms/src/barrier.rs:
crates/paradigms/src/bot.rs:
crates/paradigms/src/checkpoint.rs:
crates/paradigms/src/consensus.rs:
crates/paradigms/src/distvar.rs:
crates/paradigms/src/dnc.rs:
crates/paradigms/src/pool.rs:

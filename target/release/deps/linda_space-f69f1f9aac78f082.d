/root/repo/target/release/deps/linda_space-f69f1f9aac78f082.d: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs

/root/repo/target/release/deps/liblinda_space-f69f1f9aac78f082.rlib: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs

/root/repo/target/release/deps/liblinda_space-f69f1f9aac78f082.rmeta: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs

crates/space/src/lib.rs:
crates/space/src/space.rs:
crates/space/src/store.rs:

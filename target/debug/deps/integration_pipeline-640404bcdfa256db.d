/root/repo/target/debug/deps/integration_pipeline-640404bcdfa256db.d: tests/integration_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_pipeline-640404bcdfa256db.rmeta: tests/integration_pipeline.rs Cargo.toml

tests/integration_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

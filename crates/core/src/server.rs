//! The tuple-server RPC variant (paper §5.4, Figures 16/17).
//!
//! The paper's base architecture runs the FT-Linda library, Consul, and a
//! TS state machine on *every* participating host. The alternative it
//! sketches for hosts that should not carry replicas (e.g. personal
//! workstations donating idle cycles to a Piranha-style computation) is a
//! **tuple server**: the library forwards each AGS over RPC to a request
//! handler on a server host, which submits it to Consul as before and
//! returns the result. The cost is one extra round trip per AGS.
//!
//! [`TupleServer`] wraps a full [`Runtime`] and serves RPC clients;
//! [`RpcClient`] implements the same blocking call surface with the extra
//! hop (with a configurable simulated RPC latency so experiment E8 can
//! sweep it).
//!
//! This module also hosts the cluster's **HTTP exporter**
//! ([`HttpExporter`]): a std-only listener run per member that serves the
//! observability surface (`/metrics`, `/healthz`, `/events`,
//! `/trace/<id>`) to scrapers and humans with `curl`.

use crate::error::FtError;
use crate::runtime::Runtime;
use ftlinda_ags::{Ags, AgsOutcome, TsId};
use linda_obs::TraceId;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

enum RpcRequest {
    CreateTs {
        name: String,
        reply: crossbeam::channel::Sender<Result<TsId, FtError>>,
    },
    Execute {
        ags: Box<Ags>,
        reply: crossbeam::channel::Sender<Result<AgsOutcome, FtError>>,
    },
}

/// A request handler running on a replica-hosting machine, serving
/// library calls forwarded from non-replica hosts.
pub struct TupleServer {
    tx: crossbeam::channel::Sender<RpcRequest>,
    alive: Arc<AtomicBool>,
    rt: Runtime,
}

impl TupleServer {
    /// Start a server backed by `rt` with `handlers` worker threads (the
    /// paper's request handler processes).
    ///
    /// Thread-spawn failure (fd/thread exhaustion) is an `Err`, not a
    /// panic: a server that cannot field requests should report that to
    /// its operator rather than take the whole replica process down. If
    /// at least one handler came up before the failure, the error still
    /// tears the partial server down (its `Drop` stops the survivors).
    pub fn start(rt: Runtime, handlers: usize) -> std::io::Result<TupleServer> {
        let (tx, rx) = crossbeam::channel::unbounded::<RpcRequest>();
        let alive = Arc::new(AtomicBool::new(true));
        let server = TupleServer { tx, alive, rt };
        for i in 0..handlers.max(1) {
            let rx = rx.clone();
            let rt = server.rt.clone();
            let alive = server.alive.clone();
            std::thread::Builder::new()
                .name(format!("tuple-server-{i}"))
                .spawn(move || {
                    while alive.load(Ordering::Relaxed) {
                        match rx.recv_timeout(Duration::from_millis(100)) {
                            Ok(RpcRequest::CreateTs { name, reply }) => {
                                let _ = reply.send(rt.create_stable_ts(&name));
                            }
                            Ok(RpcRequest::Execute { ags, reply }) => {
                                let _ = reply.send(rt.execute(&ags));
                            }
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                        }
                    }
                })?;
        }
        Ok(server)
    }

    /// Render the backing host's metrics in Prometheus text format —
    /// the natural scrape point when non-replica clients go through RPC.
    pub fn metrics_text(&self) -> String {
        self.rt.metrics_text()
    }

    /// Connect a client with the given simulated one-way RPC latency.
    pub fn client(&self, rpc_latency: Duration) -> RpcClient {
        RpcClient {
            tx: self.tx.clone(),
            latency: rpc_latency,
        }
    }

    /// Stop the handler threads.
    pub fn stop(&self) {
        self.alive.store(false, Ordering::Relaxed);
    }
}

impl Drop for TupleServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// An FT-Linda client on a host with no local replica: every operation
/// pays one RPC round trip to the tuple server in addition to the normal
/// AGS cost.
#[derive(Clone)]
pub struct RpcClient {
    tx: crossbeam::channel::Sender<RpcRequest>,
    latency: Duration,
}

impl RpcClient {
    fn hop(&self) {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
    }

    /// Create (or look up) a stable space via the server.
    pub fn create_stable_ts(&self, name: &str) -> Result<TsId, FtError> {
        let (rtx, rrx) = crossbeam::channel::bounded(1);
        self.hop();
        self.tx
            .send(RpcRequest::CreateTs {
                name: name.into(),
                reply: rtx,
            })
            .map_err(|_| FtError::Shutdown)?;
        let r = rrx.recv().map_err(|_| FtError::Shutdown)?;
        self.hop();
        r
    }

    /// Execute an AGS via the server (blocking).
    pub fn execute(&self, ags: &Ags) -> Result<AgsOutcome, FtError> {
        let (rtx, rrx) = crossbeam::channel::bounded(1);
        self.hop();
        self.tx
            .send(RpcRequest::Execute {
                ags: Box::new(ags.clone()),
                reply: rtx,
            })
            .map_err(|_| FtError::Shutdown)?;
        let r = rrx.recv().map_err(|_| FtError::Shutdown)?;
        self.hop();
        r
    }
}

// ---------------------------------------------------------------------------
// HTTP exporter
// ---------------------------------------------------------------------------

/// Content providers for one member's HTTP endpoints. Each closure is
/// called per request, so responses always reflect live state. The trace
/// provider receives the parsed id and returns the assembled span tree as
/// JSON — for a cluster member it gathers spans from **every** replica's
/// log, not just the serving member's.
pub struct ExporterSources {
    /// `/metrics`: Prometheus text exposition.
    pub metrics: Arc<dyn Fn() -> String + Send + Sync>,
    /// `/healthz`: one JSON object of member liveness/digest status.
    pub health: Arc<dyn Fn() -> String + Send + Sync>,
    /// `/events`: recent structured events, one JSON object per line.
    pub events: Arc<dyn Fn() -> String + Send + Sync>,
    /// `/trace/<id>`: the cross-replica span tree for one AGS, as JSON.
    pub trace: Arc<dyn Fn(TraceId) -> String + Send + Sync>,
    /// `/introspect`: per-space signature histogram, blocked-AGS table
    /// and hot signatures as JSON; `None` renders 404 (introspection
    /// disabled on this cluster).
    pub introspect: Arc<dyn Fn() -> Option<String> + Send + Sync>,
    /// `/metrics/cluster`: Prometheus text merging the registries of the
    /// cluster itself and every live member — one scrape target for the
    /// whole group.
    pub cluster_metrics: Arc<dyn Fn() -> String + Send + Sync>,
    /// `/timeseries`: the bounded ring of periodic metric snapshots as
    /// JSON; `None` renders 404 (sampler disabled on this cluster).
    pub timeseries: Arc<dyn Fn() -> Option<String> + Send + Sync>,
    /// `/metrics/snapshot`: this process's merged registry snapshot in
    /// the `ftlsnap` wire format ([`linda_obs::RegistrySnapshot::to_wire`]).
    /// The federation *leaf*: it never fans out to peers, so fan-out
    /// endpoints can fetch it without recursion.
    pub snapshot: Arc<dyn Fn() -> String + Send + Sync>,
    /// `/spans/<id>`: this process's local spans of one trace in the
    /// `ftlspans` wire format ([`linda_obs::spans_wire`]) — the other
    /// federation leaf, fetched by peers assembling a cluster trace.
    pub spans: Arc<dyn Fn(TraceId) -> String + Send + Sync>,
    /// `/cluster/trace/<id>`: the federated span tree — local spans
    /// merged with every live peer's `/spans/<id>` — as JSON, with
    /// unreachable members listed in `truncated_hosts`.
    pub cluster_trace: Arc<dyn Fn(TraceId) -> String + Send + Sync>,
}

/// A tiny std-only HTTP/1.1 listener serving one member's observability
/// surface. GET-only, `Connection: close`, loopback by default — it is a
/// scrape endpoint, not a web server.
pub struct HttpExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HttpExporter {
    /// Bind `127.0.0.1:port` (`port` 0 picks an ephemeral port — the
    /// actual address is [`HttpExporter::addr`]) and serve `sources` on a
    /// background thread until [`HttpExporter::stop`].
    pub fn spawn(port: u16, sources: ExporterSources) -> std::io::Result<HttpExporter> {
        // `bind_reuse` (SO_REUSEADDR): a relaunched node must rebind its
        // fixed scrape port while the dead incarnation's connections are
        // still in TIME_WAIT.
        let listener = consul_sim::bind_reuse(SocketAddr::from(([127, 0, 0, 1], port)))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name(format!("http-exporter-{}", addr.port()))
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Responses are small; serve on this thread.
                            let _ = serve_connection(stream, &sources);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(2)),
                    }
                }
            })?;
        Ok(HttpExporter {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpExporter {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(mut stream: TcpStream, sources: &ExporterSources) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read until the end of the request head (or 4 KiB — paths we serve
    // are short, and we never read a body).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 4096 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return respond(&mut stream, 400, "text/plain", "bad request"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed");
    }
    match path {
        "/metrics" => {
            let body = (sources.metrics)();
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/metrics/cluster" => {
            let body = (sources.cluster_metrics)();
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/metrics/snapshot" => {
            let body = (sources.snapshot)();
            respond(&mut stream, 200, "text/plain", &body)
        }
        "/introspect" => match (sources.introspect)() {
            Some(body) => respond(&mut stream, 200, "application/json", &body),
            None => respond(&mut stream, 404, "text/plain", "introspection disabled"),
        },
        "/timeseries" => match (sources.timeseries)() {
            Some(body) => respond(&mut stream, 200, "application/json", &body),
            None => respond(&mut stream, 404, "text/plain", "time-series sampler disabled"),
        },
        "/healthz" => {
            let body = (sources.health)();
            respond(&mut stream, 200, "application/json", &body)
        }
        "/events" => {
            let body = (sources.events)();
            respond(&mut stream, 200, "application/x-ndjson", &body)
        }
        p if p.starts_with("/trace/") => match p["/trace/".len()..].parse::<TraceId>() {
            Ok(id) => {
                let body = (sources.trace)(id);
                respond(&mut stream, 200, "application/json", &body)
            }
            Err(e) => respond(&mut stream, 400, "text/plain", &e.to_string()),
        },
        p if p.starts_with("/spans/") => match p["/spans/".len()..].parse::<TraceId>() {
            Ok(id) => {
                let body = (sources.spans)(id);
                respond(&mut stream, 200, "text/plain", &body)
            }
            Err(e) => respond(&mut stream, 400, "text/plain", &e.to_string()),
        },
        p if p.starts_with("/cluster/trace/") => {
            match p["/cluster/trace/".len()..].parse::<TraceId>() {
                Ok(id) => {
                    let body = (sources.cluster_trace)(id);
                    respond(&mut stream, 200, "application/json", &body)
                }
                Err(e) => respond(&mut stream, 400, "text/plain", &e.to_string()),
            }
        }
        _ => respond(
            &mut stream,
            404,
            "text/plain",
            "not found; try /metrics /metrics/cluster /metrics/snapshot /introspect /timeseries /healthz /events /trace/<origin>-<local> /spans/<id> /cluster/trace/<id>",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Render an [`linda_obs::Event`] ring as JSON lines (one object per
/// event, oldest first) — the `/events` payload.
pub fn events_json_lines(events: &[linda_obs::Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str("{\"kind\":\"");
        out.push_str(&linda_obs::json_escape(&ev.kind));
        out.push_str("\",\"fields\":{");
        for (i, (k, v)) in ev.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&linda_obs::json_escape(k));
            out.push_str("\":\"");
            out.push_str(&linda_obs::json_escape(v));
            out.push('"');
        }
        out.push_str("}}\n");
    }
    out
}

// ---------------------------------------------------------------------------
// HTTP client
// ---------------------------------------------------------------------------

/// GET `path` from another member's exporter at `addr`, returning
/// `(status, body)`. std-only with hard connect/read/write timeouts —
/// the federation endpoints call this per live peer, so a hung member
/// must cost a bounded wait, not a stuck scrape.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()?;
    // The exporter always closes after one response, so read to EOF.
    let mut raw = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let deadline = std::time::Instant::now() + timeout;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "response timed out",
                ));
            }
            Err(e) => return Err(e),
        }
        if std::time::Instant::now() > deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "response timed out",
            ));
        }
    }
    let text = String::from_utf8_lossy(&raw);
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let status: u16 = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let body = match text.find("\r\n\r\n") {
        Some(i) => text[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

// ---------------------------------------------------------------------------
// Push-gateway client
// ---------------------------------------------------------------------------

/// POST `body` (Prometheus text) to an `http://host:port/path` URL with a
/// short timeout, returning the response status code. std-only — the
/// push-gateway client counterpart of [`HttpExporter`], used by
/// [`crate::ClusterBuilder::push_gateway`] mode.
pub fn http_post_metrics(url: &str, body: &str) -> std::io::Result<u16> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidInput, m.to_string());
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| bad("push gateway URL must start with http://"))?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    let mut stream = TcpStream::connect(authority)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: {authority}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    // Read just the status line; push gateways answer 200/202 with an
    // empty body.
    let mut buf = Vec::with_capacity(128);
    let mut chunk = [0u8; 256];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(2).any(|w| w == b"\r\n") {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    let line = String::from_utf8_lossy(&buf);
    line.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed push gateway response"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use ftlinda_ags::{MatchField as MF, Operand};
    use linda_tuple::TypeTag;
    use std::net::TcpListener;

    #[test]
    fn rpc_client_round_trip() {
        let (cluster, rts) = Cluster::new(2);
        let server = TupleServer::start(rts[0].clone(), 2).unwrap();
        let client = server.client(Duration::ZERO);
        let ts = client.create_stable_ts("main").unwrap();
        client
            .execute(&Ags::out_one(ts, vec![Operand::cst("x"), Operand::cst(1)]))
            .unwrap();
        let o = client
            .execute(&Ags::in_one(ts, vec![MF::actual("x"), MF::bind(TypeTag::Int)]).unwrap())
            .unwrap();
        assert_eq!(o.bindings[0].as_int(), Some(1));
        cluster.shutdown();
    }

    #[test]
    fn rpc_and_direct_clients_interoperate() {
        let (cluster, rts) = Cluster::new(2);
        let server = TupleServer::start(rts[0].clone(), 1).unwrap();
        let client = server.client(Duration::ZERO);
        let ts = rts[1].create_stable_ts("shared").unwrap();
        let ts2 = client.create_stable_ts("shared").unwrap();
        assert_eq!(ts, ts2);
        client
            .execute(&Ags::out_one(ts, vec![Operand::cst("from-rpc")]))
            .unwrap();
        assert_eq!(
            rts[1].in_(ts, &linda_tuple::pat!("from-rpc")).unwrap(),
            linda_tuple::tuple!("from-rpc")
        );
        cluster.shutdown();
    }

    #[test]
    fn http_post_metrics_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            let mut chunk = [0u8; 256];
            loop {
                let n = s.read(&mut chunk).unwrap();
                buf.extend_from_slice(&chunk[..n]);
                if n == 0 || String::from_utf8_lossy(&buf).contains("push_me 1") {
                    break;
                }
            }
            s.write_all(b"HTTP/1.1 202 Accepted\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
            String::from_utf8_lossy(&buf).to_string()
        });
        let url = format!("http://{addr}/metrics/job/ftlinda/instance/0");
        let status = http_post_metrics(&url, "push_me 1\n").unwrap();
        assert_eq!(status, 202);
        let seen = server.join().unwrap();
        assert!(seen.starts_with("POST /metrics/job/ftlinda/instance/0 HTTP/1.1\r\n"));
        assert!(seen.contains("Content-Length: 10"));
        assert!(seen.ends_with("push_me 1\n"));
    }

    #[test]
    fn pushed_cluster_page_keeps_shard_labels_through_merge() {
        // Two "members", each contributing shard-labeled family children;
        // the pushed base-URL page must carry every child through the
        // snapshot merge (the old pusher sent only the bare cluster
        // registry, which has none).
        let member0 = linda_obs::Registry::new();
        member0
            .counter_family("ftlinda_shard_ags_total", "per-shard AGS applies")
            .with(&[("shard", "0")])
            .add(3);
        let member1 = linda_obs::Registry::new();
        member1
            .counter_family("ftlinda_shard_ags_total", "per-shard AGS applies")
            .with(&[("shard", "1")])
            .add(5);
        let cluster = linda_obs::Registry::new();
        let mut snap = cluster.snapshot();
        snap.merge(&member0.snapshot());
        snap.merge(&member1.snapshot());
        let page = snap.render();
        assert!(
            page.contains("ftlinda_shard_ags_total{shard=\"0\"} 3"),
            "{page}"
        );
        assert!(
            page.contains("ftlinda_shard_ags_total{shard=\"1\"} 5"),
            "{page}"
        );

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            let mut chunk = [0u8; 512];
            loop {
                let n = s.read(&mut chunk).unwrap();
                buf.extend_from_slice(&chunk[..n]);
                if n == 0 || String::from_utf8_lossy(&buf).contains("shard=\"1\"") {
                    break;
                }
            }
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
            String::from_utf8_lossy(&buf).to_string()
        });
        let status = http_post_metrics(&format!("http://{addr}/"), &page).unwrap();
        assert_eq!(status, 200);
        let seen = server.join().unwrap();
        assert!(seen.contains("ftlinda_shard_ags_total{shard=\"0\"} 3"));
        assert!(seen.contains("ftlinda_shard_ags_total{shard=\"1\"} 5"));
    }

    #[test]
    fn http_post_metrics_rejects_bad_urls_and_dead_targets() {
        assert!(http_post_metrics("ftp://x/metrics", "m 1\n").is_err());
        // A port nothing listens on: connection refused surfaces as Err,
        // which the push thread counts as a push failure.
        assert!(http_post_metrics("http://127.0.0.1:1/metrics", "m 1\n").is_err());
    }

    #[test]
    fn rpc_latency_is_paid_per_call() {
        let (cluster, rts) = Cluster::new(2);
        let server = TupleServer::start(rts[0].clone(), 1).unwrap();
        let slow = server.client(Duration::from_millis(10));
        let ts = slow.create_stable_ts("main").unwrap();
        let t0 = std::time::Instant::now();
        slow.execute(&Ags::out_one(ts, vec![Operand::cst(1)]))
            .unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20), "two hops");
        cluster.shutdown();
    }
}

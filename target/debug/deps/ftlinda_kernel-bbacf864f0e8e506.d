/root/repo/target/debug/deps/ftlinda_kernel-bbacf864f0e8e506.d: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

/root/repo/target/debug/deps/ftlinda_kernel-bbacf864f0e8e506: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

crates/kernel/src/lib.rs:
crates/kernel/src/exec.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/proto.rs:

//! Common types for totally-ordered atomic multicast.
//!
//! Consul's job in the FT-Linda architecture (paper §5.1) is to take AGS
//! request messages from the library, disseminate them to every tuple
//! space replica, and deliver them **in the same total order everywhere**,
//! interleaving membership changes into that order so replicas insert
//! failure tuples at identical points in the command stream.

use crate::net::HostId;
use bytes::Bytes;
use linda_obs::TraceId;

/// Identifier a sender assigns to its own broadcast; `(origin, local)` is
/// globally unique and lets the origin recognize its own delivery.
///
/// The same pair doubles as the causal [`TraceId`] of the broadcast:
/// tracing rides the identity that is already on the wire, adding no
/// bytes to any message.
pub type LocalId = u64;

/// One submit coalesced into a batch record: the `(origin, local)` pair
/// identifies the broadcast exactly as it would in a solo `App` record.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEntry {
    /// Host that submitted this entry.
    pub origin: HostId,
    /// Origin-local id of the broadcast.
    pub local: LocalId,
    /// The application payload.
    pub payload: Bytes,
}

impl BatchEntry {
    /// The causal trace id this entry carries (its wire identity).
    pub fn trace_id(&self) -> TraceId {
        TraceId::new(self.origin.0, self.local)
    }
}

/// The body of an ordered record.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordBody {
    /// An application payload (an encoded AGS request, for FT-Linda).
    App(Bytes),
    /// Several submits coalesced by the coordinator into one multicast
    /// (group commit). The record's `seq` is the sequence number of the
    /// *first* entry; entry `i` holds global sequence `seq + i`. Batch
    /// records exist only on the wire: receivers explode them into solo
    /// `App` records (see [`Record::explode`]) before log append, so the
    /// log, deliveries, sync, NACK repair, and duplicate detection all
    /// remain per-entry.
    Batch(Vec<BatchEntry>),
    /// Membership change: `host` failed. Replicas deposit failure tuples
    /// when they deliver this.
    Fail(HostId),
    /// Membership change: `host` (re)joined.
    Join(HostId),
    /// Checkpoint boundary, emitted periodically by the coordinator.
    /// Because the marker is ordered like any record, every replica sees
    /// it at the same sequence number and cuts its log at the identical
    /// point: the application snapshots its state machine exactly here,
    /// hands the image back to the ordering layer, and the log prefix up
    /// to (and including) this seq becomes eligible for truncation.
    Checkpoint,
}

/// An opaque state-machine checkpoint riding the ordering layer's wire
/// protocol. The ordering layer never interprets `bytes` — it only needs
/// the sequence number the image was taken at (to ship the right log
/// tail) and carries the digest so the receiver can verify the restore.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointImage {
    /// Sequence number the image captures: applying it is equivalent to
    /// replaying the ordered log from 1 through `seq`.
    pub seq: u64,
    /// State digest at `seq` (the kernel's `digest()`); the restoring
    /// replica recomputes and compares.
    pub digest: u64,
    /// Codec-serialized state image.
    pub bytes: Bytes,
}

impl CheckpointImage {
    /// Approximate wire size of the image in bytes.
    pub fn wire_size(&self) -> usize {
        8 + 8 + self.bytes.len()
    }
}

/// One entry of the totally-ordered stream. `seq` is contiguous from 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Global sequence number (contiguous, starting at 1).
    pub seq: u64,
    /// Host that originated the record (for `App`: the submitting host;
    /// for view changes: the coordinator that emitted it).
    pub origin: HostId,
    /// Origin-local id of the broadcast (0 for view changes).
    pub local: LocalId,
    /// Payload.
    pub body: RecordBody,
}

impl Record {
    /// The causal trace id of an `App` record (its `(origin, local)` wire
    /// identity). `None` for view changes and wire-only batch envelopes,
    /// which are not application broadcasts.
    pub fn trace_id(&self) -> Option<TraceId> {
        match self.body {
            RecordBody::App(_) => Some(TraceId::new(self.origin.0, self.local)),
            _ => None,
        }
    }

    /// Approximate wire size of the record in bytes.
    pub fn wire_size(&self) -> usize {
        let body = match &self.body {
            RecordBody::App(p) => p.len(),
            RecordBody::Batch(es) => es.iter().map(|e| 4 + 8 + e.payload.len()).sum(),
            _ => 4,
        };
        8 + 4 + 8 + 1 + body
    }

    /// Explode a batch record into the solo `App` records it carries
    /// (entry `i` gets sequence `seq + i`); a non-batch record is returned
    /// unchanged. Receivers call this before per-record accept logic so
    /// that everything downstream of the wire sees one record per submit.
    pub fn explode(self) -> Vec<Record> {
        match self.body {
            RecordBody::Batch(entries) => entries
                .into_iter()
                .enumerate()
                .map(|(i, e)| Record {
                    seq: self.seq + i as u64,
                    origin: e.origin,
                    local: e.local,
                    body: RecordBody::App(e.payload),
                })
                .collect(),
            _ => vec![self],
        }
    }
}

/// What the ordering layer hands to the application (the TS replica state
/// machine), in identical order at every member.
#[derive(Debug, Clone, PartialEq)]
pub enum Delivery {
    /// An application message.
    App {
        /// Global sequence number.
        seq: u64,
        /// Submitting host.
        origin: HostId,
        /// Origin-local broadcast id.
        local: LocalId,
        /// Payload bytes.
        payload: Bytes,
    },
    /// `host` failed; ordered like any message.
    Fail {
        /// Global sequence number.
        seq: u64,
        /// The failed host.
        host: HostId,
    },
    /// `host` (re)joined.
    Join {
        /// Global sequence number.
        seq: u64,
        /// The joined host.
        host: HostId,
    },
    /// A checkpoint boundary: the application must snapshot its state
    /// *now* (having applied exactly the records up to `seq`) and hand
    /// the image back to the ordering layer so the log can be truncated.
    Checkpoint {
        /// Global sequence number of the boundary.
        seq: u64,
    },
    /// Synthesized (never from a [`Record`]) when a snapshot with a
    /// checkpoint arrives: the application must replace its state with
    /// the image before applying any subsequent deliveries. Emitted as
    /// the first delivery of a rejoin, or mid-stream when a member fell
    /// behind the coordinator's compaction watermark.
    Restore {
        /// The state image to restore.
        image: CheckpointImage,
    },
    /// Synthesized (never from a [`Record`]) when the member learns it
    /// was evicted on a false suspicion: the coordinator ordered a
    /// `Fail` for it while it was alive. Its in-flight broadcasts are
    /// indeterminate — the application must fail their waiters. The
    /// member re-enters through the JoinReq → Snapshot path, so a
    /// `Restore` (or a replayed tail) follows once it is re-admitted.
    Evicted {
        /// The member's contiguous prefix at the moment of eviction.
        seq: u64,
    },
}

impl Delivery {
    /// The causal trace id of an `App` delivery; `None` for view changes.
    pub fn trace_id(&self) -> Option<TraceId> {
        match self {
            Delivery::App { origin, local, .. } => Some(TraceId::new(origin.0, *local)),
            _ => None,
        }
    }

    /// The record's global sequence number (for `Restore`: the sequence
    /// number the image captures — applying it lands the replica there).
    pub fn seq(&self) -> u64 {
        match self {
            Delivery::App { seq, .. }
            | Delivery::Fail { seq, .. }
            | Delivery::Join { seq, .. }
            | Delivery::Checkpoint { seq }
            | Delivery::Evicted { seq } => *seq,
            Delivery::Restore { image } => image.seq,
        }
    }

    /// Convert a [`Record`] into the corresponding delivery event.
    ///
    /// # Panics
    ///
    /// Panics on a [`RecordBody::Batch`] record: batches are a wire-only
    /// encoding and must be split with [`Record::explode`] before any
    /// per-record processing.
    pub fn from_record(r: &Record) -> Delivery {
        match &r.body {
            RecordBody::Batch(_) => {
                panic!("batch records must be exploded before delivery")
            }
            RecordBody::App(p) => Delivery::App {
                seq: r.seq,
                origin: r.origin,
                local: r.local,
                payload: p.clone(),
            },
            RecordBody::Fail(h) => Delivery::Fail {
                seq: r.seq,
                host: *h,
            },
            RecordBody::Join(h) => Delivery::Join {
                seq: r.seq,
                host: *h,
            },
            RecordBody::Checkpoint => Delivery::Checkpoint { seq: r.seq },
        }
    }
}

/// Which total-order protocol a group runs (ablation A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protocol {
    /// Fixed-sequencer with coordinator failover: one extra hop to the
    /// sequencer, constant message cost, survives crashes. The default,
    /// and the protocol used by the FT-Linda runtime.
    #[default]
    Sequencer,
    /// ISIS-style agreed timestamps: no coordinator, two phases, higher
    /// message cost. Implemented for failure-free operation only (used by
    /// the ordering ablation benchmark).
    Isis,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_from_record() {
        let r = Record {
            seq: 3,
            origin: HostId(1),
            local: 9,
            body: RecordBody::App(Bytes::from_static(b"xy")),
        };
        match Delivery::from_record(&r) {
            Delivery::App {
                seq,
                origin,
                local,
                payload,
            } => {
                assert_eq!((seq, origin, local), (3, HostId(1), 9));
                assert_eq!(&payload[..], b"xy");
            }
            other => panic!("wrong delivery {other:?}"),
        }
        assert_eq!(Delivery::from_record(&r).seq(), 3);

        let f = Record {
            seq: 4,
            origin: HostId(0),
            local: 0,
            body: RecordBody::Fail(HostId(2)),
        };
        assert_eq!(
            Delivery::from_record(&f),
            Delivery::Fail {
                seq: 4,
                host: HostId(2)
            }
        );

        let j = Record {
            seq: 5,
            origin: HostId(0),
            local: 0,
            body: RecordBody::Join(HostId(2)),
        };
        assert_eq!(
            Delivery::from_record(&j),
            Delivery::Join {
                seq: 5,
                host: HostId(2)
            }
        );
    }

    #[test]
    fn explode_assigns_contiguous_seqs() {
        let b = Record {
            seq: 7,
            origin: HostId(0),
            local: 0,
            body: RecordBody::Batch(vec![
                BatchEntry {
                    origin: HostId(1),
                    local: 4,
                    payload: Bytes::from_static(b"a"),
                },
                BatchEntry {
                    origin: HostId(2),
                    local: 9,
                    payload: Bytes::from_static(b"b"),
                },
            ]),
        };
        let solo = b.explode();
        assert_eq!(solo.len(), 2);
        assert_eq!(solo[0].seq, 7);
        assert_eq!(solo[0].origin, HostId(1));
        assert_eq!(solo[0].local, 4);
        assert_eq!(solo[0].body, RecordBody::App(Bytes::from_static(b"a")));
        assert_eq!(solo[1].seq, 8);
        assert_eq!(solo[1].origin, HostId(2));
        assert_eq!(solo[1].local, 9);

        // Non-batch records pass through unchanged.
        let r = Record {
            seq: 1,
            origin: HostId(0),
            local: 1,
            body: RecordBody::App(Bytes::from_static(b"x")),
        };
        assert_eq!(r.clone().explode(), vec![r]);
    }

    #[test]
    fn batch_wire_size_counts_every_entry() {
        let b = Record {
            seq: 1,
            origin: HostId(0),
            local: 0,
            body: RecordBody::Batch(vec![
                BatchEntry {
                    origin: HostId(1),
                    local: 1,
                    payload: Bytes::from(vec![0u8; 10]),
                },
                BatchEntry {
                    origin: HostId(2),
                    local: 1,
                    payload: Bytes::from(vec![0u8; 20]),
                },
            ]),
        };
        // Header + two entries with per-entry (origin, local) framing.
        assert_eq!(b.wire_size(), 8 + 4 + 8 + 1 + (4 + 8 + 10) + (4 + 8 + 20));
    }

    #[test]
    fn wire_size_scales_with_payload() {
        let small = Record {
            seq: 1,
            origin: HostId(0),
            local: 1,
            body: RecordBody::App(Bytes::from_static(b"a")),
        };
        let big = Record {
            seq: 1,
            origin: HostId(0),
            local: 1,
            body: RecordBody::App(Bytes::from(vec![0u8; 100])),
        };
        assert!(big.wire_size() > small.wire_size());
    }
}

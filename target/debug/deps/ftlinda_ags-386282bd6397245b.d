/root/repo/target/debug/deps/ftlinda_ags-386282bd6397245b.d: crates/ags/src/lib.rs crates/ags/src/ags.rs crates/ags/src/expr.rs crates/ags/src/ops.rs crates/ags/src/wire.rs

/root/repo/target/debug/deps/libftlinda_ags-386282bd6397245b.rlib: crates/ags/src/lib.rs crates/ags/src/ags.rs crates/ags/src/expr.rs crates/ags/src/ops.rs crates/ags/src/wire.rs

/root/repo/target/debug/deps/libftlinda_ags-386282bd6397245b.rmeta: crates/ags/src/lib.rs crates/ags/src/ags.rs crates/ags/src/expr.rs crates/ags/src/ops.rs crates/ags/src/wire.rs

crates/ags/src/lib.rs:
crates/ags/src/ags.rs:
crates/ags/src/expr.rs:
crates/ags/src/ops.rs:
crates/ags/src/wire.rs:

//! A2 — tuple-store ablation: signature-indexed store vs linear scan.
//!
//! DESIGN.md §6: the FT-lcc signature catalog exists because matching
//! should be signature-bucketed rather than a scan of the whole space.
//! We populate stores with N tuples across several signatures and head
//! values, then measure `rd`-style lookups and `in`+`out` churn.
//! Expected shape: the indexed store is ~O(1) in N for head-keyed
//! patterns while the linear store degrades linearly — the gap widening
//! to orders of magnitude at 10⁵ tuples.

use criterion::{criterion_group, criterion_main, Criterion};
use linda_bench::{int_tuple, rng};
use linda_space::{IndexedStore, LinearStore, Store};
use linda_tuple::{pat, tuple};
use std::time::Duration;

fn populate(store: &mut dyn Store, n: usize) {
    let mut r = rng(7);
    let heads = ["alpha", "beta", "gamma", "delta"];
    for i in 0..n {
        let head = heads[i % heads.len()];
        match i % 3 {
            0 => store.insert(int_tuple(head, 2, &mut r)),
            1 => store.insert(int_tuple(head, 3, &mut r)),
            _ => store.insert(tuple!(head, i as i64, 0.5)),
        }
    }
    // One needle per store, inserted in the middle-ish of the bucket.
    store.insert(tuple!("needle", 1, 2));
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_matching_read");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for n in [100usize, 1_000, 10_000, 100_000] {
        let mut idx = IndexedStore::new();
        populate(&mut idx, n);
        let mut lin = LinearStore::new();
        populate(&mut lin, n);
        let needle = pat!("needle", ?int, ?int);
        g.bench_function(format!("indexed_read_{n}"), |b| {
            b.iter(|| idx.read(&needle).unwrap())
        });
        g.bench_function(format!("linear_read_{n}"), |b| {
            b.iter(|| lin.read(&needle).unwrap())
        });
        // Wildcard-head pattern: exercises the non-indexed path too.
        let wide = pat!(?str, 1, 2);
        g.bench_function(format!("indexed_read_wildhead_{n}"), |b| {
            b.iter(|| idx.read(&wide))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_matching_churn");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for n in [1_000usize, 10_000, 100_000] {
        let mut idx = IndexedStore::new();
        populate(&mut idx, n);
        let mut lin = LinearStore::new();
        populate(&mut lin, n);
        let p = pat!("needle", ?int, ?int);
        g.bench_function(format!("indexed_take_out_{n}"), |b| {
            b.iter(|| {
                let t = idx.take(&p).unwrap();
                idx.insert(t);
            })
        });
        g.bench_function(format!("linear_take_out_{n}"), |b| {
            b.iter(|| {
                let t = lin.take(&p).unwrap();
                lin.insert(t);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

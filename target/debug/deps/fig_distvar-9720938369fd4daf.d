/root/repo/target/debug/deps/fig_distvar-9720938369fd4daf.d: crates/bench/benches/fig_distvar.rs Cargo.toml

/root/repo/target/debug/deps/libfig_distvar-9720938369fd4daf.rmeta: crates/bench/benches/fig_distvar.rs Cargo.toml

crates/bench/benches/fig_distvar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

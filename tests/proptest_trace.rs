//! Property: every AGS that completes has a **complete cross-replica
//! span chain** — submit at the origin, exactly-once flush at some
//! coordinator, deliver + apply on every live replica — even when the
//! coordinator crashes mid-stream and the submits are resubmitted and
//! re-flushed by its successor. Tracing must not lose stages across
//! failover, because per-stage latency attribution is only trustworthy
//! if the chain is provably whole.

use ftlinda::{Ags, Cluster, HostId, Operand};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn applied_ags_yield_complete_span_chains(
        n_ags in 1usize..10,
        crash_at in proptest::option::of(0usize..10),
    ) {
        let crash_at = crash_at.filter(|c| *c < n_ags);
        // Origin is host 1 so crashing the initial coordinator (host 0)
        // never kills the submitter.
        let (cluster, rts) = Cluster::builder().hosts(3).no_http().build();
        let ts = rts[1].create_stable_ts("main").unwrap();

        let mut handles = Vec::with_capacity(n_ags);
        for i in 0..n_ags {
            if crash_at == Some(i) {
                cluster.crash(HostId(0));
            }
            let ags = Ags::out_one(ts, vec![Operand::cst("job"), Operand::cst(i as i64)]);
            handles.push(rts[1].execute_async(&ags));
        }
        let traces: Vec<_> = handles.iter().map(|h| h.trace_id()).collect();
        for h in handles {
            h.wait().unwrap();
        }

        let live: Vec<u32> = if crash_at.is_some() {
            vec![1, 2]
        } else {
            vec![0, 1, 2]
        };
        // The origin has applied everything it completed; wait for the
        // other live replicas to reach the same point.
        let target = rts[1].applied_seq();
        for rt in &rts {
            if live.contains(&rt.host().0) {
                prop_assert!(
                    rt.wait_applied(target, Duration::from_secs(5)),
                    "host {} never caught up to {target}",
                    rt.host().0
                );
            }
        }

        for id in &traces {
            let tree = cluster.trace(*id);
            prop_assert!(
                tree.is_complete(&live),
                "incomplete chain for {id} (crash_at={crash_at:?}): {}",
                tree.to_json()
            );
            // Latency attribution is well-defined on a complete chain:
            // the submit→apply interval exists and is non-negative.
            prop_assert!(tree.between("submit", "apply").is_some());
        }
        cluster.shutdown();
    }
}

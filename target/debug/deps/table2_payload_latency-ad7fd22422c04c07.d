/root/repo/target/debug/deps/table2_payload_latency-ad7fd22422c04c07.d: crates/bench/benches/table2_payload_latency.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_payload_latency-ad7fd22422c04c07.rmeta: crates/bench/benches/table2_payload_latency.rs Cargo.toml

crates/bench/benches/table2_payload_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/divide_conquer-d459362fdfa4022a.d: examples/divide_conquer.rs

/root/repo/target/debug/examples/divide_conquer-d459362fdfa4022a: examples/divide_conquer.rs

examples/divide_conquer.rs:

/root/repo/target/debug/deps/linda_paradigms-5c0ace1a615b0b00.d: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

/root/repo/target/debug/deps/liblinda_paradigms-5c0ace1a615b0b00.rlib: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

/root/repo/target/debug/deps/liblinda_paradigms-5c0ace1a615b0b00.rmeta: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

crates/paradigms/src/lib.rs:
crates/paradigms/src/barrier.rs:
crates/paradigms/src/bot.rs:
crates/paradigms/src/checkpoint.rs:
crates/paradigms/src/consensus.rs:
crates/paradigms/src/distvar.rs:
crates/paradigms/src/dnc.rs:
crates/paradigms/src/pool.rs:

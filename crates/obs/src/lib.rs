//! # linda-obs
//!
//! Zero-dependency observability core for the FT-Linda reproduction.
//!
//! The paper's evaluation (§6) is built on counting — messages per AGS,
//! latency per operation mix — and the reproduction needs the same
//! numbers available *from a running system*, not just from bench
//! harnesses. This crate provides the minimal instruments:
//!
//! * [`Counter`] — monotonic, lock-free.
//! * [`Gauge`] — a settable signed level (queue depths, applied seq).
//! * [`Histogram`] — fixed exponential buckets for latencies, with
//!   p50/p95/p99 estimation from the bucket counts.
//! * [`CounterFamily`] / [`GaugeFamily`] — labeled metric families
//!   (Prometheus `name{label="…"}` children), get-or-create per label
//!   set, for per-space / per-signature workload attribution.
//! * [`EventSink`] — a bounded ring of structured [`Event`]s (tracing
//!   without a tracing dependency), used e.g. for replica
//!   digest-divergence reports.
//! * [`Registry`] — a named collection of the above, rendered as a
//!   Prometheus text-exposition snapshot by [`Registry::render`].
//! * [`RegistrySnapshot`] — a mergeable point-in-time copy of a
//!   registry, used to serve one cluster-scope `/metrics` aggregate
//!   over every live member's registry.
//!
//! Everything is `std`-only (the build environment has no network access,
//! and the point of a measurement instrument is to not perturb what it
//! measures): handles are `Arc`s, hot-path updates are single atomic RMW
//! operations, and locks are touched only at registration/render time.

#![warn(missing_docs)]

mod trace;

pub use trace::{
    json_escape, now_micros, parse_spans_wire, span_json, spans_wire, wire_escape, wire_unescape,
    ParseTraceIdError, SpanLog, SpanRecord, TraceId, TraceTree,
};

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// How a [`Gauge`] aggregates when registry snapshots are merged into a
/// cluster-scope page.
///
/// Most gauges are *levels* (queue depths, tuple counts) where the
/// cluster-wide figure is the sum over members. But a gauge that exposes
/// a piece of *configuration or process-level state* — the same value on
/// every member and every shard, like a byte threshold — must not be
/// summed: merging R registries would multiply it by R. Such gauges
/// register as [`GaugeMerge::Max`], which is idempotent over identical
/// values (and degrades to "largest configured" if members disagree).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum GaugeMerge {
    /// Levels aggregate additively across registries (the default).
    #[default]
    Sum,
    /// Shared config/process-level values take the max — identical
    /// inputs merge to themselves instead of multiplying.
    Max,
}

/// A gauge: an instantaneous signed level that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Set the level.
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta`.
    pub fn add(&self, delta: i64) {
        self.v.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Render a label set as the Prometheus `k="v",…` form (without braces),
/// escaping `\`, `"` and newlines in values. Label order is preserved, so
/// callers must use a consistent order for a family — the rendered string
/// doubles as the child's identity.
pub fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

/// A labeled family of [`Counter`]s: one metric name, one child counter
/// per label set (`name{space="0",signature="<str,int>"}`). Children are
/// get-or-create and never removed — label cardinality is bounded by the
/// program's signature/space vocabulary, which the FT-Linda compilation
/// model fixes up front (patterns are static in FT-lcc source).
#[derive(Debug, Default)]
pub struct CounterFamily {
    children: Mutex<BTreeMap<String, Arc<Counter>>>,
}

impl CounterFamily {
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<Counter>>> {
        self.children.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the child for `labels` (order-sensitive).
    pub fn with(&self, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = render_labels(labels);
        self.lock()
            .entry(key)
            .or_insert_with(|| Arc::new(Counter::default()))
            .clone()
    }

    /// `(rendered-labels, value)` for every child, sorted by label text.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.lock()
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }
}

/// A labeled family of [`Gauge`]s. See [`CounterFamily`] for the child
/// identity/cardinality rules.
#[derive(Debug, Default)]
pub struct GaugeFamily {
    children: Mutex<BTreeMap<String, Arc<Gauge>>>,
}

impl GaugeFamily {
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<Gauge>>> {
        self.children.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the child for `labels` (order-sensitive).
    pub fn with(&self, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = render_labels(labels);
        self.lock()
            .entry(key)
            .or_insert_with(|| Arc::new(Gauge::default()))
            .clone()
    }

    /// Set every child to 0. Used before re-flushing a census so label
    /// sets that disappeared (e.g. a store rebuilt from a checkpoint)
    /// read 0 instead of a stale level.
    pub fn zero_all(&self) {
        for g in self.lock().values() {
            g.set(0);
        }
    }

    /// `(rendered-labels, level)` for every child, sorted by label text.
    pub fn snapshot(&self) -> BTreeMap<String, i64> {
        self.lock()
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect()
    }
}

/// A labeled family of [`Histogram`]s: one metric name, one child
/// histogram per label set (`name_bucket{peer="2",le="…"}`), every child
/// sharing the family's bucket bounds. Used for per-link latency
/// attribution (wire RTT per peer) where a scalar histogram would blur
/// all links together. See [`CounterFamily`] for the child
/// identity/cardinality rules.
#[derive(Debug)]
pub struct HistogramFamily {
    bounds: Vec<f64>,
    children: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Default for HistogramFamily {
    fn default() -> Self {
        Self::new(DEFAULT_LATENCY_BOUNDS)
    }
}

impl HistogramFamily {
    /// A family whose children all use the given bucket upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        HistogramFamily {
            bounds: bounds.to_vec(),
            children: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<Histogram>>> {
        self.children.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the child for `labels` (order-sensitive).
    pub fn with(&self, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = render_labels(labels);
        self.lock()
            .entry(key)
            .or_insert_with(|| Arc::new(Histogram::new(&self.bounds)))
            .clone()
    }

    /// `(rendered-labels, snapshot)` for every child, sorted by label
    /// text.
    pub fn snapshot(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.lock()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect()
    }
}

/// Default latency bucket upper bounds in seconds: a 1-2-5 decade ladder
/// from 1µs to 10s. The final implicit bucket is `+Inf`.
pub const DEFAULT_LATENCY_BOUNDS: &[f64] = &[
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
    2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0,
];

/// A fixed-bucket histogram (cumulative-bucket semantics at render time,
/// per-bucket counts internally). Observations are lock-free.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound, plus a final overflow (`+Inf`) slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations in nanoseconds (latencies up to ~584 years fit).
    sum_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new(DEFAULT_LATENCY_BOUNDS)
    }
}

impl Histogram {
    /// A histogram with the given strictly-increasing upper bounds
    /// (seconds). An overflow bucket is appended automatically.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Record one latency observation.
    pub fn observe(&self, d: Duration) {
        self.observe_seconds(d.as_secs_f64());
    }

    /// Record one observation given in seconds.
    pub fn observe_seconds(&self, s: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| s <= *b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add((s * 1e9) as u64, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum_seconds: self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile estimation.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    bounds: Vec<f64>,
    buckets: Vec<u64>,
    count: u64,
    sum_seconds: f64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_seconds
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) in seconds by linear
    /// interpolation inside the bucket holding the target rank — the
    /// standard Prometheus `histogram_quantile` estimate. Returns `None`
    /// when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            let prev = cumulative;
            cumulative += n;
            if (cumulative as f64) >= target && *n > 0 {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self
                    .bounds
                    .get(i)
                    .copied()
                    // Overflow bucket: report its lower edge rather than
                    // inventing an upper bound.
                    .unwrap_or_else(|| *self.bounds.last().unwrap_or(&0.0));
                let within = (target - prev as f64) / *n as f64;
                return Some(lower + (upper - lower) * within.clamp(0.0, 1.0));
            }
        }
        self.bounds.last().copied()
    }

    /// Mean observation in seconds (`None` when empty). Exact — computed
    /// from the running sum, not the bucket layout.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_seconds / self.count as f64)
        }
    }

    /// Merge another snapshot into this one (cross-replica aggregation:
    /// the per-stage view "over the whole cluster" is the bucket-wise sum
    /// of every member's histogram). Returns `false` and leaves `self`
    /// unchanged when the bucket layouts differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_seconds += other.sum_seconds;
        true
    }

    /// Median estimate in seconds.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate in seconds.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate in seconds.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// A structured tracing event: a kind plus key/value fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Event kind, e.g. `"digest_divergence"` or `"rejoin_failed"`.
    pub kind: String,
    /// Ordered key/value payload.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// Build an event from a kind and `(key, value)` pairs.
    pub fn new<K: Into<String>>(kind: K, fields: Vec<(String, String)>) -> Self {
        Event {
            kind: kind.into(),
            fields,
        }
    }

    /// Value of the first field named `key`, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A bounded ring buffer of recent [`Event`]s plus a total-emitted
/// counter (so droppage of old events never hides *that* something
/// happened).
#[derive(Debug)]
pub struct EventSink {
    buf: Mutex<VecDeque<Event>>,
    cap: usize,
    total: AtomicU64,
    dropped: AtomicU64,
}

impl Default for EventSink {
    fn default() -> Self {
        Self::with_capacity(256)
    }
}

impl EventSink {
    /// A sink retaining at most `cap` recent events.
    pub fn with_capacity(cap: usize) -> Self {
        EventSink {
            buf: Mutex::new(VecDeque::with_capacity(cap.min(64))),
            cap: cap.max(1),
            total: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Record an event. When the ring is full the oldest retained event
    /// is evicted and counted in [`EventSink::dropped`] — overflow is
    /// never silent.
    pub fn emit(&self, ev: Event) {
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == self.cap {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(ev);
    }

    /// Copy of the retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Retained events of one kind, oldest first.
    pub fn recent_of(&self, kind: &str) -> Vec<Event> {
        self.recent()
            .into_iter()
            .filter(|e| e.kind == kind)
            .collect()
    }

    /// Total events ever emitted (including dropped ones).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// One fixed-interval sample in a [`TimeSeriesRing`]: a timestamp plus
/// the sampled `(series name, value)` pairs. Counters are stored as
/// their cumulative value at sample time (rate = difference between
/// consecutive points); family children sample as `name{labels}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimePoint {
    /// Microseconds since `UNIX_EPOCH` at which the sample was taken.
    pub at_micros: u64,
    /// Ordered `(series, value)` pairs.
    pub values: Vec<(String, i64)>,
}

/// A bounded in-memory time series: fixed-interval [`TimePoint`]s of
/// selected gauges/counters, kept in a ring so soak runs and the future
/// shard rebalancer have *history*, not just instantaneous values.
///
/// Like [`EventSink`] and [`SpanLog`], the ring never blocks and never
/// grows: when full, the oldest point is evicted and counted — at the
/// default 1s cadence a 512-point ring holds ~8.5 minutes of history in
/// a few hundred KiB, and a dump always states how much older history
/// was lost.
#[derive(Debug)]
pub struct TimeSeriesRing {
    buf: Mutex<VecDeque<TimePoint>>,
    cap: usize,
    total: AtomicU64,
    dropped: AtomicU64,
}

impl Default for TimeSeriesRing {
    fn default() -> Self {
        Self::with_capacity(512)
    }
}

impl TimeSeriesRing {
    /// A ring retaining at most `cap` recent points.
    pub fn with_capacity(cap: usize) -> Self {
        TimeSeriesRing {
            buf: Mutex::new(VecDeque::with_capacity(cap.min(64))),
            cap: cap.max(1),
            total: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Record a sample stamped with the current time.
    pub fn sample(&self, values: Vec<(String, i64)>) {
        self.push(TimePoint {
            at_micros: now_micros(),
            values,
        });
    }

    /// Record a pre-stamped point (for tests or replay).
    pub fn push(&self, point: TimePoint) {
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == self.cap {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(point);
    }

    /// Copy of the retained points, oldest first.
    pub fn recent(&self) -> Vec<TimePoint> {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no points are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Points ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Points evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Render the ring as one JSON object:
    /// `{"capacity":…,"total":…,"dropped":…,"points":[{"at_us":…,"values":{…}},…]}`.
    pub fn to_json(&self) -> String {
        let points = self.recent();
        let mut out = String::with_capacity(64 + points.len() * 128);
        let _ = write!(
            out,
            "{{\"capacity\":{},\"total\":{},\"dropped\":{},\"points\":[",
            self.cap,
            self.total(),
            self.dropped()
        );
        for (i, p) in points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"at_us\":{},\"values\":{{", p.at_micros);
            for (j, (name, v)) in p.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{v}", json_escape(name));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

#[derive(Debug, Default)]
struct Instruments {
    counters: BTreeMap<String, (String, Arc<Counter>)>,
    gauges: BTreeMap<String, (String, Arc<Gauge>, GaugeMerge)>,
    histograms: BTreeMap<String, (String, Arc<Histogram>)>,
    counter_families: BTreeMap<String, (String, Arc<CounterFamily>)>,
    gauge_families: BTreeMap<String, (String, Arc<GaugeFamily>)>,
    histogram_families: BTreeMap<String, (String, Arc<HistogramFamily>)>,
}

/// A named collection of instruments with Prometheus text rendering.
///
/// Registration is get-or-create by name, so independent components can
/// share one registry without coordination; handles are cheap `Arc`s
/// meant to be resolved once and kept.
#[derive(Debug, Default)]
pub struct Registry {
    instruments: Mutex<Instruments>,
    events: Arc<EventSink>,
    spans: Arc<SpanLog>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Instruments> {
        self.instruments.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.lock()
            .counters
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Arc::new(Counter::default())))
            .1
            .clone()
    }

    /// Get or create the gauge `name` (a level; merges by summing).
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_merged(name, help, GaugeMerge::Sum)
    }

    /// Get or create gauge `name` with an explicit merge mode. Use
    /// [`GaugeMerge::Max`] for config/process-level values shared by
    /// every member and shard, so cluster aggregation doesn't multiply
    /// them. The mode only applies on first creation; a later call with
    /// the same name returns the existing instrument.
    pub fn gauge_merged(&self, name: &str, help: &str, merge: GaugeMerge) -> Arc<Gauge> {
        self.lock()
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Arc::new(Gauge::default()), merge))
            .1
            .clone()
    }

    /// Get or create the latency histogram `name` (default 1µs–10s
    /// bucket ladder).
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Arc::new(Histogram::default())))
            .1
            .clone()
    }

    /// Get or create histogram `name` with explicit bucket upper bounds
    /// (for non-latency quantities like batch sizes). The bounds only
    /// apply on first creation; a later call with the same name returns
    /// the existing instrument.
    pub fn histogram_with(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Arc::new(Histogram::new(bounds))))
            .1
            .clone()
    }

    /// Get or create the labeled counter family `name`.
    pub fn counter_family(&self, name: &str, help: &str) -> Arc<CounterFamily> {
        self.lock()
            .counter_families
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Arc::new(CounterFamily::default())))
            .1
            .clone()
    }

    /// Get or create the labeled gauge family `name`.
    pub fn gauge_family(&self, name: &str, help: &str) -> Arc<GaugeFamily> {
        self.lock()
            .gauge_families
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Arc::new(GaugeFamily::default())))
            .1
            .clone()
    }

    /// Get or create the labeled histogram family `name` (default
    /// 1µs–10s latency bucket ladder for every child).
    pub fn histogram_family(&self, name: &str, help: &str) -> Arc<HistogramFamily> {
        self.lock()
            .histogram_families
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Arc::new(HistogramFamily::default())))
            .1
            .clone()
    }

    /// Get or create histogram family `name` with explicit bucket upper
    /// bounds for its children. The bounds only apply on first creation.
    pub fn histogram_family_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
    ) -> Arc<HistogramFamily> {
        self.lock()
            .histogram_families
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Arc::new(HistogramFamily::new(bounds))))
            .1
            .clone()
    }

    /// The registry's structured-event sink.
    pub fn events(&self) -> &EventSink {
        &self.events
    }

    /// A shareable handle to the event sink, for components that outlive
    /// a borrow of the registry (sequencer threads, kernels).
    pub fn events_handle(&self) -> Arc<EventSink> {
        self.events.clone()
    }

    /// The registry's span log (causal traces of the AGS pipeline).
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// A shareable handle to the span log.
    pub fn spans_handle(&self) -> Arc<SpanLog> {
        self.spans.clone()
    }

    /// A mergeable point-in-time copy of every instrument, including the
    /// ring self-metrics (`ftlinda_events_total`, span-drop counters).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let ins = self.lock();
        let mut snap = RegistrySnapshot::default();
        for (name, (help, c)) in &ins.counters {
            snap.counters.insert(name.clone(), (help.clone(), c.get()));
        }
        for (name, (help, g, merge)) in &ins.gauges {
            snap.gauges
                .insert(name.clone(), (help.clone(), g.get(), *merge));
        }
        for (name, (help, h)) in &ins.histograms {
            snap.histograms
                .insert(name.clone(), (help.clone(), h.snapshot()));
        }
        for (name, (help, f)) in &ins.counter_families {
            snap.counter_families
                .insert(name.clone(), (help.clone(), f.snapshot()));
        }
        for (name, (help, f)) in &ins.gauge_families {
            snap.gauge_families
                .insert(name.clone(), (help.clone(), f.snapshot()));
        }
        for (name, (help, f)) in &ins.histogram_families {
            snap.histogram_families
                .insert(name.clone(), (help.clone(), f.snapshot()));
        }
        drop(ins);
        // Self-metrics: how much of the event/span history is intact.
        // Dropping old entries keeps the rings bounded, but the drop
        // itself must be visible to a scraper.
        for (name, help, v) in [
            (
                "ftlinda_events_total",
                "structured events emitted (including dropped)",
                self.events.total(),
            ),
            (
                "ftlinda_events_dropped_total",
                "structured events evicted from the bounded ring",
                self.events.dropped(),
            ),
            (
                "ftlinda_trace_spans_total",
                "trace spans recorded (including dropped)",
                self.spans.total(),
            ),
            (
                "ftlinda_trace_spans_dropped_total",
                "trace spans evicted from the bounded ring",
                self.spans.dropped(),
            ),
        ] {
            snap.counters.insert(name.into(), (help.into(), v));
        }
        snap
    }

    /// Render every instrument in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, cumulative `_bucket{le=…}` series
    /// for histograms, `name{labels}` children for families).
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// A point-in-time copy of a whole [`Registry`], decoupled from the live
/// instruments so it can be merged with other members' snapshots and
/// rendered as one cluster-scope Prometheus page.
///
/// Merge rules (per metric name): counters and counter-family children
/// sum; gauges merge per their registered [`GaugeMerge`] mode — levels
/// like tuple counts and queue depths aggregate additively across
/// replicas, while config/process-level gauges shared by every member
/// take the max so aggregation never multiplies them; gauge-family
/// children sum; histograms merge bucket-wise via
/// [`HistogramSnapshot::merge`], and a bucket-layout mismatch keeps the
/// first operand's histogram untouched. Help text is taken from
/// whichever snapshot registered the name first.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    counters: BTreeMap<String, (String, u64)>,
    gauges: BTreeMap<String, (String, i64, GaugeMerge)>,
    histograms: BTreeMap<String, (String, HistogramSnapshot)>,
    counter_families: BTreeMap<String, (String, BTreeMap<String, u64>)>,
    gauge_families: BTreeMap<String, (String, BTreeMap<String, i64>)>,
    histogram_families: BTreeMap<String, (String, BTreeMap<String, HistogramSnapshot>)>,
}

impl RegistrySnapshot {
    /// Fold `other` into `self` under the merge rules above.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, (help, v)) in &other.counters {
            let e = self
                .counters
                .entry(name.clone())
                .or_insert_with(|| (help.clone(), 0));
            e.1 += v;
        }
        for (name, (help, v, merge)) in &other.gauges {
            match self.gauges.get_mut(name) {
                // The first operand's mode wins on disagreement (modes
                // only disagree across software versions).
                Some(e) => match e.2 {
                    GaugeMerge::Sum => e.1 += v,
                    GaugeMerge::Max => e.1 = e.1.max(*v),
                },
                None => {
                    self.gauges.insert(name.clone(), (help.clone(), *v, *merge));
                }
            }
        }
        for (name, (help, h)) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some((_, mine)) => {
                    // On layout mismatch keep ours; the per-member
                    // endpoints still expose the exact series.
                    let _ = mine.merge(h);
                }
                None => {
                    self.histograms
                        .insert(name.clone(), (help.clone(), h.clone()));
                }
            }
        }
        for (name, (help, children)) in &other.counter_families {
            let e = self
                .counter_families
                .entry(name.clone())
                .or_insert_with(|| (help.clone(), BTreeMap::new()));
            for (labels, v) in children {
                *e.1.entry(labels.clone()).or_insert(0) += v;
            }
        }
        for (name, (help, children)) in &other.gauge_families {
            let e = self
                .gauge_families
                .entry(name.clone())
                .or_insert_with(|| (help.clone(), BTreeMap::new()));
            for (labels, v) in children {
                *e.1.entry(labels.clone()).or_insert(0) += v;
            }
        }
        for (name, (help, children)) in &other.histogram_families {
            let e = self
                .histogram_families
                .entry(name.clone())
                .or_insert_with(|| (help.clone(), BTreeMap::new()));
            for (labels, h) in children {
                match e.1.get_mut(labels) {
                    // On layout mismatch keep ours, as for scalar
                    // histograms.
                    Some(mine) => {
                        let _ = mine.merge(h);
                    }
                    None => {
                        e.1.insert(labels.clone(), h.clone());
                    }
                }
            }
        }
    }

    /// Value of plain counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).map(|(_, v)| *v)
    }

    /// Level of plain gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).map(|(_, v, _)| *v)
    }

    /// Children of counter family `name` (rendered label string →
    /// value), if present.
    pub fn counter_family(&self, name: &str) -> Option<&BTreeMap<String, u64>> {
        self.counter_families.get(name).map(|(_, c)| c)
    }

    /// Children of gauge family `name` (rendered label string → level),
    /// if present.
    pub fn gauge_family(&self, name: &str) -> Option<&BTreeMap<String, i64>> {
        self.gauge_families.get(name).map(|(_, c)| c)
    }

    /// Snapshot of scalar histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name).map(|(_, h)| h)
    }

    /// Children of histogram family `name` (rendered label string →
    /// snapshot), if present.
    pub fn histogram_family(&self, name: &str) -> Option<&BTreeMap<String, HistogramSnapshot>> {
        self.histogram_families.get(name).map(|(_, c)| c)
    }

    /// The bucket-wise merge of every child of histogram family `name` —
    /// the "all links together" view of a per-peer latency family.
    /// `None` when the family is absent or empty, or when children
    /// disagree on bucket layout.
    pub fn histogram_family_merged(&self, name: &str) -> Option<HistogramSnapshot> {
        let children = self.histogram_family(name)?;
        let mut iter = children.values();
        let mut merged = iter.next()?.clone();
        for h in iter {
            if !merged.merge(h) {
                return None;
            }
        }
        Some(merged)
    }

    /// Flatten selected series into `(name, value)` pairs for
    /// [`TimeSeriesRing`] sampling: every plain counter or gauge whose
    /// name appears in `scalars` (missing names are skipped, counters
    /// saturate at `i64::MAX`), plus every child of each family named in
    /// `families`, rendered as `name{labels}`.
    pub fn series(&self, scalars: &[&str], families: &[&str]) -> Vec<(String, i64)> {
        let mut out = Vec::new();
        for name in scalars {
            if let Some(v) = self.counter(name) {
                out.push((name.to_string(), i64::try_from(v).unwrap_or(i64::MAX)));
            } else if let Some(v) = self.gauge(name) {
                out.push((name.to_string(), v));
            }
        }
        for name in families {
            if let Some(children) = self.counter_family(name) {
                for (labels, v) in children {
                    out.push((
                        format!("{name}{{{labels}}}"),
                        i64::try_from(*v).unwrap_or(i64::MAX),
                    ));
                }
            }
            if let Some(children) = self.gauge_family(name) {
                for (labels, v) in children {
                    out.push((format!("{name}{{{labels}}}"), *v));
                }
            }
        }
        out
    }

    /// Prometheus text exposition of the snapshot.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, (help, v)) in &self.counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, (help, children)) in &self.counter_families {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for (labels, v) in children {
                let _ = writeln!(out, "{name}{{{labels}}} {v}");
            }
        }
        for (name, (help, v, _)) in &self.gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, (help, children)) in &self.gauge_families {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for (labels, v) in children {
                let _ = writeln!(out, "{name}{{{labels}}} {v}");
            }
        }
        for (name, (help, snap)) in &self.histograms {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, n) in snap.buckets.iter().enumerate() {
                cumulative += n;
                match snap.bounds.get(i) {
                    Some(b) => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cumulative}");
                    }
                    None => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    }
                }
            }
            let _ = writeln!(out, "{name}_sum {}", snap.sum_seconds);
            let _ = writeln!(out, "{name}_count {}", snap.count);
        }
        for (name, (help, children)) in &self.histogram_families {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (labels, snap) in children {
                let mut cumulative = 0u64;
                for (i, n) in snap.buckets.iter().enumerate() {
                    cumulative += n;
                    match snap.bounds.get(i) {
                        Some(b) => {
                            let _ =
                                writeln!(out, "{name}_bucket{{{labels},le=\"{b}\"}} {cumulative}");
                        }
                        None => {
                            let _ =
                                writeln!(out, "{name}_bucket{{{labels},le=\"+Inf\"}} {cumulative}");
                        }
                    }
                }
                let _ = writeln!(out, "{name}_sum{{{labels}}} {}", snap.sum_seconds);
                let _ = writeln!(out, "{name}_count{{{labels}}} {}", snap.count);
            }
        }
        out
    }

    /// Serialize the snapshot as the tab-separated registry wire format:
    /// the transport-agnostic federation payload served on
    /// `/metrics/snapshot`. Unlike the Prometheus text form this carries
    /// gauge merge modes and exact histogram layouts, so a remote
    /// aggregator can fold members' snapshots with [`Self::merge`]
    /// under identical rules to the in-process path.
    ///
    /// Line 1 is `ftlsnap <version>`; each further line is one record,
    /// tagged by its first field: `c` counter, `g` gauge, `h` histogram,
    /// `cf`/`gf`/`hf` family declarations, `cc`/`gc`/`hc` family
    /// children. Strings are [`wire_escape`]d; `f64` values use Rust's
    /// shortest-roundtrip `Display` form.
    pub fn to_wire(&self) -> String {
        fn f64s(v: f64) -> String {
            // `Display` prints integral floats without a dot; keep the
            // value parseable as f64 either way.
            format!("{v}")
        }
        fn hist_fields(h: &HistogramSnapshot) -> String {
            let bounds = h
                .bounds
                .iter()
                .map(|b| f64s(*b))
                .collect::<Vec<_>>()
                .join(",");
            let buckets = h
                .buckets
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{}\t{}\t{}\t{}",
                h.count,
                f64s(h.sum_seconds),
                bounds,
                buckets
            )
        }
        let mut out = String::with_capacity(1024);
        out.push_str("ftlsnap\t1\n");
        for (name, (help, v)) in &self.counters {
            let _ = writeln!(out, "c\t{}\t{}\t{v}", wire_escape(name), wire_escape(help));
        }
        for (name, (help, v, merge)) in &self.gauges {
            let m = match merge {
                GaugeMerge::Sum => "sum",
                GaugeMerge::Max => "max",
            };
            let _ = writeln!(
                out,
                "g\t{}\t{}\t{v}\t{m}",
                wire_escape(name),
                wire_escape(help)
            );
        }
        for (name, (help, h)) in &self.histograms {
            let _ = writeln!(
                out,
                "h\t{}\t{}\t{}",
                wire_escape(name),
                wire_escape(help),
                hist_fields(h)
            );
        }
        for (name, (help, children)) in &self.counter_families {
            let _ = writeln!(out, "cf\t{}\t{}", wire_escape(name), wire_escape(help));
            for (labels, v) in children {
                let _ = writeln!(
                    out,
                    "cc\t{}\t{}\t{v}",
                    wire_escape(name),
                    wire_escape(labels)
                );
            }
        }
        for (name, (help, children)) in &self.gauge_families {
            let _ = writeln!(out, "gf\t{}\t{}", wire_escape(name), wire_escape(help));
            for (labels, v) in children {
                let _ = writeln!(
                    out,
                    "gc\t{}\t{}\t{v}",
                    wire_escape(name),
                    wire_escape(labels)
                );
            }
        }
        for (name, (help, children)) in &self.histogram_families {
            let _ = writeln!(out, "hf\t{}\t{}", wire_escape(name), wire_escape(help));
            for (labels, h) in children {
                let _ = writeln!(
                    out,
                    "hc\t{}\t{}\t{}",
                    wire_escape(name),
                    wire_escape(labels),
                    hist_fields(h)
                );
            }
        }
        out
    }

    /// Parse the registry wire format produced by [`Self::to_wire`].
    /// Structured errors, no panics — the input crossed a process
    /// boundary.
    pub fn from_wire(text: &str) -> Result<RegistrySnapshot, String> {
        fn parse_hist(parts: &[&str], ln: usize) -> Result<HistogramSnapshot, String> {
            if parts.len() != 4 {
                return Err(format!("line {ln}: histogram needs 4 value fields"));
            }
            let count: u64 = parts[0]
                .parse()
                .map_err(|e| format!("line {ln}: bad count: {e}"))?;
            let sum_seconds: f64 = parts[1]
                .parse()
                .map_err(|e| format!("line {ln}: bad sum: {e}"))?;
            let bounds: Vec<f64> = if parts[2].is_empty() {
                Vec::new()
            } else {
                parts[2]
                    .split(',')
                    .map(|b| b.parse().map_err(|e| format!("line {ln}: bad bound: {e}")))
                    .collect::<Result<_, _>>()?
            };
            let buckets: Vec<u64> = if parts[3].is_empty() {
                Vec::new()
            } else {
                parts[3]
                    .split(',')
                    .map(|b| b.parse().map_err(|e| format!("line {ln}: bad bucket: {e}")))
                    .collect::<Result<_, _>>()?
            };
            if buckets.len() != bounds.len() + 1 {
                return Err(format!(
                    "line {ln}: {} buckets for {} bounds",
                    buckets.len(),
                    bounds.len()
                ));
            }
            Ok(HistogramSnapshot {
                bounds,
                buckets,
                count,
                sum_seconds,
            })
        }
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty snapshot wire payload")?;
        let mut hp = header.split('\t');
        if hp.next() != Some("ftlsnap") {
            return Err("missing ftlsnap header".into());
        }
        if hp.next() != Some("1") {
            return Err("unsupported snapshot wire version".into());
        }
        let mut snap = RegistrySnapshot::default();
        for (i, line) in lines {
            let ln = i + 1;
            if line.is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split('\t').collect();
            let need = |n: usize| -> Result<(), String> {
                if parts.len() != n {
                    Err(format!(
                        "line {ln}: expected {n} fields, got {}",
                        parts.len()
                    ))
                } else {
                    Ok(())
                }
            };
            match parts[0] {
                "c" => {
                    need(4)?;
                    let v: u64 = parts[3]
                        .parse()
                        .map_err(|e| format!("line {ln}: bad counter: {e}"))?;
                    snap.counters
                        .insert(wire_unescape(parts[1]), (wire_unescape(parts[2]), v));
                }
                "g" => {
                    need(5)?;
                    let v: i64 = parts[3]
                        .parse()
                        .map_err(|e| format!("line {ln}: bad gauge: {e}"))?;
                    let merge = match parts[4] {
                        "sum" => GaugeMerge::Sum,
                        "max" => GaugeMerge::Max,
                        other => return Err(format!("line {ln}: unknown merge mode {other:?}")),
                    };
                    snap.gauges
                        .insert(wire_unescape(parts[1]), (wire_unescape(parts[2]), v, merge));
                }
                "h" => {
                    if parts.len() != 7 {
                        return Err(format!("line {ln}: expected 7 fields"));
                    }
                    let h = parse_hist(&parts[3..], ln)?;
                    snap.histograms
                        .insert(wire_unescape(parts[1]), (wire_unescape(parts[2]), h));
                }
                "cf" => {
                    need(3)?;
                    snap.counter_families
                        .entry(wire_unescape(parts[1]))
                        .or_insert_with(|| (wire_unescape(parts[2]), BTreeMap::new()));
                }
                "cc" => {
                    need(4)?;
                    let v: u64 = parts[3]
                        .parse()
                        .map_err(|e| format!("line {ln}: bad counter child: {e}"))?;
                    snap.counter_families
                        .entry(wire_unescape(parts[1]))
                        .or_insert_with(|| (String::new(), BTreeMap::new()))
                        .1
                        .insert(wire_unescape(parts[2]), v);
                }
                "gf" => {
                    need(3)?;
                    snap.gauge_families
                        .entry(wire_unescape(parts[1]))
                        .or_insert_with(|| (wire_unescape(parts[2]), BTreeMap::new()));
                }
                "gc" => {
                    need(4)?;
                    let v: i64 = parts[3]
                        .parse()
                        .map_err(|e| format!("line {ln}: bad gauge child: {e}"))?;
                    snap.gauge_families
                        .entry(wire_unescape(parts[1]))
                        .or_insert_with(|| (String::new(), BTreeMap::new()))
                        .1
                        .insert(wire_unescape(parts[2]), v);
                }
                "hf" => {
                    need(3)?;
                    snap.histogram_families
                        .entry(wire_unescape(parts[1]))
                        .or_insert_with(|| (wire_unescape(parts[2]), BTreeMap::new()));
                }
                "hc" => {
                    if parts.len() != 7 {
                        return Err(format!("line {ln}: expected 7 fields"));
                    }
                    let h = parse_hist(&parts[3..], ln)?;
                    snap.histogram_families
                        .entry(wire_unescape(parts[1]))
                        .or_insert_with(|| (String::new(), BTreeMap::new()))
                        .1
                        .insert(wire_unescape(parts[2]), h);
                }
                other => return Err(format!("line {ln}: unknown record tag {other:?}")),
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("reqs_total", "requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same instrument.
        assert_eq!(r.counter("reqs_total", "requests").get(), 5);
        let g = r.gauge("depth", "queue depth");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn histogram_observe_and_quantiles() {
        let h = Histogram::default();
        assert!(h.snapshot().quantile(0.5).is_none());
        // 100 observations spread over 1ms..100ms.
        for i in 1..=100u64 {
            h.observe(Duration::from_millis(i));
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        let p50 = s.p50().unwrap();
        let p99 = s.p99().unwrap();
        assert!(p50 > 0.02 && p50 < 0.1, "p50 {p50} should be ~50ms");
        assert!(p99 >= p50, "quantiles are monotone");
        assert!(p99 <= 0.25, "p99 {p99} bounded by bucket edge");
        assert!(s.sum_seconds() > 5.0 && s.sum_seconds() < 5.1);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = Histogram::new(&[0.001, 0.01]);
        h.observe(Duration::from_secs(5));
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        // Overflow quantile reports the last finite bound.
        assert_eq!(s.quantile(0.99), Some(0.01));
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("a_total", "a counter").add(3);
        r.gauge("b_depth", "a gauge").set(-2);
        let h = r.histogram("lat_seconds", "a histogram");
        h.observe(Duration::from_micros(3));
        h.observe(Duration::from_millis(3));
        let text = r.render();
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total 3"));
        assert!(text.contains("b_depth -2"));
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_seconds_count 2"));
        // Buckets are cumulative: the 5e-6 bucket already holds the 3µs obs.
        assert!(text.contains("lat_seconds_bucket{le=\"0.000005\"} 1"));
    }

    #[test]
    fn event_sink_ring_and_total() {
        let sink = EventSink::with_capacity(2);
        for i in 0..3 {
            sink.emit(Event::new("tick", vec![("i".into(), i.to_string())]));
        }
        assert_eq!(sink.total(), 3);
        let recent = sink.recent();
        assert_eq!(recent.len(), 2, "oldest dropped");
        assert_eq!(recent[0].field("i"), Some("1"));
        assert_eq!(sink.recent_of("tick").len(), 2);
        assert_eq!(sink.recent_of("other").len(), 0);
        assert_eq!(sink.dropped(), 1, "one eviction, counted");
    }

    #[test]
    fn event_sink_overflow_is_counted_and_filtered() {
        let sink = EventSink::with_capacity(4);
        for i in 0..10 {
            let kind = if i % 2 == 0 { "even" } else { "odd" };
            sink.emit(Event::new(kind, vec![("i".into(), i.to_string())]));
        }
        assert_eq!(sink.total(), 10);
        assert_eq!(sink.dropped(), 6);
        assert_eq!(sink.recent().len(), 4);
        // recent_of filters within the retained window only.
        let evens = sink.recent_of("even");
        assert_eq!(evens.len(), 2);
        assert_eq!(evens[0].field("i"), Some("6"));
        assert_eq!(evens[1].field("i"), Some("8"));
        assert!(sink.recent_of("missing").is_empty());
    }

    #[test]
    fn registry_renders_ring_self_metrics() {
        let r = Registry::new();
        for _ in 0..3 {
            r.events().emit(Event::new("e", vec![]));
        }
        r.spans().record(TraceId::new(0, 1), "apply", 0, vec![]);
        let text = r.render();
        assert!(text.contains("# TYPE ftlinda_events_total counter"));
        assert!(text.contains("ftlinda_events_total 3"));
        assert!(text.contains("ftlinda_events_dropped_total 0"));
        assert!(text.contains("ftlinda_trace_spans_total 1"));
        assert!(text.contains("ftlinda_trace_spans_dropped_total 0"));
    }

    #[test]
    fn labeled_families_render_children() {
        let r = Registry::new();
        let f = r.counter_family("ops_total", "ops by kind");
        f.with(&[("kind", "in"), ("space", "0")]).add(3);
        f.with(&[("kind", "out"), ("space", "0")]).inc();
        // Same label set → same child.
        f.with(&[("kind", "in"), ("space", "0")]).inc();
        let g = r.gauge_family("depth", "depth by sig");
        g.with(&[("signature", "<str,int>")]).set(7);
        let text = r.render();
        assert!(text.contains("# TYPE ops_total counter"));
        assert!(text.contains("ops_total{kind=\"in\",space=\"0\"} 4"));
        assert!(text.contains("ops_total{kind=\"out\",space=\"0\"} 1"));
        assert!(text.contains("depth{signature=\"<str,int>\"} 7"));
        g.zero_all();
        assert!(r.render().contains("depth{signature=\"<str,int>\"} 0"));
    }

    #[test]
    fn label_values_are_escaped() {
        let rendered = render_labels(&[("k", "a\"b\\c\nd")]);
        assert_eq!(rendered, "k=\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn snapshot_merge_sums_everything() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("applied_total", "h").add(10);
        b.counter("applied_total", "h").add(5);
        a.gauge("blocked", "h").set(2);
        b.gauge("blocked", "h").set(3);
        a.histogram("lat", "h").observe(Duration::from_millis(1));
        b.histogram("lat", "h").observe(Duration::from_millis(2));
        b.counter("only_b_total", "h").add(7);
        a.counter_family("ts_tuples", "h")
            .with(&[("signature", "<int>")])
            .add(4);
        b.counter_family("ts_tuples", "h")
            .with(&[("signature", "<int>")])
            .add(6);
        b.counter_family("ts_tuples", "h")
            .with(&[("signature", "<str>")])
            .add(1);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("applied_total"), Some(15));
        assert_eq!(merged.counter("only_b_total"), Some(7));
        assert_eq!(merged.gauge("blocked"), Some(5));
        let text = merged.render();
        assert!(text.contains("lat_count 2"));
        assert!(text.contains("ts_tuples{signature=\"<int>\"} 10"));
        assert!(text.contains("ts_tuples{signature=\"<str>\"} 1"));
    }

    #[test]
    fn config_gauges_merge_without_double_counting() {
        // Regression: `/metrics/cluster` merges one registry per shard
        // per member. A config-level gauge (same value everywhere, e.g.
        // ftlinda_batch_max_bytes) must survive the merge unchanged
        // instead of being multiplied by the registry count.
        let regs: Vec<Registry> = (0..6).map(|_| Registry::new()).collect();
        for r in &regs {
            r.gauge_merged("cfg_max_bytes", "h", GaugeMerge::Max)
                .set(512);
            r.gauge("depth", "h").set(3); // a real level still sums
        }
        let mut merged = regs[0].snapshot();
        for r in &regs[1..] {
            merged.merge(&r.snapshot());
        }
        assert_eq!(merged.gauge("cfg_max_bytes"), Some(512));
        assert_eq!(merged.gauge("depth"), Some(18));
        // Max-merge also tolerates a member that hasn't set the gauge
        // yet and degrades to "largest configured" on disagreement.
        let late = Registry::new();
        late.gauge_merged("cfg_max_bytes", "h", GaugeMerge::Max)
            .set(1024);
        merged.merge(&late.snapshot());
        assert_eq!(merged.gauge("cfg_max_bytes"), Some(1024));
    }

    #[test]
    fn time_series_ring_bounds_and_json() {
        let ring = TimeSeriesRing::with_capacity(2);
        assert!(ring.is_empty());
        for i in 0..3u64 {
            ring.push(TimePoint {
                at_micros: 100 + i,
                values: vec![("ftlinda_stable_tuples".into(), i as i64)],
            });
        }
        assert_eq!(ring.total(), 3);
        assert_eq!(ring.dropped(), 1, "oldest point evicted, counted");
        let recent = ring.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].at_micros, 101, "t=100 aged out");
        let j = ring.to_json();
        assert!(j.starts_with("{\"capacity\":2,\"total\":3,\"dropped\":1,"));
        assert!(j.contains("{\"at_us\":101,\"values\":{\"ftlinda_stable_tuples\":1}}"));
        assert!(j.contains("{\"at_us\":102,\"values\":{\"ftlinda_stable_tuples\":2}}"));
        assert!(!j.contains("\"at_us\":100"));
    }

    #[test]
    fn time_series_sample_stamps_wall_clock() {
        let ring = TimeSeriesRing::default();
        assert_eq!(ring.capacity(), 512);
        let before = now_micros();
        ring.sample(vec![("g".into(), -4)]);
        let p = &ring.recent()[0];
        assert!(p.at_micros >= before);
        assert_eq!(p.values, vec![("g".to_string(), -4)]);
    }

    #[test]
    fn snapshot_series_flattens_scalars_and_families() {
        let r = Registry::new();
        r.counter("applied_total", "h").add(9);
        r.gauge("blocked", "h").set(-2);
        r.gauge_family("ftlinda_shard_tuples", "h")
            .with(&[("shard", "0")])
            .set(5);
        r.counter_family("ftlinda_xcommit_aborts_total", "h")
            .with(&[("cause", "body_failure"), ("shard", "1")])
            .add(3);
        let snap = r.snapshot();
        let series = snap.series(
            &["applied_total", "blocked", "missing"],
            &[
                "ftlinda_shard_tuples",
                "ftlinda_xcommit_aborts_total",
                "nope",
            ],
        );
        assert_eq!(
            series,
            vec![
                ("applied_total".to_string(), 9),
                ("blocked".to_string(), -2),
                ("ftlinda_shard_tuples{shard=\"0\"}".to_string(), 5),
                (
                    "ftlinda_xcommit_aborts_total{cause=\"body_failure\",shard=\"1\"}".to_string(),
                    3
                ),
            ]
        );
    }

    #[test]
    fn histogram_family_children_render_and_merge() {
        let r = Registry::new();
        let f = r.histogram_family("rtt_seconds", "wire RTT by peer");
        f.with(&[("peer", "1")]).observe(Duration::from_millis(1));
        f.with(&[("peer", "1")]).observe(Duration::from_millis(2));
        f.with(&[("peer", "2")]).observe(Duration::from_micros(10));
        let text = r.render();
        assert!(text.contains("# TYPE rtt_seconds histogram"));
        assert!(text.contains("rtt_seconds_bucket{peer=\"1\",le=\"+Inf\"} 2"));
        assert!(text.contains("rtt_seconds_count{peer=\"1\"} 2"));
        assert!(text.contains("rtt_seconds_count{peer=\"2\"} 1"));
        // Merging two registries sums children bucket-wise.
        let r2 = Registry::new();
        r2.histogram_family("rtt_seconds", "wire RTT by peer")
            .with(&[("peer", "1")])
            .observe(Duration::from_millis(5));
        let mut merged = r.snapshot();
        merged.merge(&r2.snapshot());
        let children = merged.histogram_family("rtt_seconds").unwrap();
        assert_eq!(children["peer=\"1\""].count(), 3);
        assert_eq!(children["peer=\"2\""].count(), 1);
        // The all-peers merge folds every child together.
        let all = merged.histogram_family_merged("rtt_seconds").unwrap();
        assert_eq!(all.count(), 4);
        assert!(merged.histogram_family_merged("missing").is_none());
    }

    #[test]
    fn snapshot_wire_roundtrip() {
        let r = Registry::new();
        r.counter("reqs_total", "help with\ttab").add(7);
        r.gauge("depth", "a level").set(-3);
        r.gauge_merged("cfg", "shared config", GaugeMerge::Max)
            .set(512);
        r.histogram("lat_seconds", "latency")
            .observe(Duration::from_millis(2));
        r.counter_family("ops_total", "ops")
            .with(&[("kind", "in")])
            .add(4);
        r.gauge_family("ftlinda_shard_tuples", "tuples")
            .with(&[("shard", "0")])
            .set(9);
        r.histogram_family("rtt_seconds", "rtt")
            .with(&[("peer", "1")])
            .observe(Duration::from_micros(30));
        // An empty family must survive the trip too.
        r.counter_family("empty_total", "no children yet");
        let snap = r.snapshot();
        let wire = snap.to_wire();
        let back = RegistrySnapshot::from_wire(&wire).expect("parse");
        assert_eq!(back.counter("reqs_total"), Some(7));
        assert_eq!(back.gauge("depth"), Some(-3));
        assert_eq!(back.gauge("cfg"), Some(512));
        assert_eq!(back.histogram("lat_seconds").unwrap().count(), 1);
        assert_eq!(back.counter_family("ops_total").unwrap()["kind=\"in\""], 4);
        assert!(back.counter_family("empty_total").unwrap().is_empty());
        assert_eq!(
            back.histogram_family("rtt_seconds").unwrap()["peer=\"1\""].count(),
            1
        );
        // The parsed snapshot renders the identical Prometheus page and
        // re-serializes to the identical wire form.
        assert_eq!(back.render(), snap.render());
        assert_eq!(back.to_wire(), wire);
        // Merge modes survive: folding the parsed snapshot into itself
        // sums levels but not max-merged config gauges.
        let mut folded = back.clone();
        folded.merge(&back);
        assert_eq!(folded.gauge("depth"), Some(-6));
        assert_eq!(folded.gauge("cfg"), Some(512));
        assert_eq!(folded.counter("reqs_total"), Some(14));
    }

    #[test]
    fn snapshot_wire_rejects_malformed_input() {
        assert!(RegistrySnapshot::from_wire("").is_err());
        assert!(RegistrySnapshot::from_wire("nonsense\t1\n").is_err());
        assert!(RegistrySnapshot::from_wire("ftlsnap\t9\n").is_err());
        assert!(RegistrySnapshot::from_wire("ftlsnap\t1\nc\tx\th").is_err());
        assert!(RegistrySnapshot::from_wire("ftlsnap\t1\nc\tx\th\tNaN").is_err());
        assert!(RegistrySnapshot::from_wire("ftlsnap\t1\ng\tx\th\t1\tavg").is_err());
        assert!(RegistrySnapshot::from_wire("ftlsnap\t1\nzz\tx").is_err());
        // Histogram bucket/bound arity mismatch is rejected.
        assert!(RegistrySnapshot::from_wire("ftlsnap\t1\nh\tx\th\t1\t0.5\t0.1\t1,2,3").is_err());
    }

    #[test]
    fn concurrent_observations() {
        let r = Arc::new(Registry::new());
        let h = r.histogram("h", "");
        let c = r.counter("c", "");
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let (h, c) = (h.clone(), c.clone());
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        h.observe(Duration::from_micros(10));
                        c.inc();
                    }
                })
            })
            .collect();
        for t in hs {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }
}

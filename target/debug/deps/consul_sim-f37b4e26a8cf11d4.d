/root/repo/target/debug/deps/consul_sim-f37b4e26a8cf11d4.d: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

/root/repo/target/debug/deps/libconsul_sim-f37b4e26a8cf11d4.rlib: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

/root/repo/target/debug/deps/libconsul_sim-f37b4e26a8cf11d4.rmeta: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

crates/consul/src/lib.rs:
crates/consul/src/isis.rs:
crates/consul/src/net.rs:
crates/consul/src/order.rs:
crates/consul/src/sequencer.rs:
crates/consul/src/stats.rs:

/root/repo/target/release/examples/observability-6060f3c1cc8dab05.d: examples/observability.rs

/root/repo/target/release/examples/observability-6060f3c1cc8dab05: examples/observability.rs

examples/observability.rs:

/root/repo/target/debug/deps/proptest_roundtrip-8dfed21cccdde327.d: crates/lcc/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-8dfed21cccdde327: crates/lcc/tests/proptest_roundtrip.rs

crates/lcc/tests/proptest_roundtrip.rs:

#!/usr/bin/env bash
# TCP transport smoke test: boot a 3-process, 2-shard cluster on
# localhost via the launcher, scrape every member's HTTP surface, run
# the ftlinda-top aggregator against all three exporters (its merged
# page must carry shard-labeled families with every member reporting
# in), then SIGKILL one member and relaunch it with --rejoin as the
# pingpong driver — the cluster must survive the kill, re-admit the new
# incarnation, and the driver must write the pingpong bench artifact
# ($BENCH_TCP_PINGPONG_JSON, default ./BENCH_tcp_pingpong.json). The
# aggregator's JSON snapshot lands at $BENCH_CLUSTER_TOP_JSON (default
# ./BENCH_cluster_top.json).
set -euo pipefail
cd "$(dirname "$0")/.."

HOSTS=3
SHARDS=2
SEQ_BASE="${TCP_SMOKE_SEQ_BASE:-7460}"
HTTP_BASE="${TCP_SMOKE_HTTP_BASE:-8460}"
COUNT="${TCP_SMOKE_COUNT:-500}"
LOG_DIR="${TMPDIR:-/tmp}/ftlinda-tcp-smoke"
BENCH_OUT="${BENCH_TCP_PINGPONG_JSON:-$PWD/BENCH_tcp_pingpong.json}"
TOP_OUT="${BENCH_CLUSTER_TOP_JSON:-$PWD/BENCH_cluster_top.json}"

BIN=""
for candidate in target/release/ftlinda-node target/debug/ftlinda-node; do
  [ -x "$candidate" ] && BIN="$candidate" && break
done
if [ -z "$BIN" ]; then
  echo "tcp_smoke.sh: build ftlinda-node first (cargo build [--release])" >&2
  exit 2
fi
TOP="$(dirname "$BIN")/ftlinda-top"
if [ ! -x "$TOP" ]; then
  echo "tcp_smoke.sh: build ftlinda-top first (cargo build [--release])" >&2
  exit 2
fi

rm -rf "$LOG_DIR"
mkdir -p "$LOG_DIR"
rm -f "$BENCH_OUT" "$TOP_OUT"

./scripts/tcp_cluster.sh -n "$HOSTS" -k "$SHARDS" -p "$SEQ_BASE" \
  -H "$HTTP_BASE" -b "$BIN" -l "$LOG_DIR" >"$LOG_DIR/launcher.log" 2>&1 &
LAUNCHER=$!
cleanup() {
  kill "$LAUNCHER" 2>/dev/null || true
  wait "$LAUNCHER" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

dump_logs() {
  for f in "$LOG_DIR"/launcher.log "$LOG_DIR"/node*.log; do
    echo "--- $f"
    cat "$f" 2>/dev/null || true
  done
}

# 1. Cluster formation: the launcher prints READY once every member has
#    converged on the full view.
for _ in $(seq 1 200); do
  grep -q '^READY' "$LOG_DIR/launcher.log" 2>/dev/null && break
  if ! kill -0 "$LAUNCHER" 2>/dev/null; then
    echo "tcp_smoke.sh: launcher exited early"; dump_logs; exit 1
  fi
  sleep 0.2
done
grep -q '^READY' "$LOG_DIR/launcher.log" || {
  echo "tcp_smoke.sh: cluster never formed"; dump_logs; exit 1
}

# 2. Every member serves the HTTP surface with a full live view and the
#    per-link transport counters.
FAIL=0
for ((i = 0; i < HOSTS; i++)); do
  addr="127.0.0.1:$((HTTP_BASE + i))"
  echo "--- member $i @ $addr"
  HEALTH="$(curl -sfS "http://$addr/healthz")" || { echo "  /healthz unreachable"; FAIL=1; continue; }
  echo "  $HEALTH"
  echo "$HEALTH" | grep -q '"live":true' || { echo "  member $i not live"; FAIL=1; }
  echo "$HEALTH" | grep -q '"view":\[0,1,2\]' || { echo "  member $i incomplete view"; FAIL=1; }
  curl -sfS "http://$addr/metrics" >/dev/null || { echo "  /metrics unreachable"; FAIL=1; }
  # The per-link transport counters live on the process-wide cluster
  # registry, merged into /metrics/cluster.
  METRICS="$(curl -sfS "http://$addr/metrics/cluster")" || { echo "  /metrics/cluster unreachable"; FAIL=1; continue; }
  for name in ftlinda_net_sent_bytes_total ftlinda_net_recv_bytes_total \
              ftlinda_net_reconnects_total ftlinda_frames_rejected_total; do
    echo "$METRICS" | grep -q "^$name" || { echo "  member $i missing $name"; FAIL=1; }
  done
done
[ "$FAIL" -eq 0 ] || { dump_logs; exit 1; }

# 3. Cluster aggregator: ftlinda-top scrapes every member's
#    /metrics/snapshot over the wire format and renders one merged page.
#    It must carry the shard-labeled kernel families for both shards and
#    report every target as scraped (scrape_up 1, nothing unreachable).
TARGETS="127.0.0.1:$HTTP_BASE,127.0.0.1:$((HTTP_BASE + 1)),127.0.0.1:$((HTTP_BASE + 2))"
TOP_PAGE="$LOG_DIR/cluster_top.prom"
if ! "$TOP" --targets "$TARGETS" --ticks 2 --interval-ms 300 \
    --page-out "$TOP_PAGE" --json-out "$TOP_OUT" >"$LOG_DIR/top.log" 2>&1; then
  echo "tcp_smoke.sh: ftlinda-top failed"; cat "$LOG_DIR/top.log"; dump_logs; exit 1
fi
for shard in 0 1; do
  grep -q "ftlinda_shard_tuples{shard=\"$shard\"}" "$TOP_PAGE" || {
    echo "tcp_smoke.sh: merged page missing shard $shard census:"; cat "$TOP_PAGE"; exit 1
  }
done
# Wire telemetry federates too: every member measures heartbeat RTT to
# its peers, so the merged page names all three hosts as peers.
for ((i = 0; i < HOSTS; i++)); do
  grep -q "ftlinda_net_rtt_seconds_count{peer=\"host$i\"}" "$TOP_PAGE" || {
    echo "tcp_smoke.sh: merged page missing host $i wire RTT:"; cat "$TOP_PAGE"; exit 1
  }
done
for ((i = 0; i < HOSTS; i++)); do
  grep -q "ftlinda_top_scrape_up{target=\"127.0.0.1:$((HTTP_BASE + i))\"} 1" "$TOP_PAGE" || {
    echo "tcp_smoke.sh: member $i not scraped by aggregator:"; cat "$TOP_PAGE"; exit 1
  }
done
grep -q '"unreachable":\[\]' "$TOP_OUT" || {
  echo "tcp_smoke.sh: aggregator JSON reports unreachable members:"; cat "$TOP_OUT"; exit 1
}
grep -q '"bench":"cluster_top"' "$TOP_OUT" || {
  echo "tcp_smoke.sh: malformed aggregator JSON:"; cat "$TOP_OUT"; exit 1
}
echo "cluster_top snapshot: $(tail -n 1 "$TOP_OUT")"

# 4. Federated cross-shard trace: SIGKILL the idle member 2 and bring
#    it back as the xtrace role — one cross-shard AGS executed with a
#    trace id. Member 0 (which did NOT originate the trace) must then
#    assemble the complete tree over the wire: both shard lanes, all
#    three stages, spans attributed to every host, nothing truncated.
PEERS="127.0.0.1:$SEQ_BASE,127.0.0.1:$((SEQ_BASE + 1)),127.0.0.1:$((SEQ_BASE + 2))"
VICTIM="$(cat "$LOG_DIR/node2.pid")"
kill -9 "$VICTIM" 2>/dev/null || true
sleep 0.3
"$BIN" --id 2 --peers "$PEERS" --shards "$SHARDS" \
  --http-base "$HTTP_BASE" --role xtrace --rejoin --run-secs 60 \
  >"$LOG_DIR/node2-xtrace.log" 2>&1 &
XTRACE_PID=$!
disown "$XTRACE_PID" 2>/dev/null || true
TRACE_ID=""
for _ in $(seq 1 150); do
  TRACE_ID="$(sed -n 's/^XTRACE id=//p' "$LOG_DIR/node2-xtrace.log" | head -n 1)"
  [ -n "$TRACE_ID" ] && break
  if ! kill -0 "$XTRACE_PID" 2>/dev/null; then
    echo "tcp_smoke.sh: xtrace member died early"; cat "$LOG_DIR/node2-xtrace.log"; dump_logs; exit 1
  fi
  sleep 0.2
done
[ -n "$TRACE_ID" ] || { echo "tcp_smoke.sh: no XTRACE line"; cat "$LOG_DIR/node2-xtrace.log"; dump_logs; exit 1; }
TREE=""
TREE_OK=0
for _ in $(seq 1 100); do
  TREE="$(curl -sfS "http://127.0.0.1:$HTTP_BASE/cluster/trace/$TRACE_ID" 2>/dev/null || true)"
  if echo "$TREE" | grep -q '"truncated":false' \
    && echo "$TREE" | grep -q '"shards":\[0,1\]' \
    && echo "$TREE" | grep -q '"stage":"xlock"' \
    && echo "$TREE" | grep -q '"stage":"xexec"' \
    && echo "$TREE" | grep -q '"stage":"xrelease"' \
    && echo "$TREE" | grep -q '"host":0' \
    && echo "$TREE" | grep -q '"host":1' \
    && echo "$TREE" | grep -q '"host":2'; then
    TREE_OK=1; break
  fi
  sleep 0.2
done
[ "$TREE_OK" -eq 1 ] || {
  echo "tcp_smoke.sh: federated trace never completed; last tree:"; echo "$TREE"; dump_logs; exit 1
}
echo "federated trace $TRACE_ID complete from member 0 (non-origin)"
kill -9 "$XTRACE_PID" 2>/dev/null || true
wait "$XTRACE_PID" 2>/dev/null || true
sleep 0.3

# 5. Rejoin-as-driver: member 2 (its xtrace incarnation just SIGKILLed
#    above) comes back a third time as the pingpong driver with
#    --rejoin. It must re-form a view with the survivors, drive COUNT
#    round trips against member 0's pong service across real sockets,
#    and write the bench artifact — now including the wire-level RTT
#    percentiles from the heartbeat piggyback histograms.
if ! "$BIN" --id 2 --peers "$PEERS" --shards "$SHARDS" \
    --http-base "$HTTP_BASE" --role ping --rejoin \
    --count "$COUNT" --bench-out "$BENCH_OUT" \
    >"$LOG_DIR/node2-rejoin.log" 2>&1; then
  echo "tcp_smoke.sh: relaunched ping driver failed"
  cat "$LOG_DIR/node2-rejoin.log"; dump_logs; exit 1
fi

[ -s "$BENCH_OUT" ] || { echo "tcp_smoke.sh: no bench artifact at $BENCH_OUT"; dump_logs; exit 1; }
grep -q '"bench":"tcp_pingpong"' "$BENCH_OUT" || { echo "tcp_smoke.sh: malformed bench JSON:"; cat "$BENCH_OUT"; exit 1; }
grep -q "\"count\":$COUNT" "$BENCH_OUT" || { echo "tcp_smoke.sh: wrong count in bench JSON:"; cat "$BENCH_OUT"; exit 1; }
grep -q '"wire_rtt_p99_us"' "$BENCH_OUT" || { echo "tcp_smoke.sh: bench JSON missing wire RTT percentiles:"; cat "$BENCH_OUT"; exit 1; }
echo "tcp_pingpong bench: $(cat "$BENCH_OUT")"
echo "TCP smoke OK: 3-process cluster formed, scraped, aggregated, traced, survived kill -9 + rejoin"

//! Flight recorder: post-mortem state dumps for rare, catastrophic
//! events.
//!
//! Metrics and the event ring answer "what is happening now"; the flight
//! recorder answers "what happened in the seconds before it went wrong".
//! When the cluster observes a **digest divergence**, a **coordinator
//! failover**, or a **rejoin give-up**, it dumps the full observability
//! state of every member — event ring, recent spans, order-layer
//! counters, kernel digests — to one timestamped file so the evidence
//! survives process exit and can be diffed across members.
//!
//! Dumps are written atomically (`.tmp` + rename) so a scraper watching
//! the directory never reads a half-written file.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One named section of a flight dump (e.g. one member's event ring).
pub struct FlightSection {
    /// Section heading, e.g. `"events host=1"`.
    pub title: String,
    /// Section body, already rendered (JSON lines, Prometheus text, ...).
    pub body: String,
}

impl FlightSection {
    /// Convenience constructor.
    pub fn new(title: impl Into<String>, body: impl Into<String>) -> FlightSection {
        FlightSection {
            title: title.into(),
            body: body.into(),
        }
    }
}

/// Writes flight dumps into a configured directory. Cheap to clone the
/// handle around via `Arc`; dump writes are serialized by a mutex so
/// concurrent triggers (every member sees the same divergence) produce
/// distinct, complete files.
pub struct FlightRecorder {
    dir: PathBuf,
    seq: AtomicU64,
    write_lock: Mutex<()>,
}

impl FlightRecorder {
    /// Create a recorder that writes into `dir`, creating it if needed.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<FlightRecorder> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FlightRecorder {
            dir,
            seq: AtomicU64::new(0),
            write_lock: Mutex::new(()),
        })
    }

    /// The directory dumps land in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Atomically write one dump triggered by `reason` (e.g.
    /// `"digest_divergence"`). Returns the path of the finished file.
    ///
    /// The filename embeds a wall-clock microsecond timestamp and a
    /// process-local sequence number, so repeated triggers never collide.
    pub fn dump(&self, reason: &str, sections: &[FlightSection]) -> std::io::Result<PathBuf> {
        let _guard = self.write_lock.lock().unwrap();
        let at = linda_obs::now_micros();
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let name = format!("flight-{at}-{n}-{reason}.txt");
        let tmp = self.dir.join(format!(".{name}.tmp"));
        let fin = self.dir.join(&name);
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "# flight recorder dump")?;
            writeln!(f, "# reason: {reason}")?;
            writeln!(f, "# at_micros: {at}")?;
            for s in sections {
                writeln!(f, "\n== {} ==", s.title)?;
                f.write_all(s.body.as_bytes())?;
                if !s.body.ends_with('\n') {
                    writeln!(f)?;
                }
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &fin)?;
        Ok(fin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_writes_atomic_timestamped_file() {
        let dir = std::env::temp_dir().join(format!(
            "ftlinda-flight-test-{}-{}",
            std::process::id(),
            linda_obs::now_micros()
        ));
        let rec = FlightRecorder::new(&dir).unwrap();
        let p = rec
            .dump(
                "digest_divergence",
                &[
                    FlightSection::new("events host=0", "{\"kind\":\"x\"}\n"),
                    FlightSection::new("digest host=0", "abc123"),
                ],
            )
            .unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.contains("# reason: digest_divergence"));
        assert!(text.contains("== events host=0 =="));
        assert!(text.contains("== digest host=0 =="));
        assert!(text.contains("abc123"));
        // No temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());

        // A second dump gets a distinct name even at the same microsecond.
        let p2 = rec.dump("digest_divergence", &[]).unwrap();
        assert_ne!(p, p2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! E7 — barrier round latency vs party count, AGS barrier vs the naive
//! plain-Linda barrier.
//!
//! The AGS barrier's arrival is one atomic increment (one multicast);
//! the naive barrier needs separate in + out (two multicasts and a crash
//! window). Expected shape: per-round cost grows roughly linearly with
//! parties (every arrival is an ordered AGS through one sequencer), with
//! the naive variant ~2× the messages.

use criterion::{criterion_group, criterion_main, Criterion};
use ftlinda::{Cluster, Runtime, TsId};
use linda_paradigms::TsBarrier;
use linda_tuple::{pat, tuple};
use std::time::Duration;

/// Plain-Linda barrier arrival: separate in and out (the unsafe shape).
fn naive_wait(rt: &Runtime, ts: TsId, parties: i64, gen: i64) {
    let t = rt.in_(ts, &pat!("nbar", gen, ?int)).unwrap();
    let n = t[2].as_int().unwrap() + 1;
    rt.out(ts, tuple!("nbar", gen, n)).unwrap();
    rt.rd(ts, &pat!("nbar", gen, parties)).unwrap();
}

fn run_rounds_ags(rts: &[Runtime], bar: TsBarrier, rounds: i64, base: i64) {
    let handles: Vec<_> = rts
        .iter()
        .map(|rt| {
            let rt = rt.clone();
            std::thread::spawn(move || {
                for g in 0..rounds {
                    bar.wait(&rt, base + g).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn bench(c: &mut Criterion) {
    println!("\nE7 — barrier rounds (10 per iteration):");
    let mut g = c.benchmark_group("fig_barrier");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for parties in [2usize, 3, 4] {
        let (cluster, rts) = Cluster::new(parties as u32);
        let ts = rts[0].create_stable_ts("bar").unwrap();
        let bar = TsBarrier::create(&rts[0], ts, parties).unwrap();
        // Generations advance monotonically across iterations.
        let mut next_gen = 0i64;
        g.bench_function(format!("ags_parties_{parties}"), |b| {
            b.iter(|| {
                run_rounds_ags(&rts, bar, 10, next_gen);
                next_gen += 10;
            })
        });
        cluster.shutdown();
    }

    // Naive two-step barrier for the message-cost contrast (failure-free
    // only — it has the crash window).
    for parties in [2usize, 3] {
        let (cluster, rts) = Cluster::new(parties as u32);
        let ts = rts[0].create_stable_ts("bar").unwrap();
        let mut next_gen = 0i64;
        g.bench_function(format!("naive_parties_{parties}"), |b| {
            b.iter(|| {
                for gen in next_gen..next_gen + 10 {
                    rts[0].out(ts, tuple!("nbar", gen, 0)).unwrap();
                    let handles: Vec<_> = rts
                        .iter()
                        .map(|rt| {
                            let rt = rt.clone();
                            let parties = parties as i64;
                            std::thread::spawn(move || naive_wait(&rt, ts, parties, gen))
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                }
                next_gen += 10;
            })
        });
        cluster.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

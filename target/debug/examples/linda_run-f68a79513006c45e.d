/root/repo/target/debug/examples/linda_run-f68a79513006c45e.d: examples/linda_run.rs

/root/repo/target/debug/examples/linda_run-f68a79513006c45e: examples/linda_run.rs

examples/linda_run.rs:

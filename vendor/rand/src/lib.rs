//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Deterministic xoshiro256** generator behind `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension trait with
//! `gen_range` / `gen` / `gen_bool`. Stream values differ from the real
//! `rand` (different algorithm), which only affects which pseudo-random
//! schedules tests explore, not correctness.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from OS entropy — here, from the current time.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Types uniformly sampleable from a range. The blanket `SampleRange`
/// impls below go through this trait so type inference can unify the range
/// element type with `gen_range`'s return type (mirroring the real crate).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn FnMut() -> u64, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                (((rng() as u128) % span) as i128 + lo as i128) as $t
            }
            fn sample_inclusive(rng: &mut dyn FnMut() -> u64, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (((rng() as u128) % span) as i128 + lo as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn FnMut() -> u64, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range in gen_range");
        let unit = (rng() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn sample_inclusive(rng: &mut dyn FnMut() -> u64, lo: f64, hi: f64) -> f64 {
        Self::sample_half_open(rng, lo, f64::from_bits(hi.to_bits() + 1))
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the "standard" distribution.
    fn from_rng(rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng(rng: &mut dyn FnMut() -> u64) -> $t {
                rng() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng(rng: &mut dyn FnMut() -> u64) -> bool {
        rng() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn FnMut() -> u64) -> f64 {
        (rng() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Extension trait with the sampling helpers call sites use.
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut f = || self.next_u64();
        range.sample(&mut f)
    }

    /// Value from the standard distribution for `T`.
    #[allow(clippy::wrong_self_convention)]
    fn gen<T: Standard>(&mut self) -> T {
        let mut f = || self.next_u64();
        T::from_rng(&mut f)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A time-seeded RNG (the real crate's thread-local generator).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(5..60);
            assert!((5..60).contains(&v));
            let w: i64 = r.gen_range(-3i64..4);
            assert!((-3..4).contains(&w));
            let x = r.gen_range(0..=3u32);
            assert!(x <= 3);
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn distribution_not_constant() {
        let mut r = StdRng::seed_from_u64(2);
        let vals: Vec<u64> = (0..20).map(|_| r.gen_range(0..1_000_000u64)).collect();
        assert!(vals.windows(2).any(|w| w[0] != w[1]));
    }
}

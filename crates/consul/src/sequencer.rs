//! Fixed-sequencer atomic multicast with coordinator failover.
//!
//! This is the workhorse total-order protocol of the reproduction (the
//! paper's Consul used Psync-based ordering; a sequencer gives the same
//! interface guarantees — total order, view changes ordered with
//! messages — with a simpler protocol whose costs are easy to account).
//!
//! Normal operation: a member submits `(local_id, payload)` to the
//! coordinator, which assigns the next global sequence number and
//! multicasts the ordered record to all members. Members deliver records
//! in contiguous sequence order.
//!
//! Failure handling (fail-silent crashes, perfect delayed detector):
//!
//! * **Coordinator crash** — the lowest-id live member becomes
//!   coordinator-elect, queries every live member for its log suffix
//!   (`SyncQuery`/`SyncReply`), merges the collected records (per-link
//!   FIFO guarantees each member holds a contiguous prefix, so the
//!   longest is a superset), then resumes assignment and emits an ordered
//!   `Fail` record for the dead coordinator. Members resubmit their
//!   unacked broadcasts to the new coordinator; duplicate submissions are
//!   detected by `(origin, local)` and answered with a retransmission
//!   instead of a second sequence number, so delivery is exactly-once.
//! * **Member crash** — the coordinator emits an ordered `Fail` record
//!   (deduplicated per incarnation against the log).
//! * **Gaps** — a member receiving a record beyond its contiguous prefix
//!   NACKs the coordinator, which retransmits from its complete log.
//! * **Restart** — the rejoining host broadcasts `JoinReq` (with retry);
//!   the coordinator replies with a `Snapshot` — the latest installed
//!   state checkpoint plus only the log tail past it (or the full log
//!   when checkpointing is off) — and emits an ordered `Join` record.
//!
//! Checkpointing and log compaction ([`CheckpointConfig`]): the
//! coordinator periodically emits an ordered `Checkpoint` marker, so
//! every replica snapshots its state machine at the identical sequence
//! number and hands the image back via
//! [`SeqMember::install_checkpoint`], which truncates the log behind the
//! `log_base` watermark. Rejoin then costs O(state) + O(tail) instead of
//! O(history), per-member log memory is bounded by the marker interval,
//! duplicate suppression below the watermark moves from the per-record
//! `assigned` map to a compact per-origin `retired` watermark, and a
//! NACK for a compacted sequence number is answered with a full
//! snapshot instead of a retransmission.

use crate::net::{HostId, NetConfig, NetEvent, SimNet, WireSized};
use crate::order::{BatchEntry, CheckpointImage, Delivery, LocalId, Record, RecordBody};
use crate::stats::OrderStats;
use crate::tcp::TcpLane;
use crate::transport::SeqNet;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Group-commit tuning for the coordinator's submit path.
///
/// The flush policy is adaptive: a submit that arrives while the
/// coordinator has been idle for at least `window` is multicast
/// immediately (zero added latency for sequential workloads), while
/// submits arriving faster than one per `window` are coalesced into a
/// single [`RecordBody::Batch`] multicast, flushed when the window
/// deadline passes or the batch reaches `max_entries`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Coalescing window. `Duration::ZERO` disables batching entirely:
    /// every submit is multicast as a solo record, byte-for-byte the
    /// pre-batching wire protocol.
    pub window: Duration,
    /// Flush as soon as this many submits have coalesced, even if the
    /// window has not yet expired.
    pub max_entries: usize,
    /// Flush as soon as the coalesced payload bytes reach this size,
    /// even if neither the window nor `max_entries` has been hit —
    /// bounding the wire size of one ordered multicast. `0` disables
    /// the byte trigger. The active threshold is exported as the
    /// `ftlinda_batch_max_bytes` gauge.
    pub max_bytes: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            window: Duration::from_micros(100),
            max_entries: 64,
            max_bytes: 256 * 1024,
        }
    }
}

impl BatchConfig {
    /// Batching off: wire-compatible with the pre-batching protocol.
    pub fn disabled() -> Self {
        BatchConfig {
            window: Duration::ZERO,
            max_entries: 1,
            max_bytes: 0,
        }
    }

    /// Whether the coordinator coalesces at all.
    pub fn enabled(&self) -> bool {
        self.window > Duration::ZERO
    }
}

/// Checkpoint and log-compaction tuning.
///
/// With checkpointing enabled the coordinator inserts a
/// [`RecordBody::Checkpoint`] marker into the total order roughly every
/// `every` records. The application snapshots its state machine when the
/// marker is delivered and installs the image back into its member
/// ([`SeqMember::install_checkpoint`]); with `compaction` on, the
/// install truncates the ordered log up to the marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Emit a checkpoint marker after this many ordered records since
    /// the previous marker. `0` disables checkpointing entirely — the
    /// pre-checkpoint wire protocol, where joiners replay the full log.
    pub every: u64,
    /// Truncate the log behind installed checkpoints. Off keeps markers
    /// flowing (and images current) while retaining the full log — for
    /// debugging a suspected compaction fault in production.
    pub compaction: bool,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            every: 512,
            compaction: true,
        }
    }
}

impl CheckpointConfig {
    /// Checkpointing off: wire-compatible with the pre-checkpoint
    /// protocol (no markers, full-log snapshots, unbounded log).
    pub fn disabled() -> Self {
        CheckpointConfig {
            every: 0,
            compaction: false,
        }
    }

    /// Whether the coordinator emits markers at all.
    pub fn enabled(&self) -> bool {
        self.every > 0
    }
}

/// Deadline timer shared between a member's protocol state (which arms
/// it while holding the state lock) and its flusher thread (which waits
/// on it and then takes the state lock). Lock order is strictly
/// state → timer; the flusher always releases the timer lock before
/// touching state, so the two locks are never held in opposite orders.
struct FlushTimer {
    inner: Mutex<TimerInner>,
    cv: Condvar,
}

struct TimerInner {
    deadline: Option<Instant>,
    closed: bool,
}

impl FlushTimer {
    fn new() -> Self {
        FlushTimer {
            inner: Mutex::new(TimerInner {
                deadline: None,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Arm (or move) the deadline. Called with the state lock held.
    fn arm(&self, deadline: Instant) {
        self.inner.lock().deadline = Some(deadline);
        self.cv.notify_one();
    }

    /// Permanently shut the timer down; the flusher thread exits.
    fn close(&self) {
        self.inner.lock().closed = true;
        self.cv.notify_one();
    }

    /// Block until an armed deadline passes (consuming it) or the timer
    /// is closed. Returns `false` on close.
    fn wait_due(&self) -> bool {
        let mut g = self.inner.lock();
        loop {
            if g.closed {
                return false;
            }
            match g.deadline {
                None => self.cv.wait(&mut g),
                Some(d) => {
                    if Instant::now() >= d {
                        g.deadline = None;
                        return true;
                    }
                    let _ = self.cv.wait_until(&mut g, d);
                }
            }
        }
    }
}

/// Protocol messages of the sequencer group.
#[derive(Debug, Clone, PartialEq)]
pub enum SeqMsg {
    /// Origin → coordinator: please order this payload.
    Submit {
        /// Origin-local broadcast id.
        local: LocalId,
        /// Payload bytes.
        payload: Bytes,
    },
    /// Coordinator → members: record with its global sequence number.
    Ordered(Record),
    /// Coordinator-elect → members: send me your log after `have`.
    SyncQuery {
        /// Length of the elect's contiguous log.
        have: u64,
    },
    /// Member → coordinator-elect: the requested suffix. When the elect
    /// is behind the replier's compaction watermark (`have < log_base`),
    /// the reply carries the replier's checkpoint (plus the state that
    /// must survive compaction) and its whole retained log.
    SyncReply {
        /// State checkpoint, present only when the elect's log cannot be
        /// extended to the replier's by records alone.
        checkpoint: Option<CheckpointImage>,
        /// Per-origin highest local id among compacted `App` records
        /// (duplicate suppression below the watermark).
        retired: Vec<(HostId, LocalId)>,
        /// Hosts with a compacted `Fail` record not yet superseded by a
        /// `Join`.
        failed: Vec<HostId>,
        /// Records with `seq > have` held by the replying member.
        records: Vec<Record>,
    },
    /// Member → coordinator: my log is contiguous up to `from - 1`,
    /// retransmit from `from`.
    Nack {
        /// First missing sequence number.
        from: u64,
    },
    /// Coordinator → member: gap repair.
    Retransmit {
        /// The missing records.
        records: Vec<Record>,
    },
    /// Restarted host → all: let me back in. The incarnation nonce is
    /// drawn once per process; the coordinator orders a `Join` record
    /// (the boundary that clears the previous incarnation's
    /// duplicate-suppression state) the first time it sees a given
    /// nonce, while retried `JoinReq`s from the same incarnation only
    /// re-send the snapshot. This keeps the boundary exactly-once even
    /// when the `Fail` record for the old incarnation was lost in
    /// coordinator-failover churn.
    JoinReq {
        /// Per-process random nonce identifying this incarnation.
        incarnation: u64,
    },
    /// Heartbeat (only in heartbeat-detection mode), carrying the RTT
    /// piggyback: each ping states when it left the sender and echoes
    /// the newest ping received from the destination, so the receiver
    /// can compute the link round-trip against its **own** clock —
    /// `rtt = now - echo_us - held_us` — with no cross-host clock
    /// comparison and zero extra messages.
    Ping {
        /// Sender's `now_micros()` at send time.
        sent_us: u64,
        /// `sent_us` of the newest ping received *from the destination*
        /// (0 when none has arrived yet — no sample).
        echo_us: u64,
        /// Microseconds the sender held that ping before echoing it
        /// (receipt → this send), subtracted out of the RTT.
        held_us: u64,
    },
    /// Coordinator → joiner (or → a member that fell behind the
    /// compaction watermark): state checkpoint plus the log tail past
    /// it. With checkpointing off, `checkpoint` is `None` and `tail` is
    /// the complete log — the classic full-replay snapshot.
    Snapshot {
        /// The coordinator's latest installed checkpoint, if any.
        checkpoint: Option<CheckpointImage>,
        /// Per-origin highest local id among compacted `App` records.
        retired: Vec<(HostId, LocalId)>,
        /// Hosts with a `Fail` record not superseded by a `Join` (the
        /// receiver cannot reconstruct this from a truncated log).
        failed: Vec<HostId>,
        /// Records past the checkpoint (the full log if none).
        tail: Vec<Record>,
        /// Coordinator's current live set.
        live: Vec<HostId>,
    },
    /// Coordinator → a host it has ordered a `Fail` record for, sent in
    /// response to any traffic from that host. The (falsely) suspected
    /// member is alive but has been removed from the recipient set: it
    /// must not resume mid-stream with a stale cursor. On receipt it
    /// drops out of the group, fails its in-flight broadcasts, and
    /// re-enters through the ordinary JoinReq → Snapshot rejoin path.
    Evicted,
}

impl WireSized for SeqMsg {
    fn wire_size(&self) -> usize {
        match self {
            SeqMsg::Submit { payload, .. } => 1 + 8 + payload.len(),
            SeqMsg::Ordered(r) => 1 + r.wire_size(),
            SeqMsg::SyncQuery { .. } => 9,
            SeqMsg::SyncReply {
                checkpoint,
                retired,
                failed,
                records,
            } => {
                1 + checkpoint.as_ref().map_or(0, CheckpointImage::wire_size)
                    + retired.len() * 12
                    + failed.len() * 4
                    + records.iter().map(Record::wire_size).sum::<usize>()
            }
            SeqMsg::Nack { .. } => 9,
            SeqMsg::Retransmit { records } => {
                1 + records.iter().map(Record::wire_size).sum::<usize>()
            }
            SeqMsg::JoinReq { .. } => 9,
            SeqMsg::Ping { .. } => 1 + 21,
            SeqMsg::Evicted => 1,
            SeqMsg::Snapshot {
                checkpoint,
                retired,
                failed,
                tail,
                live,
            } => {
                1 + checkpoint.as_ref().map_or(0, CheckpointImage::wire_size)
                    + retired.len() * 12
                    + failed.len() * 4
                    + tail.iter().map(Record::wire_size).sum::<usize>()
                    + live.len() * 4
            }
        }
    }
}

/// The full per-member protocol state machine. All methods assume the
/// member's lock is held; network sends from inside are safe (the router
/// never takes member locks).
struct State {
    me: HostId,
    universe: Vec<HostId>,
    live: BTreeSet<HostId>,
    coord: HostId,
    joined: bool,

    net: SeqNet,
    dtx: crossbeam::channel::Sender<Delivery>,
    stats: Arc<OrderStats>,
    /// Broadcast → total-order self-delivery latency (the "order" stage
    /// of the AGS lifecycle).
    order_hist: Arc<linda_obs::Histogram>,
    /// Submission instants of this member's own in-flight broadcasts.
    broadcast_at: HashMap<LocalId, Instant>,
    /// Causal-trace span ring ("flush" at the coordinator, "deliver" on
    /// every member), shared with the member's registry.
    spans: Arc<linda_obs::SpanLog>,
    /// Structured-event sink (coordinator failover notices).
    events: Arc<linda_obs::EventSink>,

    // Member side. The retained log holds sequences
    // `log_base + 1 ..= log_base + log.len()`; everything at or below
    // `log_base` has been compacted behind the installed checkpoint.
    log: Vec<Record>,
    log_base: u64,
    /// Latest installed state checkpoint. Invariant: when present its
    /// `seq >= log_base`, so checkpoint + retained tail always covers
    /// the full history — a snapshot can never be older than the
    /// compaction watermark.
    checkpoint: Option<CheckpointImage>,
    /// Per-origin highest local id among compacted `App` records. A
    /// submission at or below this watermark is a duplicate of a record
    /// that no longer exists solo — it is answered with a snapshot.
    retired: HashMap<HostId, LocalId>,
    ckpt_cfg: CheckpointConfig,
    buffer: BTreeMap<u64, Record>,
    pending_submits: BTreeMap<LocalId, Bytes>,
    next_local: LocalId,
    nacked_for: Option<u64>,
    /// Hosts with a `Fail` record not yet superseded by a `Join` record.
    failed_recorded: BTreeSet<HostId>,
    /// Leak accounting for `broadcast_at`: every insert and remove is
    /// counted, and the append path asserts the map size matches.
    ba_inserts: u64,
    ba_removes: u64,

    // Coordinator side.
    coord_synced: bool,
    next_seq: u64,
    assigned: HashMap<(HostId, LocalId), u64>,
    /// Seq of the last checkpoint marker this coordinator knows of.
    last_marker: u64,
    recipients: BTreeSet<HostId>,
    sync_waiting: BTreeSet<HostId>,
    sync_records: BTreeMap<u64, Record>,
    /// Best checkpoint offered by a `SyncReply` (highest seq wins),
    /// with the compaction-surviving state that rides along.
    sync_checkpoint: Option<CheckpointImage>,
    sync_retired: Vec<(HostId, LocalId)>,
    sync_failed: Vec<HostId>,
    buffered_submits: Vec<(HostId, LocalId, Bytes)>,
    buffered_nacks: Vec<(HostId, u64)>,
    pending_fails: BTreeSet<HostId>,
    pending_joins: Vec<(HostId, u64)>,

    // Group commit (coordinator only). Entries in `batch` already hold
    // assigned sequence numbers `batch_first .. batch_first + len`; they
    // are multicast (and only then logged) when the batch flushes.
    batch_cfg: BatchConfig,
    batch: Vec<BatchEntry>,
    /// Enqueue instants parallel to `batch` (kept out of [`BatchEntry`],
    /// which is a wire struct) for per-entry queueing-delay spans.
    batch_enqueued: Vec<Instant>,
    /// Payload bytes coalesced in the open batch (size-based trigger).
    batch_bytes: usize,
    batch_first: u64,
    batch_opened_at: Instant,
    batch_deadline: Option<Instant>,
    last_flush: Instant,
    flush_timer: Arc<FlushTimer>,
    batch_size_hist: Arc<linda_obs::Histogram>,
    batch_flush_hist: Arc<linda_obs::Histogram>,

    // Heartbeat failure detection (None = oracle notices from SimNet).
    hb: Option<crate::net::Heartbeat>,
    last_heard: HashMap<HostId, std::time::Instant>,
    last_ping: std::time::Instant,
    /// Newest ping received per peer: its `sent_us` plus when it
    /// arrived, echoed back on our next heartbeat (RTT piggyback).
    ping_rx: HashMap<HostId, (u64, Instant)>,
    /// Per-peer wire round-trip latency (`ftlinda_net_rtt_seconds`),
    /// fed by the heartbeat echo path.
    rtt_hist: Arc<linda_obs::HistogramFamily>,
    // Tick-driven rejoin (heartbeat mode only): while `!joined`, the
    // member multicasts JoinReq on this backoff schedule. This is how an
    // evicted (falsely-suspected) member re-enters, and how a TCP node
    // started with `initially_joined = false` joins a running cluster.
    next_join_at: std::time::Instant,
    join_backoff: Duration,

    // While a coordinator-elect is parked waiting for SyncReplies, the
    // SyncQuery is re-sent on this schedule. On a lossy transport (a TCP
    // link mid-reconnect drops sends) the one-shot query can vanish, and
    // nothing else would ever unpark the sync.
    next_sync_retry: std::time::Instant,

    // This process's incarnation nonce, carried on every JoinReq. Drawn
    // from the clock at construction; two incarnations of the same host
    // id colliding would require booting twice in the same nanosecond.
    incarnation: u64,

    // Coordinator-side: the last incarnation nonce each host was served
    // a join for. A JoinReq with a new nonce orders a Join record (the
    // incarnation boundary) even when the old incarnation's Fail record
    // was lost in failover churn; a retried JoinReq with the same nonce
    // only re-sends the snapshot.
    join_incarnations: BTreeMap<HostId, u64>,

    // True until a member that booted outside the group (a fresh
    // process rejoining a running cluster) completes its first join.
    // Its local-id counter restarts from 1, so `origin == me` records in
    // the replayed snapshot tail belong to the *previous* incarnation
    // and must not retire this incarnation's pending submissions. An
    // evicted-but-alive member keeps its counter, so there the replayed
    // records really are its own and the flag stays false.
    fresh_incarnation: bool,
}

impl State {
    fn is_coord(&self) -> bool {
        self.coord == self.me
    }

    /// Highest sequence number covered by this member: the compacted
    /// prefix (`log_base`) plus the retained log.
    fn last_seq(&self) -> u64 {
        self.log_base + self.log.len() as u64
    }

    /// The retained record at `seq`, if it has not been compacted away.
    fn rec_at(&self, seq: u64) -> Option<&Record> {
        seq.checked_sub(self.log_base + 1)
            .and_then(|i| self.log.get(i as usize))
    }

    fn on_event(&mut self, ev: NetEvent<SeqMsg>) {
        match ev {
            NetEvent::Msg { from, msg } => {
                self.last_heard.insert(from, std::time::Instant::now());
                // A JoinReq from a host we still count as live is itself
                // a crash notice: the only senders are a fresh incarnation
                // (the old process is gone) and an evicted member (whose
                // Fail is already ordered). Run the failure through
                // `on_crash` *first* so failover / Fail-record machinery
                // orders the incarnation boundary before the join is
                // served — without this, the rejoiner's own retried
                // JoinReqs keep refreshing `last_heard` and the heartbeat
                // detector never notices the restart.
                if self.hb.is_some()
                    && self.joined
                    && from != self.me
                    && self.live.contains(&from)
                    && matches!(msg, SeqMsg::JoinReq { .. })
                {
                    self.on_crash(from);
                }
                // An isolation-demoted coordinator (see `on_crash`) that
                // hears a universe peer again has proof its silence
                // verdict was wrong: re-admit the peer and re-run the
                // election sync instead of staying parked forever. The
                // parked Fail is kept: the peer's previous incarnation
                // left duplicate-suppression state (`assigned`/`retired`)
                // behind, and only an ordered Fail → Join pair marks the
                // incarnation boundary that clears it. A peer that never
                // actually restarted simply rejoins through the ordinary
                // eviction path.
                if self.hb.is_some()
                    && self.joined
                    && self.is_coord()
                    && !self.coord_synced
                    && from != self.me
                    && !self.live.contains(&from)
                    && self.universe.contains(&from)
                {
                    self.live.insert(from);
                    self.begin_sync();
                }
                self.on_msg(from, msg)
            }
            NetEvent::CrashNotice(h) => self.on_crash(h),
            NetEvent::JoinNotice(h) => {
                if h != self.me {
                    self.live.insert(h);
                }
            }
        }
    }

    fn on_msg(&mut self, from: HostId, msg: SeqMsg) {
        // Traffic from a host we have ordered a Fail record for: the
        // host is alive but evicted from the recipient set — every
        // record since its Fail has bypassed it, so letting it resume
        // mid-stream would hand it a stale cursor (and a resubmit could
        // draw a *second* sequence number once a Join record prunes the
        // duplicate-suppression state). Tell it to drop out and rejoin
        // through the snapshot path. JoinReq itself must keep flowing,
        // and sync/snapshot replies are part of recovery, so only
        // steady-state traffic triggers the eviction.
        if self.is_coord()
            && self.coord_synced
            && from != self.me
            && self.failed_recorded.contains(&from)
            && matches!(
                msg,
                SeqMsg::Submit { .. } | SeqMsg::Nack { .. } | SeqMsg::Ping { .. }
            )
        {
            self.net.send(self.me, from, SeqMsg::Evicted);
            return;
        }
        match msg {
            SeqMsg::Submit { local, payload } => {
                if self.is_coord() {
                    self.coord_submit(from, local, payload);
                }
                // else: drop; origin resubmits after its detector fires.
            }
            SeqMsg::Ordered(rec) => self.accept_record(rec),
            SeqMsg::SyncQuery { have } => {
                if have < self.log_base {
                    // The elect is behind our compaction watermark: no
                    // record suffix can extend its log to ours. Reply
                    // with our checkpoint (invariant: seq >= log_base)
                    // and the whole retained log.
                    debug_assert!(self
                        .checkpoint
                        .as_ref()
                        .is_some_and(|c| c.seq >= self.log_base));
                    let reply = SeqMsg::SyncReply {
                        checkpoint: self.checkpoint.clone(),
                        retired: self.retired.iter().map(|(h, l)| (*h, *l)).collect(),
                        failed: self.failed_recorded.iter().copied().collect(),
                        records: self.log.clone(),
                    };
                    self.net.send(self.me, from, reply);
                } else {
                    let start = (have - self.log_base) as usize;
                    let records = self.log.get(start..).map(<[Record]>::to_vec);
                    let reply = SeqMsg::SyncReply {
                        checkpoint: None,
                        retired: Vec::new(),
                        failed: Vec::new(),
                        records: records.unwrap_or_default(),
                    };
                    self.net.send(self.me, from, reply);
                }
            }
            SeqMsg::SyncReply {
                checkpoint,
                retired,
                failed,
                records,
            } => {
                if !self.is_coord() || self.coord_synced {
                    return;
                }
                if let Some(cp) = checkpoint {
                    if self.sync_checkpoint.as_ref().is_none_or(|c| cp.seq > c.seq) {
                        self.sync_checkpoint = Some(cp);
                        self.sync_retired = retired;
                        self.sync_failed = failed;
                    }
                }
                for r in records {
                    self.sync_records.insert(r.seq, r);
                }
                self.sync_waiting.remove(&from);
                if self.sync_waiting.is_empty() {
                    self.finish_sync();
                }
            }
            SeqMsg::Nack { from: missing } => {
                if self.is_coord() && self.coord_synced {
                    self.serve_nack(from, missing);
                } else if self.is_coord() {
                    self.buffered_nacks.push((from, missing));
                }
            }
            SeqMsg::Retransmit { records } => {
                for rec in records {
                    self.accept_record(rec);
                }
            }
            SeqMsg::JoinReq { incarnation } => {
                if self.is_coord() && self.coord_synced {
                    self.serve_join(from, incarnation);
                } else if self.is_coord() && self.joined {
                    // Park until the election sync completes, keeping
                    // only the newest nonce per host. An *unjoined*
                    // would-be coordinator (a fresh incarnation of
                    // `universe[0]` that has not rejoined yet) must not
                    // park joins it can never serve — the joiner retries
                    // and the real coordinator answers.
                    self.pending_joins.retain(|(h, _)| *h != from);
                    self.pending_joins.push((from, incarnation));
                }
            }
            SeqMsg::Ping {
                sent_us,
                echo_us,
                held_us,
            } => {
                // Remember this ping so our next heartbeat echoes it
                // back, and close the loop on any echo of our own: the
                // round-trip is measured entirely against our clock.
                self.ping_rx.insert(from, (sent_us, Instant::now()));
                if echo_us != 0 {
                    let rtt_us = linda_obs::now_micros()
                        .saturating_sub(echo_us)
                        .saturating_sub(held_us);
                    self.rtt_hist
                        .with(&[("peer", &from.to_string())])
                        .observe_seconds(rtt_us as f64 / 1e6);
                }
            }
            SeqMsg::Snapshot {
                checkpoint,
                retired,
                failed,
                tail,
                live,
            } => {
                let joining = !self.joined;
                // A fresh incarnation's pre-join submissions must survive
                // the snapshot install: `adopt_snapshot` clears pending
                // state on a checkpoint jump, and that state is the only
                // record of what still needs resubmitting.
                let saved: Vec<(LocalId, Bytes)> = if joining && self.fresh_incarnation {
                    self.pending_submits
                        .iter()
                        .map(|(l, p)| (*l, p.clone()))
                        .collect()
                } else {
                    Vec::new()
                };
                if self.joined {
                    // To a live member a snapshot is only useful as a
                    // catch-up past the coordinator's compaction
                    // watermark (the answer to a NACK below log_base);
                    // anything else is a stale duplicate of a retried
                    // JoinReq.
                    match &checkpoint {
                        Some(cp) if cp.seq > self.last_seq() => {}
                        _ => return,
                    }
                } else {
                    self.live = live.into_iter().collect();
                    self.live.insert(self.me);
                    self.coord = from;
                    self.joined = true;
                }
                self.adopt_snapshot(checkpoint, retired, failed);
                for rec in tail {
                    self.accept_record(rec);
                }
                if joining {
                    // Broadcasts submitted before (or during) the join
                    // were refused by the coordinator while our Fail
                    // record stood; anything the snapshot's tail did not
                    // retire is resubmitted now that we are admitted.
                    // `coord_submit` dedups on the coordinator side.
                    for (local, payload) in saved {
                        self.pending_submits.insert(local, payload);
                    }
                    self.fresh_incarnation = false;
                    let me = self.me;
                    let coord = self.coord;
                    let pend: Vec<(LocalId, Bytes)> = self
                        .pending_submits
                        .iter()
                        .map(|(l, p)| (*l, p.clone()))
                        .collect();
                    for (local, payload) in pend {
                        self.stats.record_retransmit();
                        self.net.send(me, coord, SeqMsg::Submit { local, payload });
                    }
                }
            }
            SeqMsg::Evicted => self.on_evicted(from),
        }
    }

    /// The coordinator has ordered a `Fail` record for us while we were
    /// alive (a false suspicion — e.g. a long pause, or a TCP link that
    /// outlasted the heartbeat timeout before reconnecting). Step down
    /// and re-enter through the ordinary JoinReq → Snapshot path rather
    /// than resuming mid-stream with a stale cursor.
    fn on_evicted(&mut self, from: HostId) {
        if !self.joined || self.hb.is_none() {
            return; // already out, or running under the oracle detector
        }
        // Dueling-coordinator arbitration: when a healed partition
        // leaves two synced coordinators evicting each other, the
        // lower id keeps the role and the higher one steps down.
        if self.is_coord() && self.coord_synced && from.0 > self.me.0 {
            return;
        }
        self.events.emit(linda_obs::Event::new(
            "evicted",
            vec![
                ("host".into(), self.me.to_string()),
                ("by".into(), from.to_string()),
                ("last_seq".into(), self.last_seq().to_string()),
            ],
        ));
        self.stats.record_view_change();
        // In-flight broadcasts are indeterminate across the re-admission
        // (their Fail/Join bracket may or may not contain them); fail
        // their waiters via the synthesized delivery below.
        self.pending_submits.clear();
        self.ba_removes += self.broadcast_at.len() as u64;
        self.broadcast_at.clear();
        self.nacked_for = None;
        // Abandon any coordinator role we thought we held.
        self.batch.clear();
        self.batch_enqueued.clear();
        self.batch_bytes = 0;
        self.batch_deadline = None;
        self.buffered_submits.clear();
        self.buffered_nacks.clear();
        self.pending_joins.clear();
        self.pending_fails.clear();
        self.assigned.clear();
        self.coord_synced = false;
        self.joined = false;
        self.coord = from;
        self.next_join_at = std::time::Instant::now();
        self.join_backoff = Self::JOIN_BACKOFF_MIN;
        let _ = self.dtx.send(Delivery::Evicted {
            seq: self.last_seq(),
        });
    }

    /// First backoff step of the tick-driven JoinReq loop.
    const JOIN_BACKOFF_MIN: Duration = Duration::from_millis(5);
    /// Backoff cap of the tick-driven JoinReq loop.
    const JOIN_BACKOFF_MAX: Duration = Duration::from_millis(500);

    /// Re-send interval for SyncQuery while replies are outstanding
    /// (covers queries or replies lost to a reconnecting TCP link).
    const SYNC_RETRY: Duration = Duration::from_millis(100);

    /// (Re-)run the coordinator election sync: ask every live peer for
    /// its log suffix and wait for all replies before assigning any new
    /// sequence numbers.
    fn begin_sync(&mut self) {
        self.coord_synced = false;
        self.sync_records.clear();
        self.sync_checkpoint = None;
        self.sync_retired.clear();
        self.sync_failed.clear();
        self.sync_waiting = self
            .live
            .iter()
            .copied()
            .filter(|p| *p != self.me)
            .collect();
        let have = self.last_seq();
        let peers: Vec<HostId> = self.sync_waiting.iter().copied().collect();
        for p in peers {
            self.net.send(self.me, p, SeqMsg::SyncQuery { have });
        }
        self.next_sync_retry = std::time::Instant::now() + Self::SYNC_RETRY;
        if self.sync_waiting.is_empty() {
            // Heartbeat detection is fallible: a coordinator that just
            // declared *everyone* else silent is more likely isolated
            // than the last survivor. Ordering records alone would fork
            // the log against the majority's new coordinator, so park
            // unsynced instead; hearing any peer again (see `on_event`)
            // or an `Evicted` from the real coordinator resolves it.
            // The oracle detector is exact, so there the lone survivor
            // legitimately continues.
            if self.hb.is_some() && self.universe.len() > 1 {
                self.events.emit(linda_obs::Event::new(
                    "coordinator_isolated",
                    vec![("host".into(), self.me.to_string())],
                ));
                return;
            }
            self.finish_sync();
        }
    }

    /// Core append path: deliver `rec` if it extends the contiguous log,
    /// buffer it if ahead, ignore duplicates. Batch records are exploded
    /// into their solo `App` records first, so duplicate detection, gap
    /// repair, and the log itself stay per-entry — a retransmitted batch
    /// that partially overlaps the log is deduplicated entry by entry.
    fn accept_record(&mut self, rec: Record) {
        if matches!(rec.body, RecordBody::Batch(_)) {
            for solo in rec.explode() {
                self.accept_record(solo);
            }
            return;
        }
        if rec.seq <= self.last_seq() {
            return;
        }
        if rec.seq > self.last_seq() + 1 {
            let expected = self.last_seq() + 1;
            self.buffer.insert(rec.seq, rec);
            if self.nacked_for != Some(expected) {
                self.nacked_for = Some(expected);
                self.stats.record_retransmit();
                let coord = self.coord;
                self.net
                    .send(self.me, coord, SeqMsg::Nack { from: expected });
            }
            return;
        }
        self.append_and_deliver(rec);
        while let Some(next) = self.buffer.remove(&(self.last_seq() + 1)) {
            self.append_and_deliver(next);
        }
        // Drop any stale out-of-order copies the drain left behind
        // (e.g. a retransmit overlapping records that arrived solo, or
        // a checkpoint jump over buffered sequences) — the buffer must
        // only ever hold records ahead of the contiguous prefix.
        let ahead = self.last_seq() + 1;
        if self
            .buffer
            .first_key_value()
            .is_some_and(|(s, _)| *s < ahead)
        {
            self.buffer = self.buffer.split_off(&ahead);
        }
        self.nacked_for = None;
    }

    fn append_and_deliver(&mut self, rec: Record) {
        debug_assert_eq!(rec.seq, self.last_seq() + 1);
        match &rec.body {
            RecordBody::Batch(_) => {
                unreachable!("batch records are exploded in accept_record")
            }
            RecordBody::App(_) => {
                if rec.origin == self.me && !self.fresh_incarnation {
                    self.pending_submits.remove(&rec.local);
                    if let Some(t0) = self.broadcast_at.remove(&rec.local) {
                        self.ba_removes += 1;
                        self.order_hist.observe(t0.elapsed());
                    }
                    debug_assert_eq!(
                        self.ba_inserts,
                        self.ba_removes + self.broadcast_at.len() as u64,
                        "broadcast_at leaked: a submission was retired without \
                         removing its timestamp"
                    );
                }
                self.spans.record(
                    linda_obs::TraceId::new(rec.origin.0, rec.local),
                    "deliver",
                    self.me.0,
                    vec![("seq".into(), rec.seq.to_string())],
                );
            }
            RecordBody::Fail(h) => {
                self.failed_recorded.insert(*h);
                // An ordered Fail satisfies any copy we parked while a
                // failover was still electing who would record it.
                self.pending_fails.remove(h);
                self.stats.record_view_change();
            }
            RecordBody::Join(h) => {
                self.failed_recorded.remove(h);
                // A parked Fail predates this re-admission: firing it
                // after the Join would evict the host we just served.
                self.pending_fails.remove(h);
                self.live.insert(*h);
                self.last_heard.insert(*h, std::time::Instant::now());
                // A Join starts a fresh incarnation whose local ids
                // restart from 1: duplicate-suppression state from the
                // previous incarnation must not shadow its submissions.
                let h = *h;
                self.assigned.retain(|(o, _), _| *o != h);
                self.retired.remove(&h);
                self.stats.record_view_change();
            }
            RecordBody::Checkpoint => {
                // Protocol-side no-op: the boundary only matters to the
                // application, which snapshots at this seq and installs
                // the image back (truncating the log behind it).
            }
        }
        let delivery = Delivery::from_record(&rec);
        self.log.push(rec);
        self.stats.record_delivery();
        let _ = self.dtx.send(delivery);
    }

    /// Heartbeat mode: send periodic pings and declare silent peers
    /// crashed; while unjoined, retry JoinReq on a capped backoff
    /// instead. Called from the member thread on every loop iteration.
    fn heartbeat_tick(&mut self) {
        let Some(hb) = self.hb else { return };
        let now = std::time::Instant::now();
        if !self.joined {
            if now >= self.next_join_at {
                self.next_join_at = now + self.join_backoff;
                self.join_backoff = (self.join_backoff * 2).min(Self::JOIN_BACKOFF_MAX);
                self.stats.record_retransmit();
                let me = self.me;
                let incarnation = self.incarnation;
                let peers: Vec<HostId> =
                    self.universe.iter().copied().filter(|p| *p != me).collect();
                self.net
                    .multicast(me, &peers, SeqMsg::JoinReq { incarnation });
            }
            return;
        }
        // A coordinator-elect parked on lost sync traffic re-asks: the
        // SyncQuery (or its reply) may have been dropped by a TCP link
        // that was still mid-reconnect when the election fired.
        if self.is_coord()
            && !self.coord_synced
            && !self.sync_waiting.is_empty()
            && now >= self.next_sync_retry
        {
            self.next_sync_retry = now + Self::SYNC_RETRY;
            let have = self.last_seq();
            let me = self.me;
            let peers: Vec<HostId> = self.sync_waiting.iter().copied().collect();
            for p in peers {
                self.stats.record_retransmit();
                self.net.send(me, p, SeqMsg::SyncQuery { have });
            }
        }
        if now.duration_since(self.last_ping) >= hb.period {
            self.last_ping = now;
            let me = self.me;
            let peers: Vec<HostId> = self.universe.iter().copied().filter(|p| *p != me).collect();
            // Per-peer sends rather than one multicast: each ping echoes
            // the newest ping *from that peer*, closing the RTT loop.
            for p in peers {
                let (echo_us, held_us) = self
                    .ping_rx
                    .get(&p)
                    .map(|(sent, at)| (*sent, at.elapsed().as_micros() as u64))
                    .unwrap_or((0, 0));
                self.net.send(
                    me,
                    p,
                    SeqMsg::Ping {
                        sent_us: linda_obs::now_micros(),
                        echo_us,
                        held_us,
                    },
                );
            }
        }
        let silent: Vec<HostId> = self
            .live
            .iter()
            .copied()
            .filter(|p| {
                *p != self.me
                    && self
                        .last_heard
                        .get(p)
                        .is_none_or(|t| now.duration_since(*t) > hb.timeout)
            })
            .collect();
        for h in silent {
            self.on_crash(h);
        }
    }

    fn on_crash(&mut self, h: HostId) {
        if !self.live.contains(&h) {
            return; // already handled (heartbeat detectors can refire)
        }
        self.live.remove(&h);
        self.recipients.remove(&h);
        if h == self.coord {
            let new_coord = match self.live.iter().next() {
                Some(c) => *c,
                None => return,
            };
            self.events.emit(linda_obs::Event::new(
                "coordinator_failover",
                vec![
                    ("failed".into(), h.to_string()),
                    ("new_coord".into(), new_coord.to_string()),
                    ("observer".into(), self.me.to_string()),
                ],
            ));
            self.coord = new_coord;
            self.nacked_for = None;
            // Every observer parks the Fail, not just the elected
            // coordinator: a failover that names an already-dead new
            // coordinator would otherwise drop the record on the floor,
            // and whoever wins the *next* election must still order it.
            // The parked entry is retired when a Fail or Join record for
            // the host is delivered (see `append_and_deliver`).
            self.pending_fails.insert(h);
            if new_coord == self.me {
                // Become coordinator-elect; sync with every live peer.
                self.begin_sync();
            } else {
                // Resubmit unacked broadcasts to the new coordinator.
                let me = self.me;
                let pend: Vec<(LocalId, Bytes)> = self
                    .pending_submits
                    .iter()
                    .map(|(l, p)| (*l, p.clone()))
                    .collect();
                for (local, payload) in pend {
                    self.stats.record_retransmit();
                    self.net
                        .send(me, new_coord, SeqMsg::Submit { local, payload });
                }
            }
        } else if self.is_coord() {
            // A synced coordinator whose detector just silenced its
            // *last* peer (heartbeat mode, non-trivial universe) is more
            // likely isolated than alone: demote instead of ordering a
            // Fail that would fork the log against the majority's new
            // coordinator. Re-promotion happens in `on_event` when a
            // peer is heard again, or via `Evicted` from the majority's
            // coordinator.
            let isolated = self.hb.is_some() && self.live.len() <= 1 && self.universe.len() > 1;
            if self.coord_synced {
                if isolated {
                    self.coord_synced = false;
                    self.pending_fails.insert(h);
                    self.events.emit(linda_obs::Event::new(
                        "coordinator_isolated",
                        vec![("host".into(), self.me.to_string())],
                    ));
                } else {
                    self.emit_fail(h);
                }
            } else {
                self.pending_fails.insert(h);
                if self.sync_waiting.remove(&h) && self.sync_waiting.is_empty() && !isolated {
                    self.finish_sync();
                }
            }
        }
    }

    fn finish_sync(&mut self) {
        // If some replier was ahead of our compaction watermark by more
        // than its own retained log, it sent a checkpoint: jump to it
        // before merging record suffixes (our in-flight submissions are
        // indeterminate across the jump; the application fails their
        // waiters when it sees the Restore).
        if let Some(cp) = self.sync_checkpoint.take() {
            let retired = std::mem::take(&mut self.sync_retired);
            let failed = std::mem::take(&mut self.sync_failed);
            if cp.seq > self.last_seq() {
                self.adopt_snapshot(Some(cp), retired, failed);
            }
        }
        let recs: Vec<Record> = self.sync_records.values().cloned().collect();
        self.sync_records.clear();
        for rec in recs {
            self.accept_record(rec);
        }
        self.next_seq = self.last_seq() + 1;
        // Rebuild duplicate suppression by folding the log *in order*:
        // a Join record is an incarnation boundary, so App records from
        // before a host's Join must not shadow the new incarnation's
        // restarted local-id sequence.
        self.assigned.clear();
        for i in 0..self.log.len() {
            match &self.log[i].body {
                RecordBody::App(_) => {
                    let r = &self.log[i];
                    self.assigned.insert((r.origin, r.local), r.seq);
                }
                RecordBody::Join(h) => {
                    let h = *h;
                    self.assigned.retain(|(o, _), _| *o != h);
                }
                _ => {}
            }
        }
        // Resume marker cadence from the last marker that survives in
        // the merged log (or the watermark itself if none did).
        self.last_marker = self
            .log
            .iter()
            .rev()
            .find(|r| matches!(r.body, RecordBody::Checkpoint))
            .map(|r| r.seq)
            .unwrap_or(0)
            .max(self.log_base);
        self.recipients = self.live.clone();
        self.coord_synced = true;

        let fails: Vec<HostId> = self.pending_fails.iter().copied().collect();
        self.pending_fails.clear();
        for h in fails {
            self.emit_fail(h);
        }
        // Failover churn can lose a Fail: `on_crash` only parks one when
        // the election lands on *us*, so a failover that named an
        // already-dead new coordinator drops the record on the floor.
        // Heartbeat mode expects every universe member to be reachable —
        // sweep any we cannot hear into Fail records now (dedup'd by
        // `failed_recorded`); their Join clears them when they return.
        if self.hb.is_some() {
            let absent: Vec<HostId> = self
                .universe
                .iter()
                .copied()
                .filter(|h| *h != self.me && !self.live.contains(h))
                .collect();
            for h in absent {
                self.emit_fail(h);
            }
        }
        // Re-inject our own unacked submissions (the old coordinator may
        // have died holding them). `coord_submit` dedups anything that did
        // make it into the log.
        let me = self.me;
        let pend: Vec<(LocalId, Bytes)> = self
            .pending_submits
            .iter()
            .map(|(l, p)| (*l, p.clone()))
            .collect();
        for (local, payload) in pend {
            self.coord_submit(me, local, payload);
        }
        let subs = std::mem::take(&mut self.buffered_submits);
        for (origin, local, payload) in subs {
            self.coord_submit(origin, local, payload);
        }
        let nacks = std::mem::take(&mut self.buffered_nacks);
        for (from, missing) in nacks {
            self.serve_nack(from, missing);
        }
        let joins = std::mem::take(&mut self.pending_joins);
        for (j, inc) in joins {
            self.serve_join(j, inc);
        }
    }

    fn emit_fail(&mut self, h: HostId) {
        if self.failed_recorded.contains(&h) {
            return; // already recorded for this incarnation
        }
        // The open batch holds sequence numbers below `next_seq`; flush
        // it so the Fail record extends the multicast stream contiguously.
        self.flush_batch();
        let rec = Record {
            seq: self.next_seq,
            origin: self.me,
            local: 0,
            body: RecordBody::Fail(h),
        };
        self.next_seq += 1;
        self.distribute(rec);
    }

    fn serve_nack(&mut self, from: HostId, missing: u64) {
        if missing <= self.log_base {
            // The requested prefix is compacted away; a retransmission
            // cannot exist. Ship a full snapshot (checkpoint + tail):
            // the receiver jumps to the checkpoint and resumes from
            // there.
            self.send_snapshot(from);
            return;
        }
        // The log is contiguous from `log_base + 1`, so the suffix at
        // `missing` starts at a direct offset — no per-record scan.
        let start = (missing - 1 - self.log_base) as usize;
        if let Some(tail) = self.log.get(start..) {
            if !tail.is_empty() {
                let records = tail.to_vec();
                self.net.send(self.me, from, SeqMsg::Retransmit { records });
            }
        }
    }

    /// Send `to` a state snapshot: the latest installed checkpoint (if
    /// any) plus the retained log past it, along with the compaction-
    /// surviving duplicate/failure state and the live set.
    fn send_snapshot(&mut self, to: HostId) {
        // Flush before snapshotting: entries in the open batch have
        // assigned seqs but are not yet in the log, and the snapshot
        // must hand the receiver a contiguous prefix.
        self.flush_batch();
        let (checkpoint, tail) = match &self.checkpoint {
            Some(cp) => {
                // Failover invariant: an installed checkpoint is never
                // older than the compaction watermark.
                debug_assert!(cp.seq >= self.log_base);
                let start = (cp.seq - self.log_base) as usize;
                (Some(cp.clone()), self.log[start..].to_vec())
            }
            None => {
                debug_assert_eq!(self.log_base, 0, "compaction requires a checkpoint");
                (None, self.log.clone())
            }
        };
        let snap = SeqMsg::Snapshot {
            checkpoint,
            retired: self.retired.iter().map(|(h, l)| (*h, *l)).collect(),
            failed: self.failed_recorded.iter().copied().collect(),
            tail,
            live: self.live.iter().copied().collect(),
        };
        self.net.send(self.me, to, snap);
    }

    fn serve_join(&mut self, joiner: HostId, incarnation: u64) {
        // Flush before admitting the joiner to the recipient set, so
        // the open batch is not multicast to a host that has no
        // snapshot yet.
        self.flush_batch();
        self.live.insert(joiner);
        self.recipients.insert(joiner);
        // A Fail parked while we were unsynced must not fire after the
        // host has been re-admitted.
        self.pending_fails.remove(&joiner);
        self.send_snapshot(joiner);
        // A nonce we have not served yet is proof of a fresh incarnation
        // even when the host's Fail record was lost to failover churn
        // (e.g. an election that named an already-dead coordinator):
        // order the Join record — the incarnation boundary that clears
        // the host's duplicate-suppression state — either way. Only a
        // retried JoinReq from the incarnation we *already* served skips
        // the record and just re-sends the snapshot.
        let served = self.join_incarnations.get(&joiner) == Some(&incarnation);
        if self.failed_recorded.contains(&joiner) || !served {
            let rec = Record {
                seq: self.next_seq,
                origin: self.me,
                local: 0,
                body: RecordBody::Join(joiner),
            };
            self.next_seq += 1;
            self.distribute(rec);
        }
        self.join_incarnations.insert(joiner, incarnation);
    }

    /// Coordinator path for a submission: assign the next sequence number
    /// (or answer a duplicate with a retransmission) and distribute,
    /// then emit a checkpoint marker if the interval has elapsed.
    fn coord_submit(&mut self, origin: HostId, local: LocalId, payload: Bytes) {
        self.coord_submit_inner(origin, local, payload);
        self.maybe_mark_checkpoint();
    }

    fn coord_submit_inner(&mut self, origin: HostId, local: LocalId, payload: Bytes) {
        if !self.coord_synced {
            self.buffered_submits.push((origin, local, payload));
            return;
        }
        if let Some(&seq) = self.assigned.get(&(origin, local)) {
            // Duplicate submission. If the record already made it into
            // the log, answer with a retransmission; if it is still
            // sitting in the open batch, the pending flush will deliver
            // it — a second sequence number must not be assigned.
            if origin != self.me {
                if let Some(rec) = self.rec_at(seq).cloned() {
                    self.stats.record_retransmit();
                    self.net
                        .send(self.me, origin, SeqMsg::Retransmit { records: vec![rec] });
                } else if seq <= self.log_base {
                    // Assigned but compacted (the entry outlived a
                    // truncation only transiently): answer with a full
                    // snapshot.
                    self.stats.record_retransmit();
                    self.send_snapshot(origin);
                }
            }
            return;
        }
        if self
            .retired
            .get(&origin)
            .is_some_and(|&newest| local <= newest)
        {
            // Duplicate of a record behind the compaction watermark:
            // its `assigned` entry was pruned and the solo record no
            // longer exists. The origin is far behind — hand it the
            // checkpoint instead of a sequence number.
            if origin != self.me {
                self.stats.record_retransmit();
                self.send_snapshot(origin);
            }
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.assigned.insert((origin, local), seq);
        if !self.batch_cfg.enabled() {
            self.flush_span(origin, local, seq, 1, Duration::ZERO);
            self.distribute(Record {
                seq,
                origin,
                local,
                body: RecordBody::App(payload),
            });
            return;
        }
        let now = Instant::now();
        if self.batch.is_empty() {
            if now.duration_since(self.last_flush) >= self.batch_cfg.window {
                // Idle coordinator: flush solo immediately, so batching
                // adds zero latency to sequential workloads.
                self.last_flush = now;
                self.flush_span(origin, local, seq, 1, Duration::ZERO);
                self.distribute(Record {
                    seq,
                    origin,
                    local,
                    body: RecordBody::App(payload),
                });
                return;
            }
            // A multicast left within the last window — open a batch and
            // let further concurrent submits pile in until the deadline.
            self.batch_first = seq;
            self.batch_opened_at = now;
            self.batch_bytes = payload.len();
            let deadline = self.last_flush + self.batch_cfg.window;
            self.batch_deadline = Some(deadline);
            self.batch.push(BatchEntry {
                origin,
                local,
                payload,
            });
            self.batch_enqueued.push(now);
            self.flush_timer.arm(deadline);
            if self.batch_full() {
                self.flush_batch();
            }
        } else {
            self.batch_bytes += payload.len();
            self.batch.push(BatchEntry {
                origin,
                local,
                payload,
            });
            self.batch_enqueued.push(now);
            if self.batch_full() {
                self.flush_batch();
            }
        }
    }

    /// Whether either size trigger (entries or bytes) says the open
    /// batch must flush now rather than wait out the window.
    fn batch_full(&self) -> bool {
        self.batch.len() >= self.batch_cfg.max_entries
            || (self.batch_cfg.max_bytes > 0 && self.batch_bytes >= self.batch_cfg.max_bytes)
    }

    /// Record a coordinator "flush" span: the instant an entry left the
    /// sequencer as (part of) an ordered multicast. `queued` is the time
    /// the entry spent in the open batch — the batch queueing delay.
    fn flush_span(&self, origin: HostId, local: LocalId, seq: u64, batch: usize, queued: Duration) {
        self.spans.record(
            linda_obs::TraceId::new(origin.0, local),
            "flush",
            self.me.0,
            vec![
                ("seq".into(), seq.to_string()),
                ("batch".into(), batch.to_string()),
                ("queued_us".into(), queued.as_micros().to_string()),
            ],
        );
    }

    /// Multicast the open batch (if any) as one ordered record. A batch
    /// of one collapses to a plain solo `App` record, keeping the wire
    /// format identical to unbatched operation under light load.
    fn flush_batch(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.batch);
        let enqueued = std::mem::take(&mut self.batch_enqueued);
        self.batch_bytes = 0;
        self.batch_deadline = None;
        let now = Instant::now();
        self.last_flush = now;
        self.batch_flush_hist
            .observe(now.duration_since(self.batch_opened_at));
        self.batch_size_hist.observe_seconds(entries.len() as f64);
        for (i, e) in entries.iter().enumerate() {
            let queued = enqueued
                .get(i)
                .map(|t| now.duration_since(*t))
                .unwrap_or(Duration::ZERO);
            self.flush_span(
                e.origin,
                e.local,
                self.batch_first + i as u64,
                entries.len(),
                queued,
            );
        }
        if entries.len() == 1 {
            let e = entries.into_iter().next().expect("len checked");
            self.distribute(Record {
                seq: self.batch_first,
                origin: e.origin,
                local: e.local,
                body: RecordBody::App(e.payload),
            });
        } else {
            self.stats.record_batch(entries.len() as u64);
            self.distribute(Record {
                seq: self.batch_first,
                origin: self.me,
                local: 0,
                body: RecordBody::Batch(entries),
            });
        }
    }

    /// Flusher-thread entry: flush only if the state's own deadline has
    /// actually passed (the timer may have fired for a batch that was
    /// already flushed by the `max_entries` trigger).
    fn flush_batch_due(&mut self) {
        if let Some(d) = self.batch_deadline {
            if Instant::now() >= d {
                self.flush_batch();
                self.maybe_mark_checkpoint();
            }
        }
    }

    /// Multicast an ordered record to all recipients and self-deliver.
    fn distribute(&mut self, rec: Record) {
        self.stats.record_ordered_multicast();
        let me = self.me;
        let dests: Vec<HostId> = self
            .recipients
            .iter()
            .copied()
            .filter(|h| *h != me)
            .collect();
        self.net.multicast(me, &dests, SeqMsg::Ordered(rec.clone()));
        self.accept_record(rec);
    }

    /// Emit an ordered `Checkpoint` marker if at least `every` records
    /// have been assigned since the last one. Only between batches: a
    /// marker inside an open batch would leave a hole in the multicast
    /// stream.
    fn maybe_mark_checkpoint(&mut self) {
        if !self.ckpt_cfg.enabled() || !self.is_coord() || !self.coord_synced {
            return;
        }
        if !self.batch.is_empty() {
            return; // re-checked when the batch flushes
        }
        if self.next_seq - 1 < self.last_marker + self.ckpt_cfg.every {
            return;
        }
        let rec = Record {
            seq: self.next_seq,
            origin: self.me,
            local: 0,
            body: RecordBody::Checkpoint,
        };
        self.next_seq += 1;
        self.last_marker = rec.seq;
        self.distribute(rec);
    }

    /// Adopt snapshot state that must survive log compaction, and jump
    /// over the missing history to `checkpoint.seq` if the image is
    /// ahead of us. The jump abandons all in-flight bookkeeping — any
    /// local submission is indeterminate across the gap — and emits a
    /// synthesized [`Delivery::Restore`] so the application replaces
    /// its state with the image before the tail is applied.
    fn adopt_snapshot(
        &mut self,
        checkpoint: Option<CheckpointImage>,
        retired: Vec<(HostId, LocalId)>,
        failed: Vec<HostId>,
    ) {
        for (h, l) in retired {
            let e = self.retired.entry(h).or_insert(0);
            *e = (*e).max(l);
        }
        self.failed_recorded = failed.into_iter().collect();
        let Some(cp) = checkpoint else { return };
        if cp.seq <= self.last_seq() {
            return; // we already cover the image; the tail alone helps
        }
        self.pending_submits.clear();
        self.ba_removes += self.broadcast_at.len() as u64;
        self.broadcast_at.clear();
        self.nacked_for = None;
        self.buffer = self.buffer.split_off(&(cp.seq + 1));
        self.log.clear();
        self.log_base = cp.seq;
        let _ = self.dtx.send(Delivery::Restore { image: cp.clone() });
        self.checkpoint = Some(cp);
    }

    /// Install the application's state image for the checkpoint marker
    /// at `image.seq`, and (with compaction on) truncate the log behind
    /// it. Truncated `App` records feed the `retired` watermark before
    /// they disappear, and `assigned` entries at or below the watermark
    /// are pruned — duplicates down there are answered by snapshot.
    fn install_checkpoint(&mut self, image: CheckpointImage) {
        debug_assert!(
            image.seq <= self.last_seq(),
            "cannot install a checkpoint past the delivered prefix"
        );
        if self.checkpoint.as_ref().is_some_and(|c| c.seq >= image.seq) {
            return; // stale image (duplicate install)
        }
        let cut = image.seq;
        self.checkpoint = Some(image);
        if !self.ckpt_cfg.compaction || cut <= self.log_base {
            return;
        }
        let keep_from = ((cut - self.log_base) as usize).min(self.log.len());
        for r in &self.log[..keep_from] {
            if matches!(r.body, RecordBody::App(_)) {
                let e = self.retired.entry(r.origin).or_insert(0);
                *e = (*e).max(r.local);
            }
        }
        self.log.drain(..keep_from);
        self.log_base = cut;
        self.assigned.retain(|_, s| *s > cut);
    }
}

/// Handle to one member of a sequencer group. The protocol runs on a
/// dedicated thread; [`SeqMember::broadcast`] may be called from any
/// thread; ordered deliveries arrive on the channel returned by
/// [`SeqMember::deliveries`].
pub struct SeqMember {
    me: HostId,
    net: SeqNet,
    state: Arc<Mutex<State>>,
    deliveries: crossbeam::channel::Receiver<Delivery>,
    stats: Arc<OrderStats>,
    stop: Arc<AtomicBool>,
    obs: Arc<linda_obs::Registry>,
    join_error: Arc<Mutex<Option<String>>>,
    flush_timer: Arc<FlushTimer>,
}

/// Factory/controller for a sequencer group over a simulated network,
/// or for this process's member of a TCP-backed group (see
/// [`SeqGroup::tcp_member`]).
pub struct SeqGroup {
    net: SeqNet,
    universe: Vec<HostId>,
    stats: Arc<OrderStats>,
    batch: BatchConfig,
    ckpt: CheckpointConfig,
    local_base: u64,
}

impl SeqGroup {
    /// Create a group of `n` members, all initially live, host 0 as the
    /// initial coordinator, with the default (enabled) group-commit
    /// configuration and checkpointing off (the bare protocol; layered
    /// runtimes that install checkpoints use [`SeqGroup::new_with`]).
    pub fn new(n: u32, cfg: NetConfig) -> (SeqGroup, Vec<SeqMember>) {
        Self::new_with_batch(n, cfg, BatchConfig::default())
    }

    /// Like [`SeqGroup::new`] with explicit group-commit tuning
    /// (`BatchConfig::disabled()` reproduces the unbatched protocol).
    pub fn new_with_batch(
        n: u32,
        cfg: NetConfig,
        batch: BatchConfig,
    ) -> (SeqGroup, Vec<SeqMember>) {
        Self::new_with(n, cfg, batch, CheckpointConfig::disabled())
    }

    /// Fully explicit constructor: group-commit and checkpoint tuning.
    pub fn new_with(
        n: u32,
        cfg: NetConfig,
        batch: BatchConfig,
        ckpt: CheckpointConfig,
    ) -> (SeqGroup, Vec<SeqMember>) {
        Self::new_with_base(n, cfg, batch, ckpt, 0)
    }

    /// Like [`SeqGroup::new_with`] but with a per-group local-id base:
    /// every member allocates submission ids from `base + 1` upward.
    /// When one runtime layers several groups (sharded tuple spaces), a
    /// distinct base per group keeps `(origin, local)` — and the trace
    /// ids derived from it — globally unique across groups.
    pub fn new_with_base(
        n: u32,
        cfg: NetConfig,
        batch: BatchConfig,
        ckpt: CheckpointConfig,
        local_base: u64,
    ) -> (SeqGroup, Vec<SeqMember>) {
        let (net, rxs) = SimNet::<SeqMsg>::new(n, cfg);
        let universe: Vec<HostId> = (0..n).map(HostId).collect();
        let stats = Arc::new(OrderStats::default());
        let members = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                Self::spawn_member(
                    HostId(i as u32),
                    SeqNet::Sim(net.clone()),
                    &universe,
                    rx,
                    stats.clone(),
                    true,
                    batch,
                    ckpt,
                    local_base,
                )
            })
            .collect();
        (
            SeqGroup {
                net: SeqNet::Sim(net),
                universe,
                stats,
                batch,
                ckpt,
                local_base,
            },
            members,
        )
    }

    /// Spawn this process's member of a TCP-backed group: one shard
    /// lane of a [`crate::TcpMesh`], with the peer processes running
    /// their own members of the same logical group. With
    /// `initially_joined = false` the member boots outside the group
    /// and joins a running cluster through the tick-driven
    /// JoinReq → Snapshot path (heartbeat mode is always on over TCP).
    #[allow(clippy::too_many_arguments)]
    pub fn tcp_member(
        lane: TcpLane,
        universe: Vec<HostId>,
        me: HostId,
        rx: crossbeam::channel::Receiver<NetEvent<SeqMsg>>,
        batch: BatchConfig,
        ckpt: CheckpointConfig,
        local_base: u64,
        initially_joined: bool,
    ) -> (SeqGroup, SeqMember) {
        let stats = Arc::new(OrderStats::default());
        let member = Self::spawn_member(
            me,
            SeqNet::Tcp(lane.clone()),
            &universe,
            rx,
            stats.clone(),
            initially_joined,
            batch,
            ckpt,
            local_base,
        );
        (
            SeqGroup {
                net: SeqNet::Tcp(lane),
                universe,
                stats,
                batch,
                ckpt,
                local_base,
            },
            member,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_member(
        me: HostId,
        net: SeqNet,
        universe: &[HostId],
        rx: crossbeam::channel::Receiver<NetEvent<SeqMsg>>,
        stats: Arc<OrderStats>,
        initially_joined: bool,
        batch: BatchConfig,
        ckpt: CheckpointConfig,
        local_base: u64,
    ) -> SeqMember {
        let (dtx, drx) = crossbeam::channel::unbounded();
        let live: BTreeSet<HostId> = universe.iter().copied().collect();
        let obs = Arc::new(linda_obs::Registry::new());
        let order_hist = obs.histogram(
            "ftlinda_ags_order_seconds",
            "Broadcast to total-order self-delivery latency",
        );
        let batch_size_hist = obs.histogram_with(
            "ftlinda_batch_size",
            "Submits coalesced per ordered multicast",
            &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
        );
        let batch_flush_hist =
            obs.histogram("ftlinda_batch_flush_seconds", "Batch open-to-flush latency");
        let rtt_hist = obs.histogram_family(
            "ftlinda_net_rtt_seconds",
            "Wire round-trip latency per peer, from the heartbeat RTT piggyback",
        );
        obs.gauge_merged(
            "ftlinda_batch_max_bytes",
            "Byte threshold that force-flushes an open batch (0 = no byte trigger)",
            linda_obs::GaugeMerge::Max,
        )
        .set(if batch.enabled() {
            batch.max_bytes as i64
        } else {
            0
        });
        let flush_timer = Arc::new(FlushTimer::new());
        let hb = net.heartbeats();
        let now = Instant::now();
        let state = Arc::new(Mutex::new(State {
            me,
            universe: universe.to_vec(),
            live: live.clone(),
            coord: universe[0],
            joined: initially_joined,
            net: net.clone(),
            dtx,
            stats: stats.clone(),
            order_hist,
            broadcast_at: HashMap::new(),
            spans: obs.spans_handle(),
            events: obs.events_handle(),
            log: Vec::new(),
            log_base: 0,
            checkpoint: None,
            retired: HashMap::new(),
            ckpt_cfg: ckpt,
            buffer: BTreeMap::new(),
            pending_submits: BTreeMap::new(),
            next_local: local_base + 1,
            nacked_for: None,
            failed_recorded: BTreeSet::new(),
            ba_inserts: 0,
            ba_removes: 0,
            coord_synced: initially_joined && me == universe[0],
            next_seq: 1,
            assigned: HashMap::new(),
            last_marker: 0,
            recipients: live,
            sync_waiting: BTreeSet::new(),
            sync_records: BTreeMap::new(),
            sync_checkpoint: None,
            sync_retired: Vec::new(),
            sync_failed: Vec::new(),
            buffered_submits: Vec::new(),
            buffered_nacks: Vec::new(),
            pending_fails: BTreeSet::new(),
            pending_joins: Vec::new(),
            batch_cfg: batch,
            batch: Vec::new(),
            batch_enqueued: Vec::new(),
            batch_bytes: 0,
            batch_first: 0,
            batch_opened_at: now,
            batch_deadline: None,
            // Start "long idle" so the very first submit flushes solo.
            last_flush: now.checked_sub(batch.window).unwrap_or(now),
            flush_timer: flush_timer.clone(),
            batch_size_hist,
            batch_flush_hist,
            hb,
            last_heard: universe
                .iter()
                .map(|h| (*h, std::time::Instant::now()))
                .collect(),
            last_ping: std::time::Instant::now(),
            ping_rx: HashMap::new(),
            rtt_hist,
            next_join_at: std::time::Instant::now(),
            join_backoff: State::JOIN_BACKOFF_MIN,
            next_sync_retry: std::time::Instant::now(),
            incarnation: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(1),
            join_incarnations: BTreeMap::new(),
            fresh_incarnation: !initially_joined,
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let member = SeqMember {
            me,
            net: net.clone(),
            state: state.clone(),
            deliveries: drx,
            stats,
            stop: stop.clone(),
            obs,
            join_error: Arc::new(Mutex::new(None)),
            flush_timer: flush_timer.clone(),
        };
        if batch.enabled() {
            // Dedicated flusher: the member thread can sit in a long
            // `recv_timeout`, and the coordinator path may run on a
            // client thread, so neither can meet a sub-millisecond batch
            // deadline. The flusher sleeps on the timer (timer lock
            // only) and takes the state lock only after releasing it.
            let flusher_state = state.clone();
            let flusher_timer = flush_timer.clone();
            std::thread::Builder::new()
                .name(format!("flush-{me}"))
                .spawn(move || {
                    while flusher_timer.wait_due() {
                        flusher_state.lock().flush_batch_due();
                    }
                })
                .expect("spawn flusher");
        }
        let tick = hb
            .map(|hb| (hb.period / 2).max(Duration::from_millis(1)))
            .unwrap_or(Duration::from_millis(50));
        std::thread::Builder::new()
            .name(format!("seq-{me}"))
            .spawn(move || {
                loop {
                    if stop.load(AtomicOrdering::Relaxed) {
                        break;
                    }
                    match rx.recv_timeout(tick) {
                        Ok(ev) => {
                            let mut st = state.lock();
                            st.on_event(ev);
                            st.heartbeat_tick();
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            state.lock().heartbeat_tick();
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                    }
                }
                flush_timer.close();
            })
            .expect("spawn member");
        member
    }

    /// Crash a member (fail-silent).
    pub fn crash(&self, host: HostId) {
        self.net.crash(host);
    }

    /// Restart a crashed member: returns a fresh handle that rejoins the
    /// group and replays the ordered log (all deliveries are re-emitted
    /// to its application from sequence 1).
    ///
    /// Rejoining retries `JoinReq` with capped exponential backoff
    /// (5 ms doubling to 160 ms) and gives up after
    /// [`SeqGroup::MAX_JOIN_ATTEMPTS`] attempts — e.g. when every other
    /// member is down, so no coordinator can ever answer. A give-up is
    /// surfaced through [`SeqMember::rejoin_error`] and as a
    /// `rejoin_failed` event in the member's observability registry.
    pub fn restart(&self, host: HostId) -> SeqMember {
        let rx = self
            .net
            .restart(host)
            .expect("restart(): in-process restart is a Sim-transport facility; a TCP member rejoins by relaunching its process");
        let member = Self::spawn_member(
            host,
            self.net.clone(),
            &self.universe,
            rx,
            self.stats.clone(),
            false,
            self.batch,
            self.ckpt,
            self.local_base,
        );
        let state = member.state.clone();
        let net = member.net.clone();
        let stop = member.stop.clone();
        let me = member.me;
        let join_error = member.join_error.clone();
        let obs = member.obs.clone();
        let attempts_total = obs.counter(
            "ftlinda_rejoin_attempts_total",
            "JoinReq rounds sent by a restarted member",
        );
        std::thread::Builder::new()
            .name(format!("join-{me}"))
            .spawn(move || {
                let mut backoff = Duration::from_millis(5);
                let cap = Duration::from_millis(160);
                let incarnation = state.lock().incarnation;
                for _ in 0..Self::MAX_JOIN_ATTEMPTS {
                    {
                        let st = state.lock();
                        if st.joined || stop.load(AtomicOrdering::Relaxed) {
                            return;
                        }
                    }
                    attempts_total.inc();
                    let peers: Vec<HostId> = state
                        .lock()
                        .universe
                        .iter()
                        .copied()
                        .filter(|h| *h != me)
                        .collect();
                    for p in peers {
                        net.send(me, p, SeqMsg::JoinReq { incarnation });
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(cap);
                }
                if state.lock().joined || stop.load(AtomicOrdering::Relaxed) {
                    return;
                }
                let msg = format!(
                    "{me} failed to rejoin after {} JoinReq attempts (no coordinator answered)",
                    Self::MAX_JOIN_ATTEMPTS
                );
                *join_error.lock() = Some(msg);
                obs.events().emit(linda_obs::Event::new(
                    "rejoin_failed",
                    vec![
                        ("host".into(), me.to_string()),
                        ("attempts".into(), Self::MAX_JOIN_ATTEMPTS.to_string()),
                    ],
                ));
            })
            .expect("spawn join retry");
        member
    }

    /// JoinReq rounds a restarted member sends before declaring the
    /// rejoin failed (~2 s wall clock with the capped backoff).
    pub const MAX_JOIN_ATTEMPTS: u32 = 16;

    /// The simulated network (for stats and direct fault injection).
    ///
    /// # Panics
    /// On the TCP transport, which has no simulation controls; use
    /// [`SeqGroup::transport`] for the transport-agnostic surface.
    pub fn net(&self) -> &SimNet<SeqMsg> {
        self.net
            .sim()
            .expect("net(): simulation accessor called on the TCP transport")
    }

    /// The transport this group's members send through (works for both
    /// Sim and TCP; for live-host views and byte counters).
    pub fn transport(&self) -> &SeqNet {
        &self.net
    }

    /// Ordering-layer statistics.
    pub fn stats(&self) -> &OrderStats {
        &self.stats
    }

    /// Owned handle to the ordering-layer statistics, for background
    /// threads (e.g. the cluster's flight-recorder monitor) that outlive
    /// a borrow of the group.
    pub fn stats_handle(&self) -> Arc<OrderStats> {
        self.stats.clone()
    }

    /// The group-commit configuration members run with.
    pub fn batch_config(&self) -> BatchConfig {
        self.batch
    }

    /// The checkpoint/compaction configuration members run with.
    pub fn checkpoint_config(&self) -> CheckpointConfig {
        self.ckpt
    }

    /// Tear down the network router.
    pub fn shutdown(&self) {
        self.net.shutdown();
    }
}

impl SeqMember {
    /// This member's host id.
    pub fn host(&self) -> HostId {
        self.me
    }

    /// Submit a payload for totally-ordered delivery to every member.
    /// Returns the origin-local id; the corresponding [`Delivery::App`]
    /// (`origin == self`, same `local`) signals completion.
    pub fn broadcast(&self, payload: Bytes) -> LocalId {
        self.stats.record_broadcast();
        let mut st = self.state.lock();
        let local = st.next_local;
        st.next_local += 1;
        st.pending_submits.insert(local, payload.clone());
        st.broadcast_at.insert(local, Instant::now());
        st.ba_inserts += 1;
        if st.is_coord() {
            let me = st.me;
            st.coord_submit(me, local, payload);
        } else {
            let (me, coord) = (st.me, st.coord);
            drop(st);
            self.net.send(me, coord, SeqMsg::Submit { local, payload });
        }
        local
    }

    /// The ordered delivery stream.
    pub fn deliveries(&self) -> &crossbeam::channel::Receiver<Delivery> {
        &self.deliveries
    }

    /// Stop this member's protocol thread (teardown).
    pub fn stop(&self) {
        self.stop.store(true, AtomicOrdering::Relaxed);
        self.flush_timer.close();
    }

    /// Number of records this member has delivered (or skipped past via a
    /// checkpoint restore): the highest contiguous sequence number seen.
    pub fn delivered_count(&self) -> u64 {
        self.state.lock().last_seq()
    }

    /// Snapshot of the member's *retained* log (tests/debugging): the
    /// records with sequence numbers `log_base()+1 ..= delivered_count()`.
    /// With compaction off this is the full log from seq 1.
    pub fn log(&self) -> Vec<Record> {
        self.state.lock().log.clone()
    }

    /// Hand a state-machine checkpoint image back to the ordering layer.
    ///
    /// The application calls this after snapshotting its state machine at
    /// a [`Delivery::Checkpoint`] boundary. The member records the image
    /// (to serve joiners and laggards in O(state) instead of O(history))
    /// and, if compaction is enabled, truncates its retained log up to
    /// `image.seq`, advancing [`SeqMember::log_base`].
    pub fn install_checkpoint(&self, image: CheckpointImage) {
        self.state.lock().install_checkpoint(image);
    }

    /// The compaction watermark: records with `seq <= log_base()` have
    /// been truncated from the retained log and are only reachable via
    /// the installed checkpoint.
    pub fn log_base(&self) -> u64 {
        self.state.lock().log_base
    }

    /// Sequence number of the most recently installed checkpoint image,
    /// or `None` if the application never handed one back.
    pub fn checkpoint_seq(&self) -> Option<u64> {
        self.state.lock().checkpoint.as_ref().map(|c| c.seq)
    }

    /// Number of records currently held in the retained log (memory
    /// bound under compaction; tests assert this stays flat).
    pub fn retained_log_len(&self) -> usize {
        self.state.lock().log.len()
    }

    /// Number of out-of-order records parked in the reorder buffer
    /// (tests assert it drains to zero once the stream is contiguous).
    pub fn buffered_len(&self) -> usize {
        self.state.lock().buffer.len()
    }

    /// This member's observability registry: the order-stage latency
    /// histogram (`ftlinda_ags_order_seconds`), rejoin counters, and the
    /// structured-event sink. The FT-Linda runtime layers its own
    /// instruments into the same registry.
    pub fn obs(&self) -> Arc<linda_obs::Registry> {
        self.obs.clone()
    }

    /// If this member was created by [`SeqGroup::restart`] and its rejoin
    /// retries were exhausted without a coordinator answering, the error
    /// description. `None` while retrying or after a successful rejoin.
    pub fn rejoin_error(&self) -> Option<String> {
        self.join_error.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::time::Instant;

    fn drain_until<F: FnMut(&Delivery) -> bool>(
        m: &SeqMember,
        mut done: F,
        within: Duration,
    ) -> Vec<Delivery> {
        let deadline = Instant::now() + within;
        let mut out = Vec::new();
        while Instant::now() < deadline {
            match m.deliveries().recv_timeout(Duration::from_millis(20)) {
                Ok(d) => {
                    let stop = done(&d);
                    out.push(d);
                    if stop {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        out
    }

    fn collect_n(m: &SeqMember, n: usize, within: Duration) -> Vec<Delivery> {
        let mut count = 0;
        drain_until(
            m,
            |_| {
                count += 1;
                count >= n
            },
            within,
        )
    }

    /// Poll until both members report identical logs (condition-based
    /// replacement for "sleep and hope they've converged").
    fn assert_logs_converge(a: &SeqMember, b: &SeqMember, within: Duration) {
        let deadline = Instant::now() + within;
        loop {
            let (la, lb) = (a.log(), b.log());
            if la == lb {
                return;
            }
            if Instant::now() >= deadline {
                assert_eq!(la, lb, "logs did not converge within {within:?}");
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Poll until the physical message counter stops moving (three
    /// consecutive identical samples), then return the final snapshot.
    fn quiesced_msgs(g: &SeqGroup, within: Duration) -> u64 {
        let deadline = Instant::now() + within;
        let mut last = g.net().stats().snapshot().0;
        let mut stable = 0;
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
            let now = g.net().stats().snapshot().0;
            if now == last {
                stable += 1;
                if stable >= 3 {
                    break;
                }
            } else {
                stable = 0;
                last = now;
            }
        }
        last
    }

    #[test]
    fn single_member_self_order() {
        let (g, ms) = SeqGroup::new(1, NetConfig::instant());
        let local = ms[0].broadcast(Bytes::from_static(b"hello"));
        let ds = collect_n(&ms[0], 1, Duration::from_secs(2));
        assert_eq!(ds.len(), 1);
        match &ds[0] {
            Delivery::App {
                seq,
                origin,
                local: l,
                payload,
            } => {
                assert_eq!(*seq, 1);
                assert_eq!(*origin, HostId(0));
                assert_eq!(*l, local);
                assert_eq!(&payload[..], b"hello");
            }
            other => panic!("unexpected {other:?}"),
        }
        g.shutdown();
    }

    #[test]
    fn three_members_same_total_order() {
        let (g, ms) = SeqGroup::new(3, NetConfig::instant());
        let per = 20;
        for i in 0..per {
            for m in &ms {
                m.broadcast(Bytes::from(format!("{}-{}", m.host(), i)));
            }
        }
        let total = per * 3;
        let logs: Vec<Vec<Delivery>> = ms
            .iter()
            .map(|m| collect_n(m, total, Duration::from_secs(5)))
            .collect();
        for log in &logs {
            assert_eq!(log.len(), total, "every member delivers everything");
        }
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[1], logs[2]);
        for (i, d) in logs[0].iter().enumerate() {
            assert_eq!(d.seq(), (i + 1) as u64);
        }
        g.shutdown();
    }

    #[test]
    fn concurrent_broadcasters_exactly_once() {
        let (g, ms) = SeqGroup::new(3, NetConfig::lan(Duration::from_micros(100)));
        let ms = Arc::new(ms);
        let per = 50;
        let threads: Vec<_> = (0..3)
            .map(|i| {
                let ms = ms.clone();
                std::thread::spawn(move || {
                    for k in 0..per {
                        ms[i].broadcast(Bytes::from(format!("{i}:{k}")));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total = per * 3;
        let log0 = collect_n(&ms[0], total, Duration::from_secs(10));
        assert_eq!(log0.len(), total);
        let mut seen = HashSet::new();
        for d in &log0 {
            if let Delivery::App { payload, .. } = d {
                assert!(seen.insert(payload.clone()), "duplicate delivery");
            }
        }
        assert_eq!(seen.len(), total);
        g.shutdown();
    }

    #[test]
    fn member_crash_produces_one_fail_record() {
        let (g, ms) = SeqGroup::new(3, NetConfig::instant());
        ms[0].broadcast(Bytes::from_static(b"a"));
        let _ = collect_n(&ms[0], 1, Duration::from_secs(2));
        g.crash(HostId(2));
        let ds = drain_until(
            &ms[0],
            |d| matches!(d, Delivery::Fail { host, .. } if *host == HostId(2)),
            Duration::from_secs(2),
        );
        let fails = ds
            .iter()
            .filter(|d| matches!(d, Delivery::Fail { .. }))
            .count();
        assert_eq!(fails, 1);
        let ds1 = drain_until(
            &ms[1],
            |d| matches!(d, Delivery::Fail { .. }),
            Duration::from_secs(2),
        );
        assert_eq!(
            ds.iter()
                .find(|d| matches!(d, Delivery::Fail { .. }))
                .map(Delivery::seq),
            ds1.iter()
                .find(|d| matches!(d, Delivery::Fail { .. }))
                .map(Delivery::seq)
        );
        g.shutdown();
    }

    #[test]
    fn coordinator_failover_preserves_order_and_liveness() {
        let (g, ms) = SeqGroup::new(3, NetConfig::instant());
        for i in 0..10 {
            ms[1].broadcast(Bytes::from(format!("pre{i}")));
        }
        let _ = collect_n(&ms[1], 10, Duration::from_secs(3));
        let _ = collect_n(&ms[2], 10, Duration::from_secs(3));
        g.crash(HostId(0)); // the coordinator
        let _ = drain_until(
            &ms[1],
            |d| matches!(d, Delivery::Fail { host, .. } if *host == HostId(0)),
            Duration::from_secs(3),
        );
        for i in 0..10 {
            ms[2].broadcast(Bytes::from(format!("post{i}")));
        }
        let d1 = collect_n(&ms[1], 10, Duration::from_secs(3));
        let apps1: Vec<_> = d1
            .iter()
            .filter(|d| matches!(d, Delivery::App { .. }))
            .collect();
        assert_eq!(apps1.len(), 10);
        assert_logs_converge(&ms[1], &ms[2], Duration::from_secs(3));
        g.shutdown();
    }

    #[test]
    fn inflight_submission_to_dead_coordinator_is_not_lost() {
        let cfg = NetConfig {
            latency: Duration::from_millis(5),
            detect_delay: Duration::from_millis(2),
            ..NetConfig::default()
        };
        let (g, ms) = SeqGroup::new(3, cfg);
        ms[1].broadcast(Bytes::from_static(b"risky"));
        g.crash(HostId(0));
        let ds = drain_until(
            &ms[2],
            |d| matches!(d, Delivery::App { payload, .. } if &payload[..] == b"risky"),
            Duration::from_secs(3),
        );
        assert!(
            ds.iter()
                .any(|d| matches!(d, Delivery::App { payload, .. } if &payload[..] == b"risky")),
            "submission lost after coordinator crash"
        );
        g.shutdown();
    }

    #[test]
    fn double_failover() {
        let (g, ms) = SeqGroup::new(4, NetConfig::instant());
        ms[3].broadcast(Bytes::from_static(b"a"));
        let _ = collect_n(&ms[3], 1, Duration::from_secs(2));
        g.crash(HostId(0));
        let _ = drain_until(
            &ms[3],
            |d| matches!(d, Delivery::Fail { host, .. } if *host == HostId(0)),
            Duration::from_secs(3),
        );
        g.crash(HostId(1));
        let _ = drain_until(
            &ms[3],
            |d| matches!(d, Delivery::Fail { host, .. } if *host == HostId(1)),
            Duration::from_secs(3),
        );
        ms[3].broadcast(Bytes::from_static(b"b"));
        let ds = drain_until(
            &ms[2],
            |d| matches!(d, Delivery::App { payload, .. } if &payload[..] == b"b"),
            Duration::from_secs(3),
        );
        assert!(ds
            .iter()
            .any(|d| matches!(d, Delivery::App { payload, .. } if &payload[..] == b"b")));
        assert_logs_converge(&ms[2], &ms[3], Duration::from_secs(3));
        g.shutdown();
    }

    #[test]
    fn restart_rejoins_and_replays_full_log() {
        let (g, ms) = SeqGroup::new(3, NetConfig::instant());
        for i in 0..5 {
            ms[0].broadcast(Bytes::from(format!("x{i}")));
        }
        let _ = collect_n(&ms[1], 5, Duration::from_secs(3));
        g.crash(HostId(2));
        let _ = drain_until(
            &ms[1],
            |d| matches!(d, Delivery::Fail { host, .. } if *host == HostId(2)),
            Duration::from_secs(3),
        );
        let m2 = g.restart(HostId(2));
        let ds = drain_until(
            &m2,
            |d| matches!(d, Delivery::Join { host, .. } if *host == HostId(2)),
            Duration::from_secs(5),
        );
        let apps = ds
            .iter()
            .filter(|d| matches!(d, Delivery::App { .. }))
            .count();
        assert_eq!(apps, 5, "joiner must replay all app records");
        assert!(ds
            .iter()
            .any(|d| matches!(d, Delivery::Fail { host, .. } if *host == HostId(2))));
        m2.broadcast(Bytes::from_static(b"back"));
        let ds2 = drain_until(
            &m2,
            |d| matches!(d, Delivery::App { payload, .. } if &payload[..] == b"back"),
            Duration::from_secs(3),
        );
        assert!(!ds2.is_empty());
        assert_logs_converge(&ms[0], &m2, Duration::from_secs(3));
        g.shutdown();
    }

    #[test]
    fn message_cost_is_n_messages_per_broadcast() {
        // 1 Submit + (n-1) Ordered per broadcast from a non-coordinator;
        // coordinator broadcasts cost n-1. This is the "single multicast
        // message per AGS" accounting baseline for E9.
        let (g, ms) = SeqGroup::new(4, NetConfig::instant());
        g.net().stats().reset();
        ms[1].broadcast(Bytes::from_static(b"m"));
        let _ = collect_n(&ms[1], 1, Duration::from_secs(2));
        let msgs = quiesced_msgs(&g, Duration::from_secs(2));
        assert_eq!(msgs, 4, "1 submit + 3 ordered");
        g.net().stats().reset();
        ms[0].broadcast(Bytes::from_static(b"m"));
        let _ = collect_n(&ms[0], 1, Duration::from_secs(2));
        let msgs = quiesced_msgs(&g, Duration::from_secs(2));
        assert_eq!(msgs, 3, "coordinator pays only the fan-out");
        g.shutdown();
    }

    #[test]
    fn concurrent_submits_coalesce_into_batches() {
        let batch = BatchConfig {
            window: Duration::from_millis(5),
            max_entries: 64,
            ..BatchConfig::default()
        };
        let (g, ms) = SeqGroup::new_with_batch(3, NetConfig::instant(), batch);
        let ms = Arc::new(ms);
        let per = 100;
        let threads: Vec<_> = (0..3)
            .map(|i| {
                let ms = ms.clone();
                std::thread::spawn(move || {
                    for k in 0..per {
                        ms[i].broadcast(Bytes::from(format!("{i}:{k}")));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total = per * 3;
        let log0 = collect_n(&ms[0], total, Duration::from_secs(10));
        assert_eq!(log0.len(), total, "every submit delivered");
        let mut seen = HashSet::new();
        for (i, d) in log0.iter().enumerate() {
            assert_eq!(d.seq(), (i + 1) as u64, "contiguous total order");
            if let Delivery::App { payload, .. } = d {
                assert!(seen.insert(payload.clone()), "duplicate delivery");
            }
        }
        assert_eq!(seen.len(), total);
        assert!(
            g.stats().ordered_multicasts() < g.stats().broadcasts(),
            "group commit must amortize: {} multicasts for {} broadcasts",
            g.stats().ordered_multicasts(),
            g.stats().broadcasts()
        );
        assert!(g.stats().batches() >= 1, "at least one multi-entry batch");
        assert_logs_converge(&ms[0], &ms[1], Duration::from_secs(3));
        assert_logs_converge(&ms[1], &ms[2], Duration::from_secs(3));
        g.shutdown();
    }

    #[test]
    fn disabled_batching_matches_classic_message_cost() {
        let (g, ms) = SeqGroup::new_with_batch(4, NetConfig::instant(), BatchConfig::disabled());
        g.net().stats().reset();
        ms[1].broadcast(Bytes::from_static(b"m"));
        let _ = collect_n(&ms[1], 1, Duration::from_secs(2));
        assert_eq!(quiesced_msgs(&g, Duration::from_secs(2)), 4);
        g.net().stats().reset();
        ms[0].broadcast(Bytes::from_static(b"m"));
        let _ = collect_n(&ms[0], 1, Duration::from_secs(2));
        assert_eq!(quiesced_msgs(&g, Duration::from_secs(2)), 3);
        assert_eq!(g.stats().ordered_multicasts(), g.stats().broadcasts());
        assert_eq!(g.stats().batches(), 0, "never coalesces when disabled");
        g.shutdown();
    }

    /// Liveness of the deadline flusher: rapid submits that coalesce must
    /// still deliver without any further traffic to trigger a flush.
    #[test]
    fn open_batch_flushes_on_deadline() {
        let batch = BatchConfig {
            window: Duration::from_millis(5),
            max_entries: 1024,
            ..BatchConfig::default()
        };
        let (g, ms) = SeqGroup::new_with_batch(2, NetConfig::instant(), batch);
        for i in 0..10 {
            ms[1].broadcast(Bytes::from(format!("{i}")));
        }
        let ds = collect_n(&ms[1], 10, Duration::from_secs(5));
        assert_eq!(ds.len(), 10, "deadline flush must drain the batch");
        for (i, d) in ds.iter().enumerate() {
            assert_eq!(d.seq(), (i + 1) as u64);
        }
        g.shutdown();
    }

    /// The byte-size trigger: a long window and a huge entry cap, but a
    /// small byte threshold, must still flush as soon as the coalesced
    /// payloads cross the threshold — no waiting out the window.
    #[test]
    fn open_batch_flushes_on_byte_threshold() {
        let batch = BatchConfig {
            window: Duration::from_secs(5),
            max_entries: 1024,
            max_bytes: 4 * 1024,
        };
        let (g, ms) = SeqGroup::new_with_batch(2, NetConfig::instant(), batch);
        let payload = Bytes::from(vec![7u8; 1024]);
        // First submit flushes solo (idle); the next four coalesce and
        // their 4 KiB crosses the threshold well before the 5 s window.
        let t0 = Instant::now();
        for _ in 0..5 {
            ms[1].broadcast(payload.clone());
        }
        let ds = collect_n(&ms[1], 5, Duration::from_secs(3));
        assert_eq!(ds.len(), 5, "byte trigger must flush the batch");
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "flush must not wait for the window deadline"
        );
        for (i, d) in ds.iter().enumerate() {
            assert_eq!(d.seq(), (i + 1) as u64);
        }
        g.shutdown();
    }

    /// Batching on: the coordinator records a "flush" span and every
    /// member a "deliver" span for each entry, tagged with the batch
    /// size and queueing delay.
    #[test]
    fn spans_cover_flush_and_deliver() {
        let (g, ms) = SeqGroup::new_with_batch(
            2,
            NetConfig::instant(),
            BatchConfig {
                window: Duration::from_millis(2),
                ..BatchConfig::default()
            },
        );
        let mut locals = Vec::new();
        for i in 0..8 {
            locals.push((HostId(1), ms[1].broadcast(Bytes::from(format!("{i}")))));
        }
        let _ = collect_n(&ms[1], 8, Duration::from_secs(5));
        // Wait for member 1's deliveries to also land in member 0's log.
        assert_logs_converge(&ms[0], &ms[1], Duration::from_secs(3));
        for (origin, local) in locals {
            let id = linda_obs::TraceId::new(origin.0, local);
            let flush = ms[0].obs().spans().spans_of(id);
            let flush: Vec<_> = flush.iter().filter(|s| s.stage == "flush").collect();
            assert_eq!(flush.len(), 1, "exactly one flush span at the coordinator");
            assert!(flush[0].field("queued_us").is_some());
            assert!(flush[0].field("batch").is_some());
            for m in &ms {
                let deliver = m
                    .obs()
                    .spans()
                    .spans_of(id)
                    .into_iter()
                    .filter(|s| s.stage == "deliver")
                    .count();
                assert_eq!(deliver, 1, "one deliver span per member for {id}");
            }
        }
        g.shutdown();
    }

    /// Coordinator crash: surviving members emit a structured
    /// `coordinator_failover` event naming old and new coordinators.
    #[test]
    fn failover_emits_event() {
        let (g, ms) = SeqGroup::new(3, NetConfig::instant());
        ms[1].broadcast(Bytes::from_static(b"a"));
        let _ = collect_n(&ms[1], 1, Duration::from_secs(2));
        g.crash(HostId(0));
        let _ = drain_until(
            &ms[1],
            |d| matches!(d, Delivery::Fail { host, .. } if *host == HostId(0)),
            Duration::from_secs(3),
        );
        let evs = ms[1].obs().events().recent_of("coordinator_failover");
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].field("failed"), Some("host0"));
        assert_eq!(evs[0].field("new_coord"), Some("host1"));
        g.shutdown();
    }

    /// A view change forces the open batch out first, so the Fail record
    /// lands after the batched entries in the total order.
    #[test]
    fn view_change_flushes_open_batch_first() {
        let batch = BatchConfig {
            window: Duration::from_millis(500),
            max_entries: 1024,
            ..BatchConfig::default()
        };
        let (g, ms) = SeqGroup::new_with_batch(3, NetConfig::instant(), batch);
        ms[1].broadcast(Bytes::from_static(b"a")); // solo (idle flush)
        ms[1].broadcast(Bytes::from_static(b"b")); // opens a batch
        ms[1].broadcast(Bytes::from_static(b"c")); // joins the batch
        std::thread::sleep(Duration::from_millis(50));
        g.crash(HostId(2));
        let ds = collect_n(&ms[0], 4, Duration::from_secs(5));
        assert_eq!(ds.len(), 4);
        assert!(matches!(&ds[0], Delivery::App { payload, .. } if &payload[..] == b"a"));
        assert!(matches!(&ds[1], Delivery::App { payload, .. } if &payload[..] == b"b"));
        assert!(matches!(&ds[2], Delivery::App { payload, .. } if &payload[..] == b"c"));
        assert!(
            matches!(&ds[3], Delivery::Fail { host, seq } if *host == HostId(2) && *seq == 4),
            "Fail must follow the flushed batch, got {:?}",
            ds[3]
        );
        assert_logs_converge(&ms[0], &ms[1], Duration::from_secs(3));
        g.shutdown();
    }

    #[test]
    fn latency_network_converges() {
        let cfg = NetConfig::lan(Duration::from_micros(500));
        let (g, ms) = SeqGroup::new(3, cfg);
        for i in 0..30 {
            ms[(i % 3) as usize].broadcast(Bytes::from(format!("{i}")));
        }
        for m in ms.iter() {
            let ds = collect_n(m, 30, Duration::from_secs(10));
            assert_eq!(ds.len(), 30);
        }
        assert_eq!(ms[0].log(), ms[1].log());
        assert_eq!(ms[1].log(), ms[2].log());
        g.shutdown();
    }

    #[test]
    fn delivered_count_tracks_log() {
        let (g, ms) = SeqGroup::new(2, NetConfig::instant());
        ms[0].broadcast(Bytes::from_static(b"1"));
        let _ = collect_n(&ms[0], 1, Duration::from_secs(2));
        assert_eq!(ms[0].delivered_count(), 1);
        g.shutdown();
    }

    /// Like `drain_until`, but stands in for the application: whenever a
    /// `Checkpoint` boundary is delivered, hand a synthetic state image
    /// back to the member so compaction can run.
    fn drain_installing<F: FnMut(&Delivery) -> bool>(
        m: &SeqMember,
        mut done: F,
        within: Duration,
    ) -> Vec<Delivery> {
        let deadline = Instant::now() + within;
        let mut out = Vec::new();
        while Instant::now() < deadline {
            match m.deliveries().recv_timeout(Duration::from_millis(20)) {
                Ok(d) => {
                    if let Delivery::Checkpoint { seq } = d {
                        m.install_checkpoint(CheckpointImage {
                            seq,
                            digest: 0,
                            bytes: Bytes::from_static(b"state-image"),
                        });
                    }
                    let stop = done(&d);
                    out.push(d);
                    if stop {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        out
    }

    fn drain_apps_installing(m: &SeqMember, apps: usize, within: Duration) -> Vec<Delivery> {
        let mut seen = 0;
        let mut ds = drain_installing(
            m,
            |d| {
                if matches!(d, Delivery::App { .. }) {
                    seen += 1;
                }
                seen >= apps
            },
            within,
        );
        // Grace drain: pick up (and install) any trailing markers.
        ds.extend(drain_installing(m, |_| false, Duration::from_millis(100)));
        ds
    }

    #[test]
    fn compaction_bounds_retained_log() {
        let ckpt = CheckpointConfig {
            every: 4,
            compaction: true,
        };
        let (g, ms) = SeqGroup::new_with(2, NetConfig::instant(), BatchConfig::disabled(), ckpt);
        let total = 40;
        for i in 0..total {
            ms[0].broadcast(Bytes::from(format!("x{i}")));
        }
        for m in &ms {
            let ds = drain_apps_installing(m, total, Duration::from_secs(5));
            assert!(
                ds.iter().any(|d| matches!(d, Delivery::Checkpoint { .. })),
                "coordinator must emit ordered checkpoint markers"
            );
            assert!(
                m.log_base() >= 40,
                "compaction watermark must advance (log_base = {})",
                m.log_base()
            );
            assert!(
                m.retained_log_len() <= 2 * ckpt.every as usize,
                "retained log must stay bounded, got {} records",
                m.retained_log_len()
            );
        }
        g.shutdown();
    }

    #[test]
    fn rejoin_ships_checkpoint_and_tail_not_history() {
        let ckpt = CheckpointConfig {
            every: 4,
            compaction: true,
        };
        let (g, ms) = SeqGroup::new_with(3, NetConfig::instant(), BatchConfig::disabled(), ckpt);
        g.crash(HostId(2));
        let _ = drain_installing(
            &ms[0],
            |d| matches!(d, Delivery::Fail { host, .. } if *host == HostId(2)),
            Duration::from_secs(3),
        );
        let total = 20;
        for i in 0..total {
            ms[0].broadcast(Bytes::from(format!("x{i}")));
        }
        let _ = drain_apps_installing(&ms[0], total, Duration::from_secs(5));
        let cp = ms[0]
            .checkpoint_seq()
            .expect("coordinator must hold a checkpoint");
        assert!(cp >= total as u64, "checkpoint must cover the history");

        let m2 = g.restart(HostId(2));
        let ds = drain_until(
            &m2,
            |d| matches!(d, Delivery::Join { host, .. } if *host == HostId(2)),
            Duration::from_secs(5),
        );
        assert!(
            matches!(&ds[0], Delivery::Restore { image } if image.seq == cp),
            "rejoin must start with the coordinator's checkpoint, got {:?}",
            ds.first()
        );
        let replayed_apps = ds
            .iter()
            .filter(|d| matches!(d, Delivery::App { .. }))
            .count();
        assert!(
            replayed_apps < total,
            "joiner must replay only the tail past the checkpoint, replayed {replayed_apps}"
        );
        assert_eq!(m2.log_base(), cp, "joiner adopts the watermark");

        // Liveness after a checkpointed rejoin.
        m2.broadcast(Bytes::from_static(b"back"));
        let ds2 = drain_until(
            &m2,
            |d| matches!(d, Delivery::App { payload, .. } if &payload[..] == b"back"),
            Duration::from_secs(3),
        );
        assert!(!ds2.is_empty());
        g.shutdown();
    }

    #[test]
    fn nack_below_watermark_answered_with_snapshot() {
        let ckpt = CheckpointConfig {
            every: 4,
            compaction: true,
        };
        let (g, ms) = SeqGroup::new_with(2, NetConfig::instant(), BatchConfig::disabled(), ckpt);
        let total = 12;
        for i in 0..total {
            ms[0].broadcast(Bytes::from(format!("x{i}")));
        }
        // Only the coordinator compacts; member 1 drains without installing.
        let _ = drain_apps_installing(&ms[0], total, Duration::from_secs(5));
        let mut seen = 0;
        let _ = drain_until(
            &ms[1],
            |d| {
                if matches!(d, Delivery::App { .. }) {
                    seen += 1;
                }
                seen >= total
            },
            Duration::from_secs(5),
        );
        let base = ms[0].log_base();
        assert!(base > 2, "coordinator must have compacted");

        // Force member 1 far behind the coordinator's watermark, as if it
        // had missed a long stretch of traffic.
        {
            let mut st = ms[1].state.lock();
            st.log.truncate(2);
            st.buffer.clear();
            st.nacked_for = None;
        }

        // The next record opens a gap whose NACK falls below the
        // coordinator's log_base; the answer must be a full snapshot.
        ms[0].broadcast(Bytes::from_static(b"extra"));
        let ds = drain_until(
            &ms[1],
            |d| matches!(d, Delivery::App { payload, .. } if &payload[..] == b"extra"),
            Duration::from_secs(5),
        );
        assert!(
            ds.iter()
                .any(|d| matches!(d, Delivery::Restore { image } if image.seq == base)),
            "laggard must catch up via checkpoint restore, got {ds:?}"
        );
        assert_eq!(ms[1].log_base(), base);
        assert_eq!(ms[1].buffered_len(), 0, "reorder buffer must drain");
        assert_eq!(ms[1].delivered_count(), ms[0].delivered_count());
        g.shutdown();
    }

    #[test]
    fn stale_buffer_entries_pruned_once_contiguous() {
        let (g, ms) = SeqGroup::new(2, NetConfig::instant());
        for i in 0..3 {
            ms[0].broadcast(Bytes::from(format!("x{i}")));
        }
        let _ = collect_n(&ms[1], 3, Duration::from_secs(3));
        // Park already-logged records in the reorder buffer, as a belated
        // retransmit that lost the race with normal delivery would.
        {
            let mut st = ms[1].state.lock();
            let stale: Vec<Record> = st.log.iter().take(2).cloned().collect();
            for r in stale {
                st.buffer.insert(r.seq, r);
            }
            assert_eq!(st.buffer.len(), 2);
        }
        ms[0].broadcast(Bytes::from_static(b"next"));
        let _ = drain_until(
            &ms[1],
            |d| matches!(d, Delivery::App { payload, .. } if &payload[..] == b"next"),
            Duration::from_secs(3),
        );
        let deadline = Instant::now() + Duration::from_secs(2);
        while ms[1].buffered_len() != 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(
            ms[1].buffered_len(),
            0,
            "stale records below the contiguous frontier must be pruned"
        );
        assert_logs_converge(&ms[0], &ms[1], Duration::from_secs(3));
        g.shutdown();
    }

    #[test]
    fn broadcast_timestamps_drain_at_quiescence() {
        let batch = BatchConfig {
            window: Duration::from_millis(2),
            ..BatchConfig::default()
        };
        let (g, ms) = SeqGroup::new_with_batch(3, NetConfig::instant(), batch);
        let ms = Arc::new(ms);
        let per = 50;
        let threads: Vec<_> = (0..3)
            .map(|i| {
                let ms = ms.clone();
                std::thread::spawn(move || {
                    for k in 0..per {
                        ms[i].broadcast(Bytes::from(format!("{i}:{k}")));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for m in ms.iter() {
            let _ = collect_n(m, per * 3, Duration::from_secs(10));
            let deadline = Instant::now() + Duration::from_secs(3);
            loop {
                let (inserts, removes, live) = {
                    let st = m.state.lock();
                    (st.ba_inserts, st.ba_removes, st.broadcast_at.len())
                };
                if inserts == removes && live == 0 {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "host {:?} leaked broadcast timestamps: {inserts} inserts, \
                     {removes} removes, {live} live",
                    m.host()
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        g.shutdown();
    }
}

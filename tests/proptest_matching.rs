//! Property-based tests on the tuple model: matching laws, codec
//! round-trips, and store-implementation equivalence.

use linda_tuple::{
    decode_tuple, encode_tuple, PatField, Pattern, Signature, Tuple, TypeTag, Value,
};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        any::<char>().prop_map(Value::Char),
        ".{0,12}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        proptest::collection::vec(inner, 0..3).prop_map(Value::Tuple)
    })
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(arb_value(), 0..6).prop_map(Tuple::new)
}

/// A pattern derived from a tuple by independently blanking fields into
/// typed formals — guaranteed to match the source tuple.
fn pattern_of(t: &Tuple, mask: &[bool]) -> Pattern {
    Pattern::new(
        t.fields()
            .iter()
            .zip(mask.iter().chain(std::iter::repeat(&false)))
            .map(|(v, blank)| {
                if *blank {
                    PatField::Formal(v.type_tag())
                } else {
                    PatField::Actual(v.clone())
                }
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_roundtrips_any_tuple(t in arb_tuple()) {
        let enc = encode_tuple(&t);
        prop_assert_eq!(decode_tuple(&enc).unwrap(), t);
    }

    #[test]
    fn truncated_encodings_never_panic(t in arb_tuple(), cut in 0usize..64) {
        let enc = encode_tuple(&t);
        if cut < enc.len() {
            // Must error, never panic or succeed.
            prop_assert!(decode_tuple(&enc[..cut]).is_err());
        }
    }

    #[test]
    fn derived_pattern_always_matches(t in arb_tuple(), mask in proptest::collection::vec(any::<bool>(), 0..6)) {
        let p = pattern_of(&t, &mask);
        prop_assert!(p.matches(&t));
        let bindings = p.bind(&t).unwrap();
        prop_assert_eq!(bindings.len(), p.formal_count());
        // Signatures agree whenever a match exists.
        prop_assert_eq!(p.signature(), t.signature());
    }

    #[test]
    fn bind_reconstructs_tuple(t in arb_tuple(), mask in proptest::collection::vec(any::<bool>(), 0..6)) {
        let p = pattern_of(&t, &mask);
        let bindings = p.bind(&t).unwrap();
        // Interleaving actuals with bindings rebuilds the original tuple.
        let rebuilt = ftlinda::rebuild_tuple(&p, &bindings);
        prop_assert_eq!(rebuilt, t);
    }

    #[test]
    fn arity_mismatch_never_matches(t in arb_tuple(), extra in arb_value()) {
        let p = Pattern::from(&t);
        let mut fields = t.fields().to_vec();
        fields.push(extra);
        let bigger = Tuple::new(fields);
        prop_assert!(!p.matches(&bigger));
    }

    #[test]
    fn signature_stable_hash_injective_on_small_sets(
        tags_a in proptest::collection::vec(0u8..7, 0..6),
        tags_b in proptest::collection::vec(0u8..7, 0..6),
    ) {
        let sa = Signature::new(tags_a.iter().map(|b| TypeTag::from_u8(*b).unwrap()).collect());
        let sb = Signature::new(tags_b.iter().map(|b| TypeTag::from_u8(*b).unwrap()).collect());
        if sa != sb {
            // Not a theorem for arbitrary inputs, but over this tiny
            // space FNV must separate them; a collision here would break
            // bucket-count assumptions silently.
            prop_assert_ne!(sa.stable_hash(), sb.stable_hash());
        } else {
            prop_assert_eq!(sa.stable_hash(), sb.stable_hash());
        }
    }

    #[test]
    fn value_equality_is_reflexive_and_hash_consistent(v in arb_value()) {
        use std::hash::{Hash, Hasher};
        prop_assert_eq!(&v, &v);
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        v.hash(&mut h1);
        v.clone().hash(&mut h2);
        prop_assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn value_ordering_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        // Antisymmetry.
        match a.cmp(&b) {
            Less => prop_assert_eq!(b.cmp(&a), Greater),
            Greater => prop_assert_eq!(b.cmp(&a), Less),
            Equal => prop_assert_eq!(&a, &b),
        }
        // Transitivity (on the Less case).
        if a.cmp(&b) == Less && b.cmp(&c) == Less {
            prop_assert_eq!(a.cmp(&c), Less);
        }
    }
}

mod store_equivalence {
    use super::*;
    use linda_space::{IndexedStore, LinearStore, Store};

    #[derive(Debug, Clone)]
    enum Op {
        Insert(Tuple),
        Take(Pattern),
        Read(Pattern),
        TakeAll(Pattern),
        Count(Pattern),
    }

    fn small_tuple() -> impl Strategy<Value = Tuple> {
        (0usize..3, 0i64..4).prop_map(|(h, v)| linda_tuple::tuple!(["a", "b", "c"][h], v))
    }

    fn small_pattern() -> impl Strategy<Value = Pattern> {
        (0usize..3, proptest::option::of(0i64..4)).prop_map(|(h, v)| {
            let head = PatField::Actual(Value::Str(["a", "b", "c"][h].into()));
            let second = match v {
                Some(v) => PatField::Actual(Value::Int(v)),
                None => PatField::Formal(TypeTag::Int),
            };
            Pattern::new(vec![head, second])
        })
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            small_tuple().prop_map(Op::Insert),
            small_pattern().prop_map(Op::Take),
            small_pattern().prop_map(Op::Read),
            small_pattern().prop_map(Op::TakeAll),
            small_pattern().prop_map(Op::Count),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The indexed store and the linear baseline are observationally
        /// equivalent on any operation sequence — the core guarantee the
        /// A2 optimization must preserve.
        #[test]
        fn indexed_equals_linear(ops in proptest::collection::vec(arb_op(), 0..80)) {
            let mut idx = IndexedStore::new();
            let mut lin = LinearStore::new();
            for op in ops {
                match op {
                    Op::Insert(t) => {
                        idx.insert(t.clone());
                        lin.insert(t);
                    }
                    Op::Take(p) => prop_assert_eq!(idx.take(&p), lin.take(&p)),
                    Op::Read(p) => prop_assert_eq!(idx.read(&p), lin.read(&p)),
                    Op::TakeAll(p) => prop_assert_eq!(idx.take_all(&p), lin.take_all(&p)),
                    Op::Count(p) => prop_assert_eq!(idx.count(&p), lin.count(&p)),
                }
                prop_assert_eq!(idx.len(), lin.len());
            }
            prop_assert_eq!(idx.snapshot(), lin.snapshot());
        }
    }
}

/root/repo/target/debug/deps/ft_lcc-21f00dd49f56986a.d: crates/lcc/src/lib.rs crates/lcc/src/lexer.rs crates/lcc/src/parser.rs crates/lcc/src/pretty.rs

/root/repo/target/debug/deps/libft_lcc-21f00dd49f56986a.rlib: crates/lcc/src/lib.rs crates/lcc/src/lexer.rs crates/lcc/src/parser.rs crates/lcc/src/pretty.rs

/root/repo/target/debug/deps/libft_lcc-21f00dd49f56986a.rmeta: crates/lcc/src/lib.rs crates/lcc/src/lexer.rs crates/lcc/src/parser.rs crates/lcc/src/pretty.rs

crates/lcc/src/lib.rs:
crates/lcc/src/lexer.rs:
crates/lcc/src/parser.rs:
crates/lcc/src/pretty.rs:

//! Tuple stores: the data structure behind a tuple space.
//!
//! Two implementations of the [`Store`] trait are provided:
//!
//! * [`IndexedStore`] — the production store. Tuples are bucketed by the
//!   stable hash of their signature (arity + ordered field types), and
//!   within a bucket a secondary index keyed by the *first field value*
//!   accelerates the overwhelmingly common Linda idiom of patterns whose
//!   head is a string constant (`("subtask", ?int, ?bytes)`).
//! * [`LinearStore`] — a straight `Vec` scan, kept as the baseline for
//!   ablation experiment A2.
//!
//! Both stores implement **oldest-match semantics**: `take`/`read` return
//! the matching tuple that was inserted earliest. This determinism is not
//! just a nicety — the replicated state machine (crate `ftlinda-kernel`)
//! requires every replica to withdraw the *same* tuple for the same
//! operation stream, and oldest-match also preserves causality for
//! FIFO-producer/consumer patterns.
//!
//! **Zero-clone withdraw contract:** `take`/`take_all` (and the tracked
//! variants) move the stored tuple out by removing it first — they never
//! clone payload bytes. Only the read-side operations (`read`,
//! `read_all`, `snapshot`) copy, because the original stays in the
//! store. AGS `move` over large tuple sets therefore costs O(matches)
//! pointer moves, not O(bytes).

use linda_tuple::{Pattern, Signature, StableMap, Tuple, Value};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Point-in-time matching-cost totals for one store.
///
/// A *probe* is one `Pattern::matches` evaluation against a stored tuple;
/// an *attempt* is one `in`/`rd`-shaped operation (`take`, `read`,
/// `contains`, `count`, `take_all`, `read_all`); a *hit* is a probe that
/// matched. `probes / attempts` is the matching cost the store's indexing
/// did **not** eliminate — the number the sharded-tuple-space roadmap
/// item needs per signature before picking a partitioning key.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MatchStats {
    /// Match-shaped operations attempted.
    pub attempts: u64,
    /// Tuples examined (`Pattern::matches` evaluations).
    pub probes: u64,
    /// Probes that matched.
    pub hits: u64,
}

impl MatchStats {
    /// Mean tuples examined per attempt (0.0 when nothing was attempted).
    pub fn probes_per_attempt(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.probes as f64 / self.attempts as f64
        }
    }

    /// Fraction of probes that matched (1.0 when no probe was wasted —
    /// including the degenerate zero-probe case).
    pub fn efficiency(&self) -> f64 {
        if self.probes == 0 {
            1.0
        } else {
            self.hits as f64 / self.probes as f64
        }
    }

    /// Component-wise difference versus an earlier snapshot (for
    /// delta-feeding monotonic counters).
    pub fn since(&self, earlier: &MatchStats) -> MatchStats {
        MatchStats {
            attempts: self.attempts.saturating_sub(earlier.attempts),
            probes: self.probes.saturating_sub(earlier.probes),
            hits: self.hits.saturating_sub(earlier.hits),
        }
    }
}

/// Interior-mutability accumulator for [`MatchStats`], so the read-side
/// operations (`read`, `contains`, `count`, `read_all` — all `&self`) can
/// account their probes too. `Cell` keeps the hot path to a plain load +
/// store; stores are only ever reached behind a `Mutex` (`LocalSpace`,
/// the kernel), so the non-`Sync` cell never sees concurrent access.
#[derive(Debug, Default, Clone)]
struct MatchCounters {
    attempts: Cell<u64>,
    probes: Cell<u64>,
    hits: Cell<u64>,
}

impl MatchCounters {
    fn record(&self, probes: u64, hits: u64) {
        self.attempts.set(self.attempts.get() + 1);
        self.probes.set(self.probes.get() + probes);
        self.hits.set(self.hits.get() + hits);
    }

    fn stats(&self) -> MatchStats {
        MatchStats {
            attempts: self.attempts.get(),
            probes: self.probes.get(),
            hits: self.hits.get(),
        }
    }
}

/// Occupancy of one tuple signature within a store: current count plus
/// the high-water mark since the store was created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureOccupancy {
    /// The signature (arity + ordered field types).
    pub signature: Signature,
    /// Tuples of this signature currently stored.
    pub count: usize,
    /// Most tuples of this signature ever stored at once.
    pub high_water: usize,
}

/// Minimal interface of a tuple store (single-threaded; the concurrent
/// wrapper lives in [`crate::LocalSpace`]).
pub trait Store {
    /// Deposit a tuple.
    fn insert(&mut self, t: Tuple);
    /// Withdraw the oldest tuple matching `p`, if any.
    fn take(&mut self, p: &Pattern) -> Option<Tuple>;
    /// Read (copy) the oldest tuple matching `p`, if any.
    fn read(&self, p: &Pattern) -> Option<Tuple>;
    /// Whether any tuple matches `p`.
    fn contains(&self, p: &Pattern) -> bool {
        self.read(p).is_some()
    }
    /// Number of tuples matching `p`.
    fn count(&self, p: &Pattern) -> usize;
    /// Withdraw *all* tuples matching `p`, oldest first (the `move` AGS op).
    fn take_all(&mut self, p: &Pattern) -> Vec<Tuple>;
    /// Copy all tuples matching `p`, oldest first (the `copy` AGS op).
    fn read_all(&self, p: &Pattern) -> Vec<Tuple>;
    /// Total number of stored tuples.
    fn len(&self) -> usize;
    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Remove everything.
    fn clear(&mut self);
    /// Snapshot of all tuples in insertion order (for checkpointing and
    /// state transfer to recovering replicas).
    fn snapshot(&self) -> Vec<Tuple>;
    /// Cumulative matching-cost totals (attempts / probes / hits) since
    /// the store was created. Pure observability: never part of replica
    /// digests or checkpoints.
    fn match_stats(&self) -> MatchStats;
    /// Per-signature occupancy with high-water marks, sorted by
    /// signature. Entries whose count dropped to 0 are retained (their
    /// high-water mark is still informative); `clear` resets everything.
    fn signature_census(&self) -> Vec<SignatureOccupancy>;
    /// Tuples currently stored under the signature with this stable hash
    /// (the "nearest miss" count for a guard that keeps not matching).
    fn signature_len(&self, sig_hash: u64) -> usize;
}

/// One signature bucket of the [`IndexedStore`].
#[derive(Debug, Default, Clone)]
struct Bucket {
    /// Insertion-ordered entries (key = global insertion sequence).
    entries: BTreeMap<u64, Tuple>,
    /// Secondary index: first-field value → insertion seqs with that head.
    by_head: HashMap<Value, BTreeSet<u64>>,
}

impl Bucket {
    /// Insert under `seq`. Returns `true` if the sequence number was
    /// fresh. A duplicate seq would silently shadow the older tuple in
    /// `entries` while leaving a stale `by_head` entry behind, so callers
    /// must treat `false` as a contract violation (see `insert_tracked`
    /// / `restore_at`).
    fn insert(&mut self, seq: u64, t: Tuple) -> bool {
        if self.entries.contains_key(&seq) {
            return false;
        }
        if let Some(head) = t.get(0) {
            self.by_head.entry(head.clone()).or_default().insert(seq);
        }
        self.entries.insert(seq, t);
        true
    }

    fn remove(&mut self, seq: u64) -> Option<Tuple> {
        let t = self.entries.remove(&seq)?;
        if let Some(head) = t.get(0) {
            if let Some(set) = self.by_head.get_mut(head) {
                set.remove(&seq);
                if set.is_empty() {
                    self.by_head.remove(head);
                }
            }
        }
        Some(t)
    }

    /// Sequence numbers of candidate tuples for `p`, oldest first.
    fn candidates<'a>(&'a self, p: &Pattern) -> Box<dyn Iterator<Item = u64> + 'a> {
        match p.head_actual() {
            Some(head) => match self.by_head.get(head) {
                Some(set) => Box::new(set.iter().copied()),
                None => Box::new(std::iter::empty()),
            },
            None => Box::new(self.entries.keys().copied()),
        }
    }

    /// Oldest matching seq plus the number of tuples examined.
    fn find_first(&self, p: &Pattern) -> (Option<u64>, u64) {
        let mut probes = 0u64;
        let found = self.candidates(p).find(|seq| {
            probes += 1;
            p.matches(&self.entries[seq])
        });
        (found, probes)
    }

    /// All matching seqs (oldest first) plus the number examined.
    fn find_all(&self, p: &Pattern) -> (Vec<u64>, u64) {
        let mut probes = 0u64;
        let found = self
            .candidates(p)
            .filter(|seq| {
                probes += 1;
                p.matches(&self.entries[seq])
            })
            .collect();
        (found, probes)
    }
}

/// Signature-indexed tuple store with a first-field secondary index.
#[derive(Debug, Default, Clone)]
pub struct IndexedStore {
    buckets: StableMap<u64, Bucket>,
    next_seq: u64,
    len: usize,
    /// Signature-hash → occupancy. Kept separate from `buckets` because
    /// emptied buckets are removed, while a census entry must survive at
    /// count 0 to preserve its high-water mark.
    census: StableMap<u64, SignatureOccupancy>,
    matches: MatchCounters,
}

impl IndexedStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_for_pattern(&self, p: &Pattern) -> Option<&Bucket> {
        self.buckets.get(&p.signature().stable_hash())
    }

    /// Shared insert path: bucket insert + len + census bookkeeping.
    /// Returns whether `seq` was fresh (see `Bucket::insert`).
    fn insert_at(&mut self, seq: u64, t: Tuple) -> bool {
        let sig = t.signature();
        let key = sig.stable_hash();
        let fresh = self.buckets.entry(key).or_default().insert(seq, t);
        if fresh {
            self.len += 1;
            let entry = self
                .census
                .entry(key)
                .or_insert_with(|| SignatureOccupancy {
                    signature: sig,
                    count: 0,
                    high_water: 0,
                });
            entry.count += 1;
            entry.high_water = entry.high_water.max(entry.count);
        }
        fresh
    }

    fn census_remove(&mut self, key: u64, n: usize) {
        if n > 0 {
            if let Some(e) = self.census.get_mut(&key) {
                e.count = e.count.saturating_sub(n);
            }
        }
    }

    // ----- tracked operations -------------------------------------------
    //
    // The AGS execution engine needs *exact* rollback: an aborted atomic
    // guarded statement must leave the store bit-identical (including
    // tuple age/insertion order) at every replica. These inherent methods
    // expose the internal sequence number so an undo log can restore a
    // withdrawn tuple at its original position.

    /// Insert and return the internal insertion sequence (for undo).
    pub fn insert_tracked(&mut self, t: Tuple) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let fresh = self.insert_at(seq, t);
        debug_assert!(fresh, "insert_tracked allocated a duplicate seq {seq}");
        seq
    }

    /// Withdraw the oldest match together with its sequence number.
    pub fn take_tracked(&mut self, p: &Pattern) -> Option<(u64, Tuple)> {
        let key = p.signature().stable_hash();
        let Some(bucket) = self.buckets.get_mut(&key) else {
            self.matches.record(0, 0);
            return None;
        };
        let (found, probes) = bucket.find_first(p);
        self.matches.record(probes, found.is_some() as u64);
        let seq = found?;
        let t = bucket.remove(seq)?;
        self.len -= 1;
        if bucket.entries.is_empty() {
            self.buckets.remove(&key);
        }
        self.census_remove(key, 1);
        Some((seq, t))
    }

    /// Withdraw all matches together with their sequence numbers.
    pub fn take_all_tracked(&mut self, p: &Pattern) -> Vec<(u64, Tuple)> {
        let key = p.signature().stable_hash();
        let Some(bucket) = self.buckets.get_mut(&key) else {
            self.matches.record(0, 0);
            return Vec::new();
        };
        let (seqs, probes) = bucket.find_all(p);
        self.matches.record(probes, seqs.len() as u64);
        let out: Vec<(u64, Tuple)> = seqs
            .into_iter()
            .filter_map(|seq| bucket.remove(seq).map(|t| (seq, t)))
            .collect();
        self.len -= out.len();
        if bucket.entries.is_empty() {
            self.buckets.remove(&key);
        }
        self.census_remove(key, out.len());
        out
    }

    /// Remove the tuple inserted under `seq` (undo of `insert_tracked`).
    pub fn remove_at(&mut self, seq: u64, sig_hash: u64) -> Option<Tuple> {
        let bucket = self.buckets.get_mut(&sig_hash)?;
        let t = bucket.remove(seq)?;
        self.len -= 1;
        if bucket.entries.is_empty() {
            self.buckets.remove(&sig_hash);
        }
        self.census_remove(sig_hash, 1);
        Some(t)
    }

    /// Re-insert a tuple at its original sequence position (undo of
    /// `take_tracked`), restoring its age exactly.
    ///
    /// # Contract
    ///
    /// `seq` must not currently be occupied — it must come from a
    /// preceding `take_tracked`/`take_all_tracked` on this store. A
    /// duplicate seq used to *silently overwrite* the resident tuple
    /// (corrupting `len` and leaving a stale head-index entry); it is now
    /// rejected: the store is left unchanged, `false` is returned, and
    /// debug builds panic.
    pub fn restore_at(&mut self, seq: u64, t: Tuple) -> bool {
        let fresh = self.insert_at(seq, t);
        debug_assert!(fresh, "restore_at seq {seq} is already occupied");
        fresh
    }
}

impl Store for IndexedStore {
    fn insert(&mut self, t: Tuple) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let fresh = self.insert_at(seq, t);
        debug_assert!(fresh, "insert allocated a duplicate seq {seq}");
    }

    fn take(&mut self, p: &Pattern) -> Option<Tuple> {
        self.take_tracked(p).map(|(_, t)| t)
    }

    fn read(&self, p: &Pattern) -> Option<Tuple> {
        let Some(bucket) = self.bucket_for_pattern(p) else {
            self.matches.record(0, 0);
            return None;
        };
        let (found, probes) = bucket.find_first(p);
        self.matches.record(probes, found.is_some() as u64);
        found.map(|seq| bucket.entries[&seq].clone())
    }

    fn count(&self, p: &Pattern) -> usize {
        let Some(bucket) = self.bucket_for_pattern(p) else {
            self.matches.record(0, 0);
            return 0;
        };
        let (found, probes) = bucket.find_all(p);
        self.matches.record(probes, found.len() as u64);
        found.len()
    }

    fn take_all(&mut self, p: &Pattern) -> Vec<Tuple> {
        self.take_all_tracked(p)
            .into_iter()
            .map(|(_, t)| t)
            .collect()
    }

    fn read_all(&self, p: &Pattern) -> Vec<Tuple> {
        let Some(bucket) = self.bucket_for_pattern(p) else {
            self.matches.record(0, 0);
            return Vec::new();
        };
        let (found, probes) = bucket.find_all(p);
        self.matches.record(probes, found.len() as u64);
        found
            .into_iter()
            .map(|seq| bucket.entries[&seq].clone())
            .collect()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.buckets.clear();
        self.census.clear();
        self.len = 0;
    }

    fn snapshot(&self) -> Vec<Tuple> {
        let mut all: Vec<(u64, Tuple)> = self
            .buckets
            .values()
            .flat_map(|b| b.entries.iter().map(|(s, t)| (*s, t.clone())))
            .collect();
        all.sort_by_key(|(s, _)| *s);
        all.into_iter().map(|(_, t)| t).collect()
    }

    fn match_stats(&self) -> MatchStats {
        self.matches.stats()
    }

    fn signature_census(&self) -> Vec<SignatureOccupancy> {
        let mut out: Vec<SignatureOccupancy> = self.census.values().cloned().collect();
        out.sort_by(|a, b| a.signature.cmp(&b.signature));
        out
    }

    fn signature_len(&self, sig_hash: u64) -> usize {
        self.census.get(&sig_hash).map_or(0, |e| e.count)
    }
}

/// Baseline store: a flat insertion-ordered vector with linear scans.
/// Exists to quantify what signature indexing buys (ablation A2).
#[derive(Debug, Default, Clone)]
pub struct LinearStore {
    entries: Vec<(u64, Tuple)>,
    next_seq: u64,
    census: StableMap<u64, SignatureOccupancy>,
    matches: MatchCounters,
}

impl LinearStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn census_insert(&mut self, sig: Signature) {
        let entry = self
            .census
            .entry(sig.stable_hash())
            .or_insert_with(|| SignatureOccupancy {
                signature: sig,
                count: 0,
                high_water: 0,
            });
        entry.count += 1;
        entry.high_water = entry.high_water.max(entry.count);
    }

    fn census_remove(&mut self, key: u64, n: usize) {
        if n > 0 {
            if let Some(e) = self.census.get_mut(&key) {
                e.count = e.count.saturating_sub(n);
            }
        }
    }
}

impl Store for LinearStore {
    fn insert(&mut self, t: Tuple) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.census_insert(t.signature());
        self.entries.push((seq, t));
    }

    fn take(&mut self, p: &Pattern) -> Option<Tuple> {
        let mut probes = 0u64;
        let idx = self.entries.iter().position(|(_, t)| {
            probes += 1;
            p.matches(t)
        });
        self.matches.record(probes, idx.is_some() as u64);
        let idx = idx?;
        let t = self.entries.remove(idx).1;
        self.census_remove(t.signature().stable_hash(), 1);
        Some(t)
    }

    fn read(&self, p: &Pattern) -> Option<Tuple> {
        let mut probes = 0u64;
        let found = self
            .entries
            .iter()
            .find(|(_, t)| {
                probes += 1;
                p.matches(t)
            })
            .map(|(_, t)| t.clone());
        self.matches.record(probes, found.is_some() as u64);
        found
    }

    fn count(&self, p: &Pattern) -> usize {
        let n = self.entries.iter().filter(|(_, t)| p.matches(t)).count();
        self.matches.record(self.entries.len() as u64, n as u64);
        n
    }

    fn take_all(&mut self, p: &Pattern) -> Vec<Tuple> {
        // Drain-partition: matches are moved out, non-matches moved back.
        // No tuple payload is ever cloned on this withdraw path.
        let probes = self.entries.len() as u64;
        let mut out = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        for (seq, t) in self.entries.drain(..) {
            if p.matches(&t) {
                out.push(t);
            } else {
                kept.push((seq, t));
            }
        }
        self.entries = kept;
        self.matches.record(probes, out.len() as u64);
        self.census_remove(p.signature().stable_hash(), out.len());
        out
    }

    fn read_all(&self, p: &Pattern) -> Vec<Tuple> {
        let out: Vec<Tuple> = self
            .entries
            .iter()
            .filter(|(_, t)| p.matches(t))
            .map(|(_, t)| t.clone())
            .collect();
        self.matches
            .record(self.entries.len() as u64, out.len() as u64);
        out
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.census.clear();
    }

    fn snapshot(&self) -> Vec<Tuple> {
        self.entries.iter().map(|(_, t)| t.clone()).collect()
    }

    fn match_stats(&self) -> MatchStats {
        self.matches.stats()
    }

    fn signature_census(&self) -> Vec<SignatureOccupancy> {
        let mut out: Vec<SignatureOccupancy> = self.census.values().cloned().collect();
        out.sort_by(|a, b| a.signature.cmp(&b.signature));
        out
    }

    fn signature_len(&self, sig_hash: u64) -> usize {
        self.census.get(&sig_hash).map_or(0, |e| e.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linda_tuple::{pat, tuple};

    fn stores() -> Vec<Box<dyn Store>> {
        vec![Box::new(IndexedStore::new()), Box::new(LinearStore::new())]
    }

    #[test]
    fn insert_take_roundtrip() {
        for mut s in stores() {
            s.insert(tuple!("a", 1));
            assert_eq!(s.len(), 1);
            assert_eq!(s.take(&pat!("a", ?int)), Some(tuple!("a", 1)));
            assert_eq!(s.len(), 0);
            assert!(s.is_empty());
            assert_eq!(s.take(&pat!("a", ?int)), None);
        }
    }

    #[test]
    fn oldest_match_fifo() {
        for mut s in stores() {
            s.insert(tuple!("t", 1));
            s.insert(tuple!("t", 2));
            s.insert(tuple!("t", 3));
            assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 1)));
            assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 2)));
            assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 3)));
        }
    }

    #[test]
    fn oldest_match_skips_nonmatching_newer_head() {
        for mut s in stores() {
            s.insert(tuple!("x", 1));
            s.insert(tuple!("y", 2));
            s.insert(tuple!("x", 3));
            // Head-indexed path: pattern with head actual "y".
            assert_eq!(s.take(&pat!("y", ?int)), Some(tuple!("y", 2)));
            // Generic path: all-formal pattern sees oldest overall.
            assert_eq!(s.take(&pat!(?str, ?int)), Some(tuple!("x", 1)));
            assert_eq!(s.take(&pat!(?str, ?int)), Some(tuple!("x", 3)));
        }
    }

    #[test]
    fn read_does_not_remove() {
        for mut s in stores() {
            s.insert(tuple!("a", 1));
            assert_eq!(s.read(&pat!("a", ?int)), Some(tuple!("a", 1)));
            assert_eq!(s.len(), 1);
            assert!(s.contains(&pat!("a", ?int)));
            assert!(!s.contains(&pat!("b", ?int)));
        }
    }

    #[test]
    fn count_and_read_all() {
        for mut s in stores() {
            for i in 0..5 {
                s.insert(tuple!("n", i));
            }
            s.insert(tuple!("other", 1.0));
            assert_eq!(s.count(&pat!("n", ?int)), 5);
            assert_eq!(s.count(&pat!("n", 3)), 1);
            assert_eq!(s.count(&pat!("zzz", ?int)), 0);
            let all = s.read_all(&pat!("n", ?int));
            assert_eq!(all.len(), 5);
            assert_eq!(all[0], tuple!("n", 0));
            assert_eq!(all[4], tuple!("n", 4));
            assert_eq!(s.len(), 6);
        }
    }

    #[test]
    fn take_all_removes_only_matches() {
        for mut s in stores() {
            for i in 0..4 {
                s.insert(tuple!("job", i));
            }
            s.insert(tuple!("done", 0));
            let taken = s.take_all(&pat!("job", ?int));
            assert_eq!(taken.len(), 4);
            assert_eq!(taken[0], tuple!("job", 0));
            assert_eq!(s.len(), 1);
            assert_eq!(s.take(&pat!("done", ?int)), Some(tuple!("done", 0)));
        }
    }

    #[test]
    fn signatures_do_not_cross_match() {
        for mut s in stores() {
            s.insert(tuple!("a", 1));
            s.insert(tuple!("a", 1.0));
            s.insert(tuple!("a", 1, 2));
            assert_eq!(s.take(&pat!("a", ?float)), Some(tuple!("a", 1.0)));
            assert_eq!(s.take(&pat!("a", ?int, ?int)), Some(tuple!("a", 1, 2)));
            assert_eq!(s.take(&pat!("a", ?int)), Some(tuple!("a", 1)));
        }
    }

    #[test]
    fn duplicate_tuples_are_a_multiset() {
        for mut s in stores() {
            s.insert(tuple!("dup"));
            s.insert(tuple!("dup"));
            assert_eq!(s.count(&pat!("dup")), 2);
            assert_eq!(s.take(&pat!("dup")), Some(tuple!("dup")));
            assert_eq!(s.count(&pat!("dup")), 1);
        }
    }

    #[test]
    fn empty_tuple_storage() {
        for mut s in stores() {
            s.insert(tuple!());
            assert_eq!(s.take(&pat!()), Some(tuple!()));
        }
    }

    #[test]
    fn snapshot_preserves_insertion_order() {
        for mut s in stores() {
            s.insert(tuple!("b", 2));
            s.insert(tuple!("a", 1));
            s.insert(tuple!("c", 3.0));
            assert_eq!(
                s.snapshot(),
                vec![tuple!("b", 2), tuple!("a", 1), tuple!("c", 3.0)]
            );
        }
    }

    #[test]
    fn clear_empties() {
        for mut s in stores() {
            s.insert(tuple!(1));
            s.insert(tuple!(2));
            s.clear();
            assert_eq!(s.len(), 0);
            assert_eq!(s.take(&pat!(?int)), None);
        }
    }

    #[test]
    fn head_index_cleanup_after_removal() {
        let mut s = IndexedStore::new();
        s.insert(tuple!("k", 1));
        assert_eq!(s.take(&pat!("k", ?int)), Some(tuple!("k", 1)));
        // Bucket is gone; reinsert works and matches again.
        s.insert(tuple!("k", 2));
        assert_eq!(s.read(&pat!("k", ?int)), Some(tuple!("k", 2)));
    }

    #[test]
    fn mid_pattern_actuals_filter() {
        for mut s in stores() {
            s.insert(tuple!("p", 1, "x"));
            s.insert(tuple!("p", 2, "y"));
            assert_eq!(s.take(&pat!("p", ?int, "y")), Some(tuple!("p", 2, "y")));
        }
    }

    #[test]
    fn signature_census_counts_and_high_water() {
        for mut s in stores() {
            for i in 0..3 {
                s.insert(tuple!("job", i));
            }
            s.insert(tuple!("flag"));
            let census = s.signature_census();
            assert_eq!(census.len(), 2);
            let job = census
                .iter()
                .find(|c| c.signature.to_string() == "<str,int>")
                .unwrap();
            assert_eq!((job.count, job.high_water), (3, 3));
            // Draining below the high-water mark keeps the mark.
            s.take(&pat!("job", ?int));
            s.take(&pat!("job", ?int));
            let job_hash = tuple!("job", 0).signature().stable_hash();
            assert_eq!(s.signature_len(job_hash), 1);
            let census = s.signature_census();
            let job = census
                .iter()
                .find(|c| c.signature.to_string() == "<str,int>")
                .unwrap();
            assert_eq!((job.count, job.high_water), (1, 3));
            // take_all empties the signature but the census entry stays.
            s.take_all(&pat!("job", ?int));
            assert_eq!(s.signature_len(job_hash), 0);
            let census = s.signature_census();
            let job = census
                .iter()
                .find(|c| c.signature.to_string() == "<str,int>")
                .unwrap();
            assert_eq!((job.count, job.high_water), (0, 3));
            // clear resets the census entirely.
            s.clear();
            assert!(s.signature_census().is_empty());
        }
    }

    #[test]
    fn census_tracks_tracked_undo_paths() {
        let mut s = IndexedStore::new();
        let sig = tuple!("t", 0).signature().stable_hash();
        let seq = s.insert_tracked(tuple!("t", 0));
        assert_eq!(s.signature_len(sig), 1);
        s.remove_at(seq, sig);
        assert_eq!(s.signature_len(sig), 0);
        s.insert(tuple!("t", 1));
        let (seq, t) = s.take_tracked(&pat!("t", ?int)).unwrap();
        assert_eq!(s.signature_len(sig), 0);
        s.restore_at(seq, t);
        assert_eq!(s.signature_len(sig), 1);
        let c = &s.signature_census()[0];
        assert_eq!((c.count, c.high_water), (1, 1), "undo is not a new peak");
    }

    #[test]
    fn match_stats_count_probes_and_hits() {
        // Indexed: miss on an absent signature costs zero probes.
        let s = IndexedStore::new();
        assert!(!s.contains(&pat!("nope", ?int)));
        let st = s.match_stats();
        assert_eq!((st.attempts, st.probes, st.hits), (1, 0, 0));

        // Linear: the same miss scans the whole store.
        let mut lin = LinearStore::new();
        for i in 0..5 {
            lin.insert(tuple!("job", i));
        }
        assert!(!lin.contains(&pat!("nope", ?int)));
        let st = lin.match_stats();
        assert_eq!((st.attempts, st.probes, st.hits), (1, 5, 0));
        assert_eq!(st.probes_per_attempt(), 5.0);
        assert_eq!(st.efficiency(), 0.0);

        // A successful head-indexed take probes exactly one tuple.
        let mut idx = IndexedStore::new();
        idx.insert(tuple!("a", 1));
        idx.insert(tuple!("b", 2));
        assert!(idx.take(&pat!("b", ?int)).is_some());
        let st = idx.match_stats();
        assert_eq!((st.attempts, st.probes, st.hits), (1, 1, 1));
        assert_eq!(st.efficiency(), 1.0);

        // Deltas for counter feeding.
        assert!(idx.take(&pat!("a", ?int)).is_some());
        let newer = idx.match_stats();
        assert_eq!(newer.since(&st).attempts, 1);
    }

    #[test]
    fn indexed_and_linear_agree_on_random_workload() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut idx = IndexedStore::new();
        let mut lin = LinearStore::new();
        let heads = ["a", "b", "c"];
        for _ in 0..2000 {
            let op: u8 = rng.gen_range(0..4);
            let head = heads[rng.gen_range(0..heads.len())];
            let v: i64 = rng.gen_range(0..5);
            match op {
                0 => {
                    let t = tuple!(head, v);
                    idx.insert(t.clone());
                    lin.insert(t);
                }
                1 => {
                    let p = pat!(head, ?int);
                    assert_eq!(idx.take(&p), lin.take(&p));
                }
                2 => {
                    let p = pat!(head, v);
                    assert_eq!(idx.read(&p), lin.read(&p));
                }
                _ => {
                    let p = pat!(?str, v);
                    assert_eq!(idx.count(&p), lin.count(&p));
                }
            }
            assert_eq!(idx.len(), lin.len());
        }
        assert_eq!(idx.snapshot(), lin.snapshot());
    }
}

#[cfg(test)]
mod tracked_tests {
    use super::*;
    use linda_tuple::{pat, tuple};

    #[test]
    fn tracked_roundtrip_preserves_age() {
        let mut s = IndexedStore::new();
        s.insert(tuple!("t", 1));
        s.insert(tuple!("t", 2));
        s.insert(tuple!("t", 3));
        // Withdraw the middle one by value, then restore it.
        let (seq, t) = s.take_tracked(&pat!("t", 2)).unwrap();
        assert_eq!(t, tuple!("t", 2));
        s.restore_at(seq, t);
        // Age order must be exactly as before the withdrawal.
        assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 1)));
        assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 2)));
        assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 3)));
    }

    #[test]
    fn remove_at_undoes_insert() {
        let mut s = IndexedStore::new();
        let t = tuple!("x", 9);
        let sig = t.signature().stable_hash();
        let seq = s.insert_tracked(t);
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove_at(seq, sig), Some(tuple!("x", 9)));
        assert_eq!(s.len(), 0);
        assert_eq!(s.remove_at(seq, sig), None);
    }

    #[test]
    fn restore_at_rejects_occupied_seq() {
        let mut s = IndexedStore::new();
        s.insert(tuple!("t", 1));
        let (seq, t) = s.take_tracked(&pat!("t", 1)).unwrap();
        assert!(s.restore_at(seq, t));
        // The slot is occupied again: a second restore at the same seq
        // must not overwrite it or corrupt `len`.
        let dup = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.restore_at(seq, tuple!("t", 99))
        }));
        if cfg!(debug_assertions) {
            assert!(dup.is_err(), "debug builds panic on duplicate seq");
        } else {
            assert!(!dup.unwrap(), "release builds report the rejection");
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.read(&pat!("t", ?int)), Some(tuple!("t", 1)));
        assert_eq!(s.count(&pat!("t", 99)), 0, "duplicate must not land");
    }

    #[test]
    fn take_all_tracked_restores() {
        let mut s = IndexedStore::new();
        for i in 0..4 {
            s.insert(tuple!("job", i));
        }
        s.insert(tuple!("other"));
        let taken = s.take_all_tracked(&pat!("job", ?int));
        assert_eq!(taken.len(), 4);
        assert_eq!(s.len(), 1);
        for (seq, t) in taken {
            s.restore_at(seq, t);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.take(&pat!("job", ?int)), Some(tuple!("job", 0)));
    }
}

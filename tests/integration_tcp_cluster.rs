//! The cluster out of one process: boot N `ftlinda-node` processes over
//! localhost TCP, drive pingpong traffic through them, SIGKILL one
//! member, relaunch it with `--rejoin`, and prove the survivors plus the
//! rejoiner still serve. This is the transport's end-to-end exercise —
//! real sockets, real process death, real snapshot rejoin.

use std::io::Read;
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const NODE: &str = env!("CARGO_BIN_EXE_ftlinda-node");

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    (0..n)
        .map(|_| {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        })
        .collect()
}

fn peers_arg(addrs: &[SocketAddr]) -> String {
    addrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// A node process that is SIGKILLed when the test ends (or panics), so
/// failures never leak orphans.
struct Node(Child);

impl Node {
    fn spawn(peers: &str, id: u32, role: &str, extra: &[&str]) -> Node {
        let mut cmd = Command::new(NODE);
        cmd.args(["--id", &id.to_string(), "--peers", peers, "--role", role])
            .args(["--shards", "2"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        Node(cmd.spawn().expect("spawn ftlinda-node"))
    }

    /// Wait for clean exit, with a deadline; returns captured output for
    /// diagnostics.
    fn wait_success(mut self, secs: u64, what: &str) -> String {
        let deadline = Instant::now() + Duration::from_secs(secs);
        loop {
            match self.0.try_wait().expect("try_wait") {
                Some(status) => {
                    let mut out = String::new();
                    if let Some(mut s) = self.0.stdout.take() {
                        let _ = s.read_to_string(&mut out);
                    }
                    let mut err = String::new();
                    if let Some(mut s) = self.0.stderr.take() {
                        let _ = s.read_to_string(&mut err);
                    }
                    assert!(
                        status.success(),
                        "{what} failed ({status}):\nstdout:\n{out}\nstderr:\n{err}"
                    );
                    // Forget the child so Drop doesn't re-kill a reaped pid.
                    std::mem::forget(self);
                    return out;
                }
                None => {
                    assert!(
                        Instant::now() < deadline,
                        "{what} still running after {secs}s"
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn kill_one_process_then_rejoin() {
    let addrs = free_addrs(3);
    let peers = peers_arg(&addrs);
    let bench =
        std::env::temp_dir().join(format!("ftlinda-tcp-it-{}-bench.json", std::process::id()));
    let bench_path = bench.to_str().unwrap().to_string();

    // Members 1 (pong service) and 2 (idle replica) persist; member 0
    // is the ping driver and runs to completion per phase.
    let pong = Node::spawn(&peers, 1, "pong", &[]);
    let idle = Node::spawn(&peers, 2, "idle", &[]);
    let ping = Node::spawn(
        &peers,
        0,
        "ping",
        &["--count", "40", "--bench-out", &bench_path],
    );
    let out = ping.wait_success(120, "initial ping phase");
    assert!(out.contains("ops_per_sec"), "bench line missing: {out}");

    // SIGKILL the pong member mid-life: the survivors detect the
    // silence, order its failure, and the cluster keeps its state.
    drop(pong);

    // Relaunch it as a rejoiner: it must come back through the
    // JoinReq → Snapshot path (its log died with the process) and then
    // serve pings again. The ping driver also rejoins — its own earlier
    // exit was recorded as a failure too.
    let pong2 = Node::spawn(&peers, 1, "pong", &["--rejoin"]);
    let ping2 = Node::spawn(
        &peers,
        0,
        "ping",
        &["--rejoin", "--count", "40", "--bench-out", &bench_path],
    );
    let out2 = ping2.wait_success(120, "post-rejoin ping phase");
    assert!(
        out2.contains("ops_per_sec"),
        "post-rejoin bench line missing: {out2}"
    );

    // The bench artifact is valid enough to consume downstream.
    let json = std::fs::read_to_string(&bench).expect("bench json written");
    assert!(json.contains("\"bench\":\"tcp_pingpong\""), "{json}");
    assert!(json.contains("\"count\":40"), "{json}");
    let _ = std::fs::remove_file(&bench);
    drop(pong2);
    drop(idle);
}

//! Property tests for the AGS IR: wire round-trips over arbitrary valid
//! statements, expression evaluation determinism, and validation
//! soundness.

use ftlinda_ags::{
    decode_ags, encode_ags, Ags, AgsBuilder, EvalCtx, Func, MatchField, Operand, ScratchId, TsId,
};
use linda_tuple::{TypeTag, Value};
use proptest::prelude::*;

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        ".{0,8}".prop_map(Value::Str),
    ]
}

/// Operands valid under `bound` formals.
fn arb_operand(bound: u16) -> impl Strategy<Value = Operand> {
    let leaf = if bound == 0 {
        prop_oneof![
            arb_scalar().prop_map(Operand::Const),
            Just(Operand::SelfHost),
            Just(Operand::RequestSeq),
        ]
        .boxed()
    } else {
        prop_oneof![
            arb_scalar().prop_map(Operand::Const),
            (0..bound).prop_map(Operand::Formal),
            Just(Operand::SelfHost),
            Just(Operand::RequestSeq),
        ]
        .boxed()
    };
    leaf.prop_recursive(2, 12, 2, |inner| {
        (
            prop_oneof![
                Just(Func::Add),
                Just(Func::Sub),
                Just(Func::Mul),
                Just(Func::Min),
                Just(Func::Max),
                Just(Func::Eq),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(f, a, b)| Operand::Apply(f, vec![a, b]))
    })
}

fn arb_tag() -> impl Strategy<Value = TypeTag> {
    (0u8..7).prop_map(|b| TypeTag::from_u8(b).unwrap())
}

#[derive(Debug, Clone)]
enum FieldSpec {
    Bind(TypeTag),
    Expr,
}

fn arb_fields(max: usize) -> impl Strategy<Value = Vec<FieldSpec>> {
    proptest::collection::vec(
        prop_oneof![arb_tag().prop_map(FieldSpec::Bind), Just(FieldSpec::Expr),],
        0..max,
    )
}

/// Build a random but *valid* AGS: formal indices always within bounds,
/// guards on stable spaces.
fn arb_ags() -> impl Strategy<Value = Ags> {
    (
        // guard: None = true, Some(fields, is_in)
        proptest::option::of((arb_fields(4), any::<bool>())),
        // body ops: (kind 0..4, fields)
        proptest::collection::vec((0u8..5, arb_fields(3)), 0..4),
        any::<bool>(), // add a trailing `or true =>` branch
    )
        .prop_map(|(guard, body, add_true)| {
            let mut bound: u16 = 0;
            let mut b = AgsBuilder::new();
            match guard {
                None => b = b.guard_true(),
                Some((fields, is_in)) => {
                    let fs: Vec<MatchField> = fields
                        .iter()
                        .map(|f| match f {
                            FieldSpec::Bind(t) => {
                                bound += 1;
                                MatchField::Bind(*t)
                            }
                            FieldSpec::Expr => MatchField::actual(1i64),
                        })
                        .collect();
                    b = if is_in {
                        b.guard_in(TsId(0), fs)
                    } else {
                        b.guard_rd(TsId(0), fs)
                    };
                }
            }
            for (kind, fields) in body {
                match kind {
                    0 => {
                        // out: template of operands over current bound
                        let tmpl: Vec<Operand> = fields
                            .iter()
                            .enumerate()
                            .map(|(i, _)| {
                                if bound > 0 && i % 2 == 0 {
                                    Operand::Formal((i as u16) % bound)
                                } else {
                                    Operand::cst(i as i64)
                                }
                            })
                            .collect();
                        b = b.out(TsId(0), tmpl);
                    }
                    1 | 2 => {
                        let fs: Vec<MatchField> = fields
                            .iter()
                            .map(|f| match f {
                                FieldSpec::Bind(t) => {
                                    bound += 1;
                                    MatchField::Bind(*t)
                                }
                                FieldSpec::Expr => MatchField::actual("k"),
                            })
                            .collect();
                        b = if kind == 1 {
                            b.in_(TsId(0), fs)
                        } else {
                            b.rd(TsId(0), fs)
                        };
                    }
                    3 => {
                        let fs: Vec<MatchField> = fields
                            .iter()
                            .map(|f| match f {
                                FieldSpec::Bind(t) => MatchField::Bind(*t),
                                FieldSpec::Expr => MatchField::actual(2i64),
                            })
                            .collect();
                        b = b.move_(TsId(0), TsId(1), fs);
                    }
                    _ => {
                        let fs: Vec<MatchField> = fields
                            .iter()
                            .map(|f| match f {
                                FieldSpec::Bind(t) => MatchField::Bind(*t),
                                FieldSpec::Expr => MatchField::actual(false),
                            })
                            .collect();
                        b = b.copy(TsId(0), ScratchId(0), fs);
                    }
                }
            }
            if add_true {
                b = b.or().guard_true();
            }
            b.build().expect("constructed to be valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_valid_ags_roundtrips(ags in arb_ags()) {
        let enc = encode_ags(&ags);
        prop_assert_eq!(decode_ags(&enc).unwrap(), ags);
    }

    #[test]
    fn truncated_ags_never_panics(ags in arb_ags(), cut in 0usize..128) {
        let enc = encode_ags(&ags);
        if cut < enc.len() {
            prop_assert!(decode_ags(&enc[..cut]).is_err());
        }
    }

    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_ags(&bytes); // any result is fine; no panic
    }

    #[test]
    fn expression_evaluation_is_deterministic(
        op in arb_operand(3),
        a in any::<i64>(),
        b in any::<i64>(),
        c in any::<i64>(),
        host in any::<u32>(),
        seq in any::<u64>(),
    ) {
        let bindings = [Value::Int(a), Value::Int(b), Value::Int(c)];
        let ctx = EvalCtx { bindings: &bindings, self_host: host, request_seq: seq };
        let r1 = op.eval(&ctx);
        let r2 = op.eval(&ctx);
        prop_assert_eq!(r1, r2, "same inputs, same result (replica determinism)");
    }

    #[test]
    fn op_count_matches_structure(ags in arb_ags()) {
        let counted = ags.op_count();
        let manual: usize = ags
            .branches
            .iter()
            .map(|br| usize::from(!br.guard.is_true()) + br.body.len())
            .sum();
        prop_assert_eq!(counted, manual);
    }

    #[test]
    fn formal_types_match_binds(ags in arb_ags()) {
        for br in &ags.branches {
            let mut expect = br.guard.bind_types();
            for op in &br.body {
                expect.extend(op.bind_types());
            }
            prop_assert_eq!(&br.formal_types, &expect);
        }
    }
}

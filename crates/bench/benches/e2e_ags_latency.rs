//! E3 — end-to-end AGS latency: multicast ordering + state machine.
//!
//! §5.3 of the paper combines the Table 1/2 processing costs with
//! Consul's measured ~4.0 ms dissemination/ordering time (3 Sun-3
//! replicas, 10 Mb Ethernet) to estimate total AGS latency, concluding
//! that **ordering dominates**. We measure the full round trip —
//! `Runtime::execute` returning after the local replica applies the
//! ordered AGS — across simulated one-way link latencies, including a
//! 1.3 ms setting whose round trip approximates the paper's 4 ms
//! ordering figure.

use criterion::{criterion_group, criterion_main, Criterion};
use ftlinda::{Ags, Cluster, MatchField as MF, NetConfig, Operand, TypeTag};
use std::time::Duration;

fn counter_ags(ts: ftlinda::TsId) -> Ags {
    Ags::builder()
        .guard_in(ts, vec![MF::actual("count"), MF::bind(TypeTag::Int)])
        .out(ts, vec![Operand::cst("count"), Operand::formal(0).add(1)])
        .build()
        .unwrap()
}

fn bench(c: &mut Criterion) {
    println!("\nE3 — end-to-end AGS latency (3 replicas), by one-way link latency:");
    let mut g = c.benchmark_group("e2e_ags_latency");
    g.sample_size(10);
    for (label, lat_us) in [
        ("0us", 0u64),
        ("100us", 100),
        ("500us", 500),
        ("1300us", 1300),
    ] {
        let cfg = if lat_us == 0 {
            NetConfig::instant()
        } else {
            NetConfig::lan(Duration::from_micros(lat_us))
        };
        // Batching off: a sequential closed-loop client would otherwise
        // measure the group-commit window (~100 µs queueing per submit),
        // not the ordering protocol. The batch-queueing cost is measured
        // separately below (and by the `batch_window` bench).
        let (cluster, rts) = Cluster::builder().hosts(3).net(cfg).no_batching().build();
        let ts = rts[0].create_stable_ts("main").unwrap();
        rts[0].out(ts, linda_tuple::tuple!("count", 0)).unwrap();
        let ags = counter_ags(ts);
        // Drive a non-coordinator client (host 1: submit hop + ordered
        // hop + apply), then read the pipeline's own per-stage
        // histograms — the printed numbers are what `/metrics` exports.
        let reps = 50;
        for _ in 0..reps {
            rts[1].execute(&ags).unwrap();
        }
        let total = linda_bench::stage_snapshot(&rts[1].obs(), "ftlinda_ags_total_seconds");
        linda_bench::print_row(
            &format!("one-way latency {label}"),
            format!(
                "{:>10.1} µs/AGS mean (p95 ≤ {:.0} µs)",
                total.mean().unwrap_or(0.0) * 1e6,
                total.p95().unwrap_or(0.0) * 1e6
            ),
        );
        if lat_us == 100 {
            // Full latency attribution at the paper-like setting: where
            // inside submit→order→execute→notify the time goes.
            println!("  stage attribution at 100 µs links (client host 1):");
            linda_bench::print_stage_attribution(&[rts[1].obs()]);
        }
        g.measurement_time(Duration::from_secs(2));
        g.bench_function(format!("latency_{label}"), |b| {
            b.iter(|| rts[1].execute(&ags).unwrap())
        });
        cluster.shutdown();
    }
    g.finish();

    // The queueing delay group commit adds for a sequential client, read
    // from the coordinator's own batch histograms: pipelined submits
    // amortize it, sequential ones pay up to the window per AGS.
    println!("\nE3c — batch queueing delay (default group commit, 0 µs links):");
    {
        let (cluster, rts) = Cluster::builder().hosts(3).build();
        let ts = rts[0].create_stable_ts("main").unwrap();
        rts[0].out(ts, linda_tuple::tuple!("count", 0)).unwrap();
        let ags = counter_ags(ts);
        for _ in 0..50 {
            rts[1].execute(&ags).unwrap();
        }
        let total = linda_bench::stage_snapshot(&rts[1].obs(), "ftlinda_ags_total_seconds");
        linda_bench::print_row("total with batching on", linda_bench::stage_cell(&total));
        // The flush histogram lives on the coordinator (host 0).
        let flush = linda_bench::stage_snapshot(&rts[0].obs(), "ftlinda_batch_flush_seconds");
        linda_bench::print_row(
            "batch open → flush (queueing)",
            linda_bench::stage_cell(&flush),
        );
        cluster.shutdown();
    }

    // Replica-count scaling at fixed latency (paper used 3 replicas).
    println!("\nE3b — AGS latency vs replica count (100 µs links):");
    let mut g = c.benchmark_group("e2e_replica_scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for n in [1u32, 2, 3, 5, 7] {
        let (cluster, rts) = Cluster::builder()
            .hosts(n)
            .net(NetConfig::lan(Duration::from_micros(100)))
            .no_batching()
            .build();
        let ts = rts[0].create_stable_ts("main").unwrap();
        rts[0].out(ts, linda_tuple::tuple!("count", 0)).unwrap();
        let ags = counter_ags(ts);
        let client = &rts[(n as usize) - 1];
        let reps = 50;
        for _ in 0..reps {
            client.execute(&ags).unwrap();
        }
        let total = linda_bench::stage_snapshot(&client.obs(), "ftlinda_ags_total_seconds");
        linda_bench::print_row(
            &format!("{n} replicas"),
            format!("{:>10.1} µs/AGS mean", total.mean().unwrap_or(0.0) * 1e6),
        );
        g.bench_function(format!("replicas_{n}"), |b| {
            b.iter(|| client.execute(&ags).unwrap())
        });
        cluster.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! HTTP-exporter smoke target for CI: boot a 3-member cluster, drive
//! enough traffic that every pipeline histogram has samples, print each
//! member's scrape address as a `MEMBER <host> <addr>` line, then keep
//! the cluster alive so an external scraper (`scripts/ci.sh` uses
//! `curl`) can hit `/metrics`, `/healthz`, `/events` and `/trace/<id>`.
//!
//! ```text
//! cargo run --example obs_http_smoke            # serve for 5 s
//! OBS_SMOKE_SECS=30 cargo run --example obs_http_smoke
//! ```
//!
//! A `TRACE <id>` line names one AGS whose span tree is complete across
//! the cluster, so the scraper can exercise `/trace/<id>` too.

use ftlinda::{Ags, Cluster, Operand};
use std::time::Duration;

fn main() {
    let secs: u64 = std::env::var("OBS_SMOKE_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let (cluster, rts) = Cluster::builder().hosts(3).build();
    let ts = rts[0].create_stable_ts("main").unwrap();

    // Concurrent submits so the batch histograms (`ftlinda_batch_size`,
    // `ftlinda_batch_flush_seconds`) get real samples under the default
    // group-commit config.
    let handles: Vec<_> = (0..32i64)
        .map(|i| {
            rts[(i % 3) as usize].execute_async(&Ags::out_one(
                ts,
                vec![Operand::cst("job"), Operand::cst(i)],
            ))
        })
        .collect();
    let sample_trace = handles[0].trace_id();
    for h in handles {
        h.wait().unwrap();
    }
    for rt in &rts {
        assert!(rt.wait_applied(rts[0].applied_seq(), Duration::from_secs(5)));
    }

    for rt in &rts {
        let addr = cluster
            .http_addr(rt.host())
            .expect("exporter bound for every member");
        println!("MEMBER {} {addr}", rt.host().0);
    }
    println!("TRACE {sample_trace}");
    println!("SERVING {secs}s");

    std::thread::sleep(Duration::from_secs(secs));
    cluster.shutdown();
    println!("DONE");
}

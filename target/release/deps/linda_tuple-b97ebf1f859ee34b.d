/root/repo/target/release/deps/linda_tuple-b97ebf1f859ee34b.d: crates/tuple/src/lib.rs crates/tuple/src/codec.rs crates/tuple/src/pattern.rs crates/tuple/src/signature.rs crates/tuple/src/tuple.rs crates/tuple/src/value.rs

/root/repo/target/release/deps/liblinda_tuple-b97ebf1f859ee34b.rlib: crates/tuple/src/lib.rs crates/tuple/src/codec.rs crates/tuple/src/pattern.rs crates/tuple/src/signature.rs crates/tuple/src/tuple.rs crates/tuple/src/value.rs

/root/repo/target/release/deps/liblinda_tuple-b97ebf1f859ee34b.rmeta: crates/tuple/src/lib.rs crates/tuple/src/codec.rs crates/tuple/src/pattern.rs crates/tuple/src/signature.rs crates/tuple/src/tuple.rs crates/tuple/src/value.rs

crates/tuple/src/lib.rs:
crates/tuple/src/codec.rs:
crates/tuple/src/pattern.rs:
crates/tuple/src/signature.rs:
crates/tuple/src/tuple.rs:
crates/tuple/src/value.rs:

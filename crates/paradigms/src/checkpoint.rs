//! Checkpoint/recovery on stable tuple spaces (paper §2.2).
//!
//! "Checkpoint and recovery is a technique based on saving key values in
//! stable storage so that an application process can recover to some
//! intermediate state following a failure." Stable tuple spaces *are*
//! that stable storage; the one subtlety is replacing the previous
//! checkpoint atomically, so a crash can never observe zero or two
//! checkpoints:
//!
//! ```text
//! ⟨ in(ts, "ckpt", key, ?old, ?oldver) ⇒ out(ts, "ckpt", key, new, oldver+1)
//! or true ⇒ out(ts, "ckpt", key, new, 0) ⟩
//! ```

use ftlinda::{Ags, FtError, MatchField as MF, Operand, Runtime, TsId};
use linda_tuple::{PatField, Pattern, TypeTag, Value};

/// A named, versioned checkpoint cell in a stable tuple space.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    ts: TsId,
    key: String,
}

impl Checkpoint {
    /// Bind to (not create) the checkpoint cell `key` in `ts`.
    pub fn new(ts: TsId, key: &str) -> Checkpoint {
        Checkpoint {
            ts,
            key: key.to_owned(),
        }
    }

    /// Atomically replace (or create) the checkpoint with `state`.
    /// Returns the new version number.
    pub fn save(&self, rt: &Runtime, state: Value) -> Result<i64, FtError> {
        let tag = state.type_tag();
        let ags = Ags::builder()
            .guard_in(
                self.ts,
                vec![
                    MF::actual("ckpt"),
                    MF::actual(self.key.as_str()),
                    MF::bind(tag),
                    MF::bind(TypeTag::Int),
                ],
            )
            .out(
                self.ts,
                vec![
                    Operand::cst("ckpt"),
                    Operand::cst(self.key.as_str()),
                    Operand::Const(state.clone()),
                    Operand::formal(1).add(1),
                ],
            )
            .or()
            .guard_true()
            .out(
                self.ts,
                vec![
                    Operand::cst("ckpt"),
                    Operand::cst(self.key.as_str()),
                    Operand::Const(state),
                    Operand::cst(0i64),
                ],
            )
            .build()?;
        let o = rt.execute(&ags)?;
        Ok(match o.branch {
            0 => o.bindings[1].as_int().expect("version") + 1,
            _ => 0,
        })
    }

    /// Read the latest checkpoint, if any: `(state, version)`.
    ///
    /// The caveat: the guard's `?state` formal must name the stored
    /// type — checkpoints are polymorphic cells, so recovery probes each
    /// plausible type. In practice applications checkpoint one type; this
    /// helper probes all of them for robustness.
    pub fn load(&self, rt: &Runtime) -> Result<Option<(Value, i64)>, FtError> {
        for tag in linda_tuple::TypeTag::ALL {
            let p = Pattern::new(vec![
                PatField::Actual(Value::Str("ckpt".into())),
                PatField::Actual(Value::Str(self.key.clone())),
                PatField::Formal(tag),
                PatField::Formal(TypeTag::Int),
            ]);
            if let Some(t) = rt.rdp(self.ts, &p)? {
                let ver = t[3].as_int().expect("version");
                return Ok(Some((t[2].clone(), ver)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftlinda::{Cluster, HostId};

    #[test]
    fn save_creates_then_versions() {
        let (cluster, rts) = Cluster::new(2);
        let ts = rts[0].create_stable_ts("ckpt").unwrap();
        let c = Checkpoint::new(ts, "job");
        assert_eq!(c.load(&rts[1]).unwrap(), None);
        assert_eq!(c.save(&rts[0], Value::Int(10)).unwrap(), 0);
        assert_eq!(c.save(&rts[1], Value::Int(20)).unwrap(), 1);
        assert_eq!(c.save(&rts[0], Value::Int(30)).unwrap(), 2);
        assert_eq!(c.load(&rts[1]).unwrap(), Some((Value::Int(30), 2)));
        // Exactly one checkpoint tuple ever exists.
        assert_eq!(rts[0].stable_len(ts), Some(1));
        cluster.shutdown();
    }

    #[test]
    fn checkpoint_survives_writer_crash() {
        let (cluster, rts) = Cluster::new(3);
        let ts = rts[0].create_stable_ts("ckpt").unwrap();
        let c = Checkpoint::new(ts, "progress");
        c.save(&rts[2], Value::Str("phase-3".into())).unwrap();
        cluster.crash(HostId(2));
        // Survivor recovers the crashed process's state.
        let (state, ver) = c.load(&rts[0]).unwrap().unwrap();
        assert_eq!(state, Value::Str("phase-3".into()));
        assert_eq!(ver, 0);
        // And resumes checkpointing from there.
        assert_eq!(c.save(&rts[0], Value::Str("phase-4".into())).unwrap(), 1);
        cluster.shutdown();
    }

    #[test]
    fn independent_keys() {
        let (cluster, rts) = Cluster::new(2);
        let ts = rts[0].create_stable_ts("ckpt").unwrap();
        let a = Checkpoint::new(ts, "a");
        let b = Checkpoint::new(ts, "b");
        a.save(&rts[0], Value::Int(1)).unwrap();
        b.save(&rts[0], Value::Float(2.0)).unwrap();
        assert_eq!(a.load(&rts[1]).unwrap(), Some((Value::Int(1), 0)));
        assert_eq!(b.load(&rts[1]).unwrap(), Some((Value::Float(2.0), 0)));
        cluster.shutdown();
    }

    #[test]
    fn type_change_across_saves() {
        let (cluster, rts) = Cluster::new(2);
        let ts = rts[0].create_stable_ts("ckpt").unwrap();
        let c = Checkpoint::new(ts, "k");
        c.save(&rts[0], Value::Int(1)).unwrap();
        // Saving a different type: the old-typed guard misses, so the
        // true branch creates a second cell — then the old one must be
        // cleaned by the caller. Assert the documented behaviour.
        c.save(&rts[0], Value::Str("s".into())).unwrap();
        assert_eq!(rts[0].stable_len(ts), Some(2));
        cluster.shutdown();
    }
}

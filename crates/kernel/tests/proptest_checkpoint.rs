//! Property tests for checkpointed state transfer: restoring a
//! checkpoint image and replaying the log tail must converge to exactly
//! the state (digest) of a full-log replay — for any random workload,
//! membership-change interleaving, and split point. This is the
//! correctness core of O(state) rejoin: a joiner fed `image + tail` is
//! indistinguishable from one that replayed all of history.

use bytes::Bytes;
use consul_sim::{Delivery, HostId};
use ftlinda_ags::{Ags, MatchField as MF, Operand, TsId};
use ftlinda_kernel::{encode_request, Kernel, Request};
use linda_tuple::TypeTag;
use proptest::prelude::*;

const HEADS: [&str; 3] = ["a", "b", "c"];

/// One step of the replicated history.
#[derive(Debug, Clone)]
enum Step {
    /// `origin` deposits `(head, v)`.
    Out { origin: u32, head: usize, v: i64 },
    /// `origin` withdraws `(head, ?int)` — may park in the blocked
    /// queue, which both the digest and the image cover.
    In { origin: u32, head: usize },
    /// A failure record is ordered: every kernel deposits failure
    /// tuples at this point.
    Fail { host: u32 },
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0u32..3, 0usize..3, 0i64..5)
                .prop_map(|(origin, head, v)| Step::Out { origin, head, v }),
            3 => (0u32..3, 0usize..3).prop_map(|(origin, head)| Step::In { origin, head }),
            1 => (0u32..3).prop_map(|host| Step::Fail { host }),
        ],
        1..40,
    )
}

/// Materialize the totally-ordered delivery stream for a step list:
/// a leading `CreateTs` then one delivery per step, seqs contiguous
/// from 1, per-origin local ids contiguous from 1.
fn deliveries(steps: &[Step]) -> Vec<Delivery> {
    let mut next_local = [1u64; 3];
    let mut out = vec![Delivery::App {
        seq: 1,
        origin: HostId(0),
        local: next_local[0],
        payload: Bytes::from(encode_request(&Request::CreateTs {
            name: "main".into(),
        })),
    }];
    next_local[0] += 1;
    for (i, s) in steps.iter().enumerate() {
        let seq = (i + 2) as u64;
        let d = match s {
            Step::Out { origin, head, v } => {
                let ags = Ags::out_one(TsId(0), vec![Operand::cst(HEADS[*head]), Operand::cst(*v)]);
                let local = next_local[*origin as usize];
                next_local[*origin as usize] += 1;
                Delivery::App {
                    seq,
                    origin: HostId(*origin),
                    local,
                    payload: Bytes::from(encode_request(&Request::Ags(ags))),
                }
            }
            Step::In { origin, head } => {
                let ags = Ags::in_one(
                    TsId(0),
                    vec![MF::actual(HEADS[*head]), MF::bind(TypeTag::Int)],
                )
                .unwrap();
                let local = next_local[*origin as usize];
                next_local[*origin as usize] += 1;
                Delivery::App {
                    seq,
                    origin: HostId(*origin),
                    local,
                    payload: Bytes::from(encode_request(&Request::Ags(ags))),
                }
            }
            Step::Fail { host } => Delivery::Fail {
                seq,
                host: HostId(*host),
            },
        };
        out.push(d);
    }
    out
}

fn fresh_kernel() -> Kernel {
    let (tx, rx) = crossbeam::channel::unbounded();
    // Notes are irrelevant here; keep the receiver alive via leak-free
    // drop at scope end (unbounded send never blocks).
    std::mem::forget(rx);
    Kernel::new(HostId(2), tx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn restore_plus_tail_equals_full_replay(
        steps in arb_steps(),
        split_raw in 0usize..4096,
    ) {
        let ds = deliveries(&steps);

        // Reference replica: full-history replay.
        let mut full = fresh_kernel();
        full.apply_all(&ds);

        // Checkpointing replica: replay a random prefix, snapshot.
        let split = split_raw % (ds.len() + 1);
        let mut ckpt = fresh_kernel();
        ckpt.apply_all(&ds[..split]);
        let image = ckpt.checkpoint();
        prop_assert_eq!(image.seq, ckpt.applied_seq());

        // Joining replica: restore the image, replay only the tail.
        let mut joiner = fresh_kernel();
        joiner.restore(&image).expect("own image must restore");
        prop_assert_eq!(joiner.digest(), ckpt.digest(), "restore reproduces state");
        prop_assert_eq!(joiner.applied_seq(), ckpt.applied_seq());
        joiner.apply_all(&ds[split..]);
        prop_assert_eq!(joiner.digest(), full.digest(), "tail replay must converge");
        prop_assert_eq!(joiner.applied_seq(), full.applied_seq());
    }

    #[test]
    fn census_and_gauges_match_recount_after_restore(
        steps in arb_steps(),
        split_raw in 0usize..4096,
    ) {
        // The per-signature occupancy census (and the gauge family fed
        // from it) is observability-only state, rebuilt rather than
        // checkpointed — after any random workload, and again after a
        // checkpoint/restore plus tail replay, it must equal an exact
        // recount of the store contents.
        let ds = deliveries(&steps);
        let split = split_raw % (ds.len() + 1);

        let reg = linda_obs::Registry::new();
        let mut k = fresh_kernel();
        k.attach_obs(&reg);
        k.apply_all(&ds[..split]);
        let image = k.checkpoint();
        k.restore(&image).expect("own image must restore");
        k.apply_all(&ds[split..]);

        let report = k.introspect();
        let gauges = reg.snapshot();
        let occupancy = gauges
            .gauge_family("ftlinda_ts_tuples")
            .expect("occupancy family registered");
        for space in &report.spaces {
            let tuples = k.snapshot(space.id).expect("space exists");
            prop_assert_eq!(space.tuples, tuples.len());
            // Exact recount, grouped by signature.
            let mut recount: std::collections::BTreeMap<String, usize> =
                std::collections::BTreeMap::new();
            for t in &tuples {
                *recount.entry(t.signature().to_string()).or_default() += 1;
            }
            let nonzero: std::collections::BTreeMap<String, usize> = space
                .signatures
                .iter()
                .filter(|occ| occ.count > 0)
                .map(|occ| (occ.signature.to_string(), occ.count))
                .collect();
            prop_assert_eq!(&nonzero, &recount, "census for space {}", space.name);
            for occ in &space.signatures {
                prop_assert!(occ.high_water >= occ.count);
                // The exported gauge child mirrors the census entry.
                let labels = linda_obs::render_labels(&[
                    ("space", space.name.as_str()),
                    ("signature", &occ.signature.to_string()),
                ]);
                prop_assert_eq!(
                    occupancy.get(&labels).copied(),
                    Some(occ.count as i64),
                    "gauge child {} for space {}", labels, space.name
                );
            }
        }
    }

    #[test]
    fn image_size_tracks_live_state_not_history(steps in arb_steps()) {
        // Replaying the same history twice doubles the record count but
        // (for this workload) at most doubles live tuples; the image of
        // state after N deposits-and-withdrawals must not encode the
        // history length. Sanity-check the O(state) claim at the codec
        // level: an image is no larger than a fresh replay of the same
        // final state.
        let ds = deliveries(&steps);
        let mut k = fresh_kernel();
        k.apply_all(&ds);
        let image = k.checkpoint();
        let mut k2 = fresh_kernel();
        k2.restore(&image).expect("restore");
        let again = k2.checkpoint();
        prop_assert_eq!(again.bytes.len(), image.bytes.len());
        prop_assert_eq!(again.digest, image.digest);
    }
}

#[test]
fn tampered_digest_is_refused_and_state_untouched() {
    let ds = deliveries(&[
        Step::Out {
            origin: 0,
            head: 0,
            v: 1,
        },
        Step::Out {
            origin: 1,
            head: 1,
            v: 2,
        },
    ]);
    let mut k = fresh_kernel();
    k.apply_all(&ds);
    let mut image = k.checkpoint();
    image.digest ^= 1;

    let mut victim = fresh_kernel();
    victim.apply_all(&ds[..1]);
    let (digest_before, applied_before) = (victim.digest(), victim.applied_seq());
    assert!(
        victim.restore(&image).is_err(),
        "tampered digest must refuse"
    );
    assert_eq!(
        victim.digest(),
        digest_before,
        "failed restore must not touch state"
    );
    assert_eq!(victim.applied_seq(), applied_before);
}

#[test]
fn truncated_image_is_refused_and_state_untouched() {
    let ds = deliveries(&[Step::Out {
        origin: 0,
        head: 2,
        v: 3,
    }]);
    let mut k = fresh_kernel();
    k.apply_all(&ds);
    let mut image = k.checkpoint();
    image.bytes = image.bytes.slice(..image.bytes.len() - 1);

    let mut victim = fresh_kernel();
    victim.apply_all(&ds);
    let digest_before = victim.digest();
    assert!(
        victim.restore(&image).is_err(),
        "truncated image must refuse"
    );
    assert_eq!(victim.digest(), digest_before);
}

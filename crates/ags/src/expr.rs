//! The deterministic expression language of AGS bodies.
//!
//! FT-Linda deliberately excludes arbitrary computation from atomic guarded
//! statements — that is what makes the single-multicast implementation
//! possible — but it does allow "simple function application" on values
//! bound by the guard (e.g. incrementing a distributed variable:
//! `⟨ in("count", ?old) ⇒ out("count", old + 1) ⟩`). [`Operand`] is that
//! language: constants, formal references, a few pure total-ish functions,
//! and two environment values (the submitting host id and the totally
//! ordered request sequence number, both identical at every replica).
//!
//! Every replica evaluates operands against the same bindings, so any
//! error (type mismatch, division by zero, index out of range) is also
//! deterministic and aborts the AGS identically everywhere.

use linda_tuple::{TypeTag, Value};
use std::fmt;

/// Pure functions available inside AGS bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Func {
    /// Addition (int+int, float+float).
    Add = 0,
    /// Subtraction.
    Sub = 1,
    /// Multiplication.
    Mul = 2,
    /// Division (int division truncates; division by zero aborts).
    Div = 3,
    /// Remainder (ints only).
    Mod = 4,
    /// Arithmetic negation.
    Neg = 5,
    /// Minimum of two numbers.
    Min = 6,
    /// Maximum of two numbers.
    Max = 7,
    /// Boolean not.
    Not = 8,
    /// Boolean and.
    And = 9,
    /// Boolean or.
    Or = 10,
    /// Equality on any two values of the same type.
    Eq = 11,
    /// Inequality.
    Ne = 12,
    /// Less-than on ints, floats (by numeric order), or strings.
    Lt = 13,
    /// Less-or-equal.
    Le = 14,
    /// Greater-than.
    Gt = 15,
    /// Greater-or-equal.
    Ge = 16,
    /// String concatenation.
    Concat = 17,
    /// Conditional: `If(cond, then, else)`.
    If = 18,
    /// Int → Float cast.
    ToFloat = 19,
    /// Float → Int cast (truncating; aborts on NaN/overflow).
    ToInt = 20,
}

impl Func {
    /// All functions in encoding order.
    pub const ALL: [Func; 21] = [
        Func::Add,
        Func::Sub,
        Func::Mul,
        Func::Div,
        Func::Mod,
        Func::Neg,
        Func::Min,
        Func::Max,
        Func::Not,
        Func::And,
        Func::Or,
        Func::Eq,
        Func::Ne,
        Func::Lt,
        Func::Le,
        Func::Gt,
        Func::Ge,
        Func::Concat,
        Func::If,
        Func::ToFloat,
        Func::ToInt,
    ];

    /// Decode from wire byte.
    pub fn from_u8(b: u8) -> Option<Func> {
        Func::ALL.get(b as usize).copied()
    }

    /// Number of arguments the function expects.
    pub fn arity(self) -> usize {
        match self {
            Func::Neg | Func::Not | Func::ToFloat | Func::ToInt => 1,
            Func::If => 3,
            _ => 2,
        }
    }
}

/// A value reference inside an AGS: evaluated identically at every replica.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A literal value.
    Const(Value),
    /// The i-th formal bound so far in this AGS branch (guard formals
    /// first, then formals of earlier body `in`/`rd` ops, in field order).
    Formal(u16),
    /// Function application.
    Apply(Func, Vec<Operand>),
    /// The id of the host that submitted the AGS (used to tag tuples with
    /// ownership, e.g. in-progress markers in the fault-tolerant
    /// bag-of-tasks).
    SelfHost,
    /// The global sequence number Consul assigned to this AGS — a
    /// replica-agreed unique id, handy for generating fresh task ids.
    RequestSeq,
}

// The arithmetic builder names (`add`, `sub`, …) deliberately mirror the
// AGS expression language rather than implementing `std::ops` — operands
// build an IR tree, they don't compute.
#[allow(clippy::should_implement_trait)]
impl Operand {
    /// Literal constructor.
    pub fn cst<V: Into<Value>>(v: V) -> Operand {
        Operand::Const(v.into())
    }

    /// Formal-reference constructor.
    pub fn formal(i: u16) -> Operand {
        Operand::Formal(i)
    }

    /// `self + rhs`.
    pub fn add(self, rhs: impl Into<Operand>) -> Operand {
        Operand::Apply(Func::Add, vec![self, rhs.into()])
    }
    /// `self - rhs`.
    pub fn sub(self, rhs: impl Into<Operand>) -> Operand {
        Operand::Apply(Func::Sub, vec![self, rhs.into()])
    }
    /// `self * rhs`.
    pub fn mul(self, rhs: impl Into<Operand>) -> Operand {
        Operand::Apply(Func::Mul, vec![self, rhs.into()])
    }
    /// `self / rhs`.
    pub fn div(self, rhs: impl Into<Operand>) -> Operand {
        Operand::Apply(Func::Div, vec![self, rhs.into()])
    }
    /// `min(self, rhs)`.
    pub fn min(self, rhs: impl Into<Operand>) -> Operand {
        Operand::Apply(Func::Min, vec![self, rhs.into()])
    }
    /// `max(self, rhs)`.
    pub fn max(self, rhs: impl Into<Operand>) -> Operand {
        Operand::Apply(Func::Max, vec![self, rhs.into()])
    }
    /// `self == rhs`.
    pub fn eq(self, rhs: impl Into<Operand>) -> Operand {
        Operand::Apply(Func::Eq, vec![self, rhs.into()])
    }
    /// `self < rhs`.
    pub fn lt(self, rhs: impl Into<Operand>) -> Operand {
        Operand::Apply(Func::Lt, vec![self, rhs.into()])
    }
    /// String concatenation.
    pub fn concat(self, rhs: impl Into<Operand>) -> Operand {
        Operand::Apply(Func::Concat, vec![self, rhs.into()])
    }

    /// Greatest formal index referenced (for validation).
    pub fn max_formal(&self) -> Option<u16> {
        match self {
            Operand::Const(_) | Operand::SelfHost | Operand::RequestSeq => None,
            Operand::Formal(i) => Some(*i),
            Operand::Apply(_, args) => args.iter().filter_map(Operand::max_formal).max(),
        }
    }
}

impl<V: Into<Value>> From<V> for Operand {
    fn from(v: V) -> Self {
        Operand::Const(v.into())
    }
}

/// Evaluation context: everything an operand may reference.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx<'a> {
    /// Formals bound so far in this branch.
    pub bindings: &'a [Value],
    /// Id of the submitting host.
    pub self_host: u32,
    /// Totally-ordered sequence number of the AGS.
    pub request_seq: u64,
}

/// Deterministic evaluation error; aborts the whole AGS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A formal index was out of range of the current bindings.
    UnboundFormal(u16),
    /// Arguments had types the function does not accept.
    TypeMismatch {
        /// The function applied.
        func: Func,
        /// Rendered argument types.
        got: String,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// Float → int cast of NaN or out-of-range value.
    BadCast,
    /// Wrong number of arguments to a function (builder bug).
    BadArity {
        /// The function applied.
        func: Func,
        /// Arguments supplied.
        got: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundFormal(i) => write!(f, "formal ?{i} not bound"),
            EvalError::TypeMismatch { func, got } => {
                write!(f, "{func:?} not applicable to ({got})")
            }
            EvalError::DivideByZero => write!(f, "division by zero"),
            EvalError::BadCast => write!(f, "invalid numeric cast"),
            EvalError::BadArity { func, got } => {
                write!(f, "{func:?} expects {} args, got {got}", func.arity())
            }
        }
    }
}

impl std::error::Error for EvalError {}

fn type_names(args: &[Value]) -> String {
    args.iter()
        .map(|v| v.type_tag().name())
        .collect::<Vec<_>>()
        .join(", ")
}

fn mismatch(func: Func, args: &[Value]) -> EvalError {
    EvalError::TypeMismatch {
        func,
        got: type_names(args),
    }
}

/// Apply `func` to already-evaluated arguments.
pub fn apply(func: Func, args: &[Value]) -> Result<Value, EvalError> {
    use Value::*;
    if args.len() != func.arity() {
        return Err(EvalError::BadArity {
            func,
            got: args.len(),
        });
    }
    Ok(match (func, args) {
        (Func::Add, [Int(a), Int(b)]) => Int(a.wrapping_add(*b)),
        (Func::Add, [Float(a), Float(b)]) => Float(a + b),
        (Func::Sub, [Int(a), Int(b)]) => Int(a.wrapping_sub(*b)),
        (Func::Sub, [Float(a), Float(b)]) => Float(a - b),
        (Func::Mul, [Int(a), Int(b)]) => Int(a.wrapping_mul(*b)),
        (Func::Mul, [Float(a), Float(b)]) => Float(a * b),
        (Func::Div, [Int(_), Int(0)]) => return Err(EvalError::DivideByZero),
        (Func::Div, [Int(a), Int(b)]) => Int(a.wrapping_div(*b)),
        (Func::Div, [Float(a), Float(b)]) => Float(a / b),
        (Func::Mod, [Int(_), Int(0)]) => return Err(EvalError::DivideByZero),
        (Func::Mod, [Int(a), Int(b)]) => Int(a.wrapping_rem(*b)),
        (Func::Neg, [Int(a)]) => Int(a.wrapping_neg()),
        (Func::Neg, [Float(a)]) => Float(-a),
        (Func::Min, [Int(a), Int(b)]) => Int(*a.min(b)),
        (Func::Min, [Float(a), Float(b)]) => Float(a.min(*b)),
        (Func::Max, [Int(a), Int(b)]) => Int(*a.max(b)),
        (Func::Max, [Float(a), Float(b)]) => Float(a.max(*b)),
        (Func::Not, [Bool(a)]) => Bool(!a),
        (Func::And, [Bool(a), Bool(b)]) => Bool(*a && *b),
        (Func::Or, [Bool(a), Bool(b)]) => Bool(*a || *b),
        (Func::Eq, [a, b]) => Bool(a == b),
        (Func::Ne, [a, b]) => Bool(a != b),
        (Func::Lt, [Int(a), Int(b)]) => Bool(a < b),
        (Func::Lt, [Float(a), Float(b)]) => Bool(a < b),
        (Func::Lt, [Str(a), Str(b)]) => Bool(a < b),
        (Func::Le, [Int(a), Int(b)]) => Bool(a <= b),
        (Func::Le, [Float(a), Float(b)]) => Bool(a <= b),
        (Func::Le, [Str(a), Str(b)]) => Bool(a <= b),
        (Func::Gt, [Int(a), Int(b)]) => Bool(a > b),
        (Func::Gt, [Float(a), Float(b)]) => Bool(a > b),
        (Func::Gt, [Str(a), Str(b)]) => Bool(a > b),
        (Func::Ge, [Int(a), Int(b)]) => Bool(a >= b),
        (Func::Ge, [Float(a), Float(b)]) => Bool(a >= b),
        (Func::Ge, [Str(a), Str(b)]) => Bool(a >= b),
        (Func::Concat, [Str(a), Str(b)]) => Str(format!("{a}{b}")),
        (Func::If, [Bool(c), t, e]) => {
            if *c {
                t.clone()
            } else {
                e.clone()
            }
        }
        (Func::ToFloat, [Int(a)]) => Float(*a as f64),
        (Func::ToInt, [Float(a)]) => {
            if a.is_nan() || *a < i64::MIN as f64 || *a > i64::MAX as f64 {
                return Err(EvalError::BadCast);
            }
            Int(*a as i64)
        }
        (Func::ToInt, [Int(a)]) => Int(*a),
        (Func::ToFloat, [Float(a)]) => Float(*a),
        (f, args) => return Err(mismatch(f, args)),
    })
}

impl Operand {
    /// Evaluate the operand in `ctx`.
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> Result<Value, EvalError> {
        match self {
            Operand::Const(v) => Ok(v.clone()),
            Operand::Formal(i) => ctx
                .bindings
                .get(*i as usize)
                .cloned()
                .ok_or(EvalError::UnboundFormal(*i)),
            Operand::SelfHost => Ok(Value::Int(ctx.self_host as i64)),
            Operand::RequestSeq => Ok(Value::Int(ctx.request_seq as i64)),
            Operand::Apply(f, args) => {
                let vals = args
                    .iter()
                    .map(|a| a.eval(ctx))
                    .collect::<Result<Vec<Value>, EvalError>>()?;
                apply(*f, &vals)
            }
        }
    }

    /// Static result type when it can be inferred without bindings
    /// (used by the builder for signature analysis of `out` templates).
    pub fn static_type(&self, formal_types: &[TypeTag]) -> Option<TypeTag> {
        match self {
            Operand::Const(v) => Some(v.type_tag()),
            Operand::Formal(i) => formal_types.get(*i as usize).copied(),
            Operand::SelfHost | Operand::RequestSeq => Some(TypeTag::Int),
            Operand::Apply(f, args) => {
                let a0 = args.first().and_then(|a| a.static_type(formal_types));
                match f {
                    Func::Not
                    | Func::And
                    | Func::Or
                    | Func::Eq
                    | Func::Ne
                    | Func::Lt
                    | Func::Le
                    | Func::Gt
                    | Func::Ge => Some(TypeTag::Bool),
                    Func::Concat => Some(TypeTag::Str),
                    Func::ToFloat => Some(TypeTag::Float),
                    Func::ToInt => Some(TypeTag::Int),
                    Func::If => args.get(1).and_then(|a| a.static_type(formal_types)),
                    _ => a0,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(b: &'a [Value]) -> EvalCtx<'a> {
        EvalCtx {
            bindings: b,
            self_host: 3,
            request_seq: 77,
        }
    }

    #[test]
    fn constants_and_formals() {
        let b = [Value::Int(10)];
        let c = ctx(&b);
        assert_eq!(Operand::cst(5).eval(&c), Ok(Value::Int(5)));
        assert_eq!(Operand::formal(0).eval(&c), Ok(Value::Int(10)));
        assert_eq!(
            Operand::formal(1).eval(&c),
            Err(EvalError::UnboundFormal(1))
        );
    }

    #[test]
    fn env_operands() {
        let c = ctx(&[]);
        assert_eq!(Operand::SelfHost.eval(&c), Ok(Value::Int(3)));
        assert_eq!(Operand::RequestSeq.eval(&c), Ok(Value::Int(77)));
    }

    #[test]
    fn arithmetic() {
        let b = [Value::Int(10)];
        let c = ctx(&b);
        assert_eq!(Operand::formal(0).add(1).eval(&c), Ok(Value::Int(11)));
        assert_eq!(Operand::cst(7).sub(2).eval(&c), Ok(Value::Int(5)));
        assert_eq!(Operand::cst(7).mul(2).eval(&c), Ok(Value::Int(14)));
        assert_eq!(Operand::cst(7).div(2).eval(&c), Ok(Value::Int(3)));
        assert_eq!(
            Operand::cst(2.0).add(Operand::cst(0.5)).eval(&c),
            Ok(Value::Float(2.5))
        );
        assert_eq!(Operand::cst(3).min(9).eval(&c), Ok(Value::Int(3)));
        assert_eq!(Operand::cst(3).max(9).eval(&c), Ok(Value::Int(9)));
    }

    #[test]
    fn wrapping_semantics_are_deterministic() {
        let c = ctx(&[]);
        assert_eq!(
            Operand::cst(i64::MAX).add(1).eval(&c),
            Ok(Value::Int(i64::MIN))
        );
    }

    #[test]
    fn divide_by_zero_aborts() {
        let c = ctx(&[]);
        assert_eq!(
            Operand::cst(1).div(0).eval(&c),
            Err(EvalError::DivideByZero)
        );
        assert_eq!(
            Operand::Apply(Func::Mod, vec![Operand::cst(1), Operand::cst(0)]).eval(&c),
            Err(EvalError::DivideByZero)
        );
    }

    #[test]
    fn comparisons_and_logic() {
        let c = ctx(&[]);
        assert_eq!(Operand::cst(1).lt(2).eval(&c), Ok(Value::Bool(true)));
        assert_eq!(
            Operand::cst("a").eq(Operand::cst("a")).eval(&c),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            Operand::Apply(Func::Not, vec![Operand::cst(true)]).eval(&c),
            Ok(Value::Bool(false))
        );
        assert_eq!(
            Operand::Apply(Func::And, vec![Operand::cst(true), Operand::cst(false)]).eval(&c),
            Ok(Value::Bool(false))
        );
        assert_eq!(
            Operand::Apply(Func::Or, vec![Operand::cst(true), Operand::cst(false)]).eval(&c),
            Ok(Value::Bool(true))
        );
    }

    #[test]
    fn string_ops() {
        let c = ctx(&[]);
        assert_eq!(
            Operand::cst("ab").concat(Operand::cst("cd")).eval(&c),
            Ok(Value::Str("abcd".into()))
        );
        assert_eq!(
            Operand::Apply(Func::Lt, vec![Operand::cst("a"), Operand::cst("b")]).eval(&c),
            Ok(Value::Bool(true))
        );
    }

    #[test]
    fn conditional() {
        let c = ctx(&[]);
        let e = Operand::Apply(
            Func::If,
            vec![Operand::cst(true), Operand::cst(1), Operand::cst(2)],
        );
        assert_eq!(e.eval(&c), Ok(Value::Int(1)));
    }

    #[test]
    fn casts() {
        let c = ctx(&[]);
        assert_eq!(
            Operand::Apply(Func::ToFloat, vec![Operand::cst(2)]).eval(&c),
            Ok(Value::Float(2.0))
        );
        assert_eq!(
            Operand::Apply(Func::ToInt, vec![Operand::cst(2.9)]).eval(&c),
            Ok(Value::Int(2))
        );
        assert_eq!(
            Operand::Apply(Func::ToInt, vec![Operand::cst(f64::NAN)]).eval(&c),
            Err(EvalError::BadCast)
        );
    }

    #[test]
    fn type_mismatch_reported() {
        let c = ctx(&[]);
        let e = Operand::cst(1).add(Operand::cst("x"));
        assert!(matches!(e.eval(&c), Err(EvalError::TypeMismatch { .. })));
    }

    #[test]
    fn bad_arity_reported() {
        let c = ctx(&[]);
        let e = Operand::Apply(Func::Add, vec![Operand::cst(1)]);
        assert_eq!(
            e.eval(&c),
            Err(EvalError::BadArity {
                func: Func::Add,
                got: 1
            })
        );
    }

    #[test]
    fn nested_expression() {
        let b = [Value::Int(4), Value::Int(6)];
        let c = ctx(&b);
        // (f0 + f1) * 2
        let e = Operand::formal(0).add(Operand::formal(1)).mul(2);
        assert_eq!(e.eval(&c), Ok(Value::Int(20)));
        assert_eq!(e.max_formal(), Some(1));
    }

    #[test]
    fn static_types() {
        let ft = [TypeTag::Int, TypeTag::Str];
        assert_eq!(
            Operand::formal(0).add(1).static_type(&ft),
            Some(TypeTag::Int)
        );
        assert_eq!(
            Operand::formal(1)
                .concat(Operand::cst("x"))
                .static_type(&ft),
            Some(TypeTag::Str)
        );
        assert_eq!(Operand::SelfHost.static_type(&[]), Some(TypeTag::Int));
        assert_eq!(Operand::cst(1).lt(2).static_type(&[]), Some(TypeTag::Bool));
        assert_eq!(Operand::formal(9).static_type(&ft), None);
    }

    #[test]
    fn func_roundtrip() {
        for f in Func::ALL {
            assert_eq!(Func::from_u8(f as u8), Some(f));
        }
        assert_eq!(Func::from_u8(99), None);
    }

    #[test]
    fn error_display() {
        assert!(EvalError::DivideByZero.to_string().contains("zero"));
        assert!(EvalError::UnboundFormal(2).to_string().contains("?2"));
    }
}

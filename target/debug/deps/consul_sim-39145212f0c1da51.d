/root/repo/target/debug/deps/consul_sim-39145212f0c1da51.d: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

/root/repo/target/debug/deps/consul_sim-39145212f0c1da51: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

crates/consul/src/lib.rs:
crates/consul/src/isis.rs:
crates/consul/src/net.rs:
crates/consul/src/order.rs:
crates/consul/src/sequencer.rs:
crates/consul/src/stats.rs:

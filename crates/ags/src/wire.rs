//! Wire encoding of complete AGSs.
//!
//! The implementation claim under test in experiment E9 is "one multicast
//! message per AGS". That message carries the whole statement; this module
//! defines its payload encoding so message sizes can be accounted
//! faithfully. Round-trips are exact.

use crate::ags_mod::{Ags, AgsError, Guard};
use crate::expr::{Func, Operand};
use crate::ops::{BodyOp, MatchField, ScratchId, SpaceRef, TsId};
use bytes::{Buf, BufMut};
use linda_tuple::{get_uvarint, get_value, put_uvarint, put_value, DecodeError, TypeTag};

/// Errors from decoding an AGS payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Underlying value/varint decoding failed.
    Codec(DecodeError),
    /// Unknown discriminant byte.
    BadDiscriminant(u8),
    /// Decoded AGS failed static validation (corrupt or hostile payload).
    Invalid(AgsError),
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Codec(e)
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Codec(e) => write!(f, "codec error: {e}"),
            WireError::BadDiscriminant(b) => write!(f, "bad discriminant {b:#04x}"),
            WireError::Invalid(e) => write!(f, "invalid AGS: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

fn need(buf: &impl Buf, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        return Err(WireError::Codec(DecodeError::UnexpectedEof));
    }
    Ok(())
}

fn put_space(buf: &mut impl BufMut, s: SpaceRef) {
    match s {
        SpaceRef::Stable(TsId(id)) => {
            buf.put_u8(0);
            put_uvarint(buf, id as u64);
        }
        SpaceRef::Scratch(ScratchId(id)) => {
            buf.put_u8(1);
            put_uvarint(buf, id as u64);
        }
    }
}

fn get_space(buf: &mut impl Buf) -> Result<SpaceRef, WireError> {
    need(buf, 1)?;
    let d = buf.get_u8();
    let id = get_uvarint(buf)? as u32;
    Ok(match d {
        0 => SpaceRef::Stable(TsId(id)),
        1 => SpaceRef::Scratch(ScratchId(id)),
        other => return Err(WireError::BadDiscriminant(other)),
    })
}

fn put_operand(buf: &mut impl BufMut, op: &Operand) {
    match op {
        Operand::Const(v) => {
            buf.put_u8(0);
            put_value(buf, v);
        }
        Operand::Formal(i) => {
            buf.put_u8(1);
            put_uvarint(buf, *i as u64);
        }
        Operand::Apply(f, args) => {
            buf.put_u8(2);
            buf.put_u8(*f as u8);
            put_uvarint(buf, args.len() as u64);
            for a in args {
                put_operand(buf, a);
            }
        }
        Operand::SelfHost => buf.put_u8(3),
        Operand::RequestSeq => buf.put_u8(4),
    }
}

fn get_operand(buf: &mut impl Buf) -> Result<Operand, WireError> {
    need(buf, 1)?;
    Ok(match buf.get_u8() {
        0 => Operand::Const(get_value(buf)?),
        1 => Operand::Formal(get_uvarint(buf)? as u16),
        2 => {
            need(buf, 1)?;
            let fb = buf.get_u8();
            let f = Func::from_u8(fb).ok_or(WireError::BadDiscriminant(fb))?;
            let n = get_uvarint(buf)? as usize;
            let mut args = Vec::with_capacity(n.min(16));
            for _ in 0..n {
                args.push(get_operand(buf)?);
            }
            Operand::Apply(f, args)
        }
        3 => Operand::SelfHost,
        4 => Operand::RequestSeq,
        other => return Err(WireError::BadDiscriminant(other)),
    })
}

fn put_fields(buf: &mut impl BufMut, fields: &[MatchField]) {
    put_uvarint(buf, fields.len() as u64);
    for f in fields {
        match f {
            MatchField::Bind(t) => {
                buf.put_u8(0);
                buf.put_u8(*t as u8);
            }
            MatchField::Expr(op) => {
                buf.put_u8(1);
                put_operand(buf, op);
            }
        }
    }
}

fn get_fields(buf: &mut impl Buf) -> Result<Vec<MatchField>, WireError> {
    let n = get_uvarint(buf)? as usize;
    let mut fields = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => {
                need(buf, 1)?;
                let tb = buf.get_u8();
                fields.push(MatchField::Bind(
                    TypeTag::from_u8(tb).ok_or(WireError::BadDiscriminant(tb))?,
                ));
            }
            1 => fields.push(MatchField::Expr(get_operand(buf)?)),
            other => return Err(WireError::BadDiscriminant(other)),
        }
    }
    Ok(fields)
}

fn put_body_op(buf: &mut impl BufMut, op: &BodyOp) {
    match op {
        BodyOp::Out { ts, template } => {
            buf.put_u8(0);
            put_space(buf, *ts);
            put_uvarint(buf, template.len() as u64);
            for o in template {
                put_operand(buf, o);
            }
        }
        BodyOp::In { ts, pattern } => {
            buf.put_u8(1);
            put_space(buf, *ts);
            put_fields(buf, pattern);
        }
        BodyOp::Rd { ts, pattern } => {
            buf.put_u8(2);
            put_space(buf, *ts);
            put_fields(buf, pattern);
        }
        BodyOp::Move { from, to, pattern } => {
            buf.put_u8(3);
            put_space(buf, *from);
            put_space(buf, *to);
            put_fields(buf, pattern);
        }
        BodyOp::Copy { from, to, pattern } => {
            buf.put_u8(4);
            put_space(buf, *from);
            put_space(buf, *to);
            put_fields(buf, pattern);
        }
    }
}

fn get_body_op(buf: &mut impl Buf) -> Result<BodyOp, WireError> {
    need(buf, 1)?;
    Ok(match buf.get_u8() {
        0 => {
            let ts = get_space(buf)?;
            let n = get_uvarint(buf)? as usize;
            let mut template = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                template.push(get_operand(buf)?);
            }
            BodyOp::Out { ts, template }
        }
        1 => BodyOp::In {
            ts: get_space(buf)?,
            pattern: get_fields(buf)?,
        },
        2 => BodyOp::Rd {
            ts: get_space(buf)?,
            pattern: get_fields(buf)?,
        },
        3 => {
            let from = get_space(buf)?;
            let to = get_space(buf)?;
            BodyOp::Move {
                from,
                to,
                pattern: get_fields(buf)?,
            }
        }
        4 => {
            let from = get_space(buf)?;
            let to = get_space(buf)?;
            BodyOp::Copy {
                from,
                to,
                pattern: get_fields(buf)?,
            }
        }
        other => return Err(WireError::BadDiscriminant(other)),
    })
}

fn put_guard(buf: &mut impl BufMut, g: &Guard) {
    match g {
        Guard::True => buf.put_u8(0),
        Guard::In { ts, pattern } => {
            buf.put_u8(1);
            put_space(buf, *ts);
            put_fields(buf, pattern);
        }
        Guard::Rd { ts, pattern } => {
            buf.put_u8(2);
            put_space(buf, *ts);
            put_fields(buf, pattern);
        }
    }
}

fn get_guard(buf: &mut impl Buf) -> Result<Guard, WireError> {
    need(buf, 1)?;
    Ok(match buf.get_u8() {
        0 => Guard::True,
        1 => Guard::In {
            ts: get_space(buf)?,
            pattern: get_fields(buf)?,
        },
        2 => Guard::Rd {
            ts: get_space(buf)?,
            pattern: get_fields(buf)?,
        },
        other => return Err(WireError::BadDiscriminant(other)),
    })
}

/// Encode an AGS into `buf`.
pub fn put_ags(buf: &mut impl BufMut, ags: &Ags) {
    put_uvarint(buf, ags.branches.len() as u64);
    for b in &ags.branches {
        put_guard(buf, &b.guard);
        put_uvarint(buf, b.body.len() as u64);
        for op in &b.body {
            put_body_op(buf, op);
        }
    }
}

/// Decode an AGS and re-run static validation (a corrupt or hostile
/// payload must never reach the state machine).
pub fn get_ags(buf: &mut impl Buf) -> Result<Ags, WireError> {
    let nb = get_uvarint(buf)? as usize;
    let mut builder = crate::ags_mod::AgsBuilder::new();
    let mut first = true;
    for _ in 0..nb {
        if !first {
            builder = builder.or();
        }
        first = false;
        let guard = get_guard(buf)?;
        builder = match guard {
            Guard::True => builder.guard_true(),
            Guard::In { ts, pattern } => builder.guard_in(ts, pattern),
            Guard::Rd { ts, pattern } => builder.guard_rd(ts, pattern),
        };
        let nops = get_uvarint(buf)? as usize;
        for _ in 0..nops {
            builder = match get_body_op(buf)? {
                BodyOp::Out { ts, template } => builder.out(ts, template),
                BodyOp::In { ts, pattern } => builder.in_(ts, pattern),
                BodyOp::Rd { ts, pattern } => builder.rd(ts, pattern),
                BodyOp::Move { from, to, pattern } => builder.move_(from, to, pattern),
                BodyOp::Copy { from, to, pattern } => builder.copy(from, to, pattern),
            };
        }
    }
    builder.build().map_err(WireError::Invalid)
}

/// Encode into a fresh vector.
pub fn encode_ags(ags: &Ags) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_ags(&mut buf, ags);
    buf
}

/// Decode from a slice, requiring full consumption.
pub fn decode_ags(mut bytes: &[u8]) -> Result<Ags, WireError> {
    let ags = get_ags(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(WireError::Codec(DecodeError::LengthOverrun {
            declared: 0,
            remaining: bytes.len(),
        }));
    }
    Ok(ags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linda_tuple::TypeTag::*;

    fn sample_ags() -> Ags {
        Ags::builder()
            .guard_in(
                TsId(3),
                vec![MatchField::actual("count"), MatchField::bind(Int)],
            )
            .out(
                TsId(3),
                vec![
                    Operand::cst("count"),
                    Operand::formal(0).add(1),
                    Operand::SelfHost,
                    Operand::RequestSeq,
                ],
            )
            .move_(TsId(3), ScratchId(1), vec![MatchField::bind(Str)])
            .copy(TsId(3), TsId(4), vec![MatchField::actual(1.5)])
            .or()
            .guard_rd(TsId(4), vec![MatchField::bind(Float)])
            .in_(TsId(4), vec![MatchField::Expr(Operand::formal(0))])
            .or()
            .guard_true()
            .out(ScratchId(0), vec![Operand::cst(false)])
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip_rich_ags() {
        let ags = sample_ags();
        let enc = encode_ags(&ags);
        let back = decode_ags(&enc).unwrap();
        assert_eq!(back, ags);
    }

    #[test]
    fn roundtrip_minimal() {
        let ags = Ags::out_one(TsId(0), vec![Operand::cst(1)]);
        assert_eq!(decode_ags(&encode_ags(&ags)).unwrap(), ags);
    }

    #[test]
    fn roundtrip_all_convenience_forms() {
        for ags in [
            Ags::in_one(TsId(0), vec![MatchField::bind(Int)]).unwrap(),
            Ags::rd_one(TsId(0), vec![MatchField::bind(Bytes)]).unwrap(),
            Ags::inp_one(TsId(0), vec![MatchField::actual('c')]).unwrap(),
            Ags::rdp_one(TsId(0), vec![MatchField::bind(Bool)]).unwrap(),
        ] {
            assert_eq!(decode_ags(&encode_ags(&ags)).unwrap(), ags);
        }
    }

    #[test]
    fn truncation_fails() {
        let enc = encode_ags(&sample_ags());
        for cut in 0..enc.len() {
            assert!(decode_ags(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_fails() {
        let mut enc = encode_ags(&Ags::out_one(TsId(0), vec![Operand::cst(1)]));
        enc.push(0);
        assert!(decode_ags(&enc).is_err());
    }

    #[test]
    fn hostile_invalid_ags_rejected_on_decode() {
        // Encode an AGS whose guard targets a scratch space by bypassing
        // the builder: craft the bytes directly.
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 1); // 1 branch
        buf.push(1); // guard = In
        buf.push(1); // space = scratch
        put_uvarint(&mut buf, 0); // scratch id 0
        put_uvarint(&mut buf, 0); // 0 pattern fields
        put_uvarint(&mut buf, 0); // 0 body ops
        assert!(matches!(
            decode_ags(&buf),
            Err(WireError::Invalid(AgsError::GuardOnScratch))
        ));
    }

    #[test]
    fn bad_discriminants_rejected() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 1);
        buf.push(9); // bogus guard discriminant
        assert!(matches!(
            decode_ags(&buf),
            Err(WireError::BadDiscriminant(9))
        ));
    }

    #[test]
    fn message_grows_with_ops_but_stays_one_message() {
        // Size accounting sanity: body length increases payload size
        // monotonically. (The message *count* claim is tested in the
        // kernel/bench crates.)
        let mut sizes = Vec::new();
        for nops in 1..6 {
            let mut b = Ags::builder().guard_true();
            for i in 0..nops {
                b = b.out(TsId(0), vec![Operand::cst("x"), Operand::cst(i as i64)]);
            }
            sizes.push(encode_ags(&b.build().unwrap()).len());
        }
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn error_display() {
        assert!(WireError::BadDiscriminant(3).to_string().contains("0x03"));
        assert!(WireError::Invalid(AgsError::NoBranches)
            .to_string()
            .contains("invalid"));
    }
}

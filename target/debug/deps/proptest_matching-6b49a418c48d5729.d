/root/repo/target/debug/deps/proptest_matching-6b49a418c48d5729.d: tests/proptest_matching.rs

/root/repo/target/debug/deps/proptest_matching-6b49a418c48d5729: tests/proptest_matching.rs

tests/proptest_matching.rs:

/root/repo/target/debug/deps/fig_barrier-6cecd87073f9f160.d: crates/bench/benches/fig_barrier.rs Cargo.toml

/root/repo/target/debug/deps/libfig_barrier-6cecd87073f9f160.rmeta: crates/bench/benches/fig_barrier.rs Cargo.toml

crates/bench/benches/fig_barrier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

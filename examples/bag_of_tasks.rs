//! Fault-tolerant bag-of-tasks: count primes in ranges while a worker
//! host crashes mid-computation (paper §2.3/§4, Figures 4/5/13).
//!
//! Four hosts run: host 0 is the master + monitor, hosts 1–3 run worker
//! processes. Halfway through, host 3 is crashed; its in-progress range
//! returns to the bag via the failure-tuple monitor and the run still
//! produces the exact prime count.
//!
//! ```text
//! cargo run --example bag_of_tasks
//! ```

use ftlinda::{Cluster, HostId, Value};
use linda_paradigms::BagOfTasks;
use std::time::Duration;

fn count_primes(lo: i64, hi: i64) -> i64 {
    (lo..hi)
        .filter(|&n| {
            if n < 2 {
                return false;
            }
            let mut d = 2;
            while d * d <= n {
                if n % d == 0 {
                    return false;
                }
                d += 1;
            }
            true
        })
        .count() as i64
}

fn main() {
    let (cluster, rts) = Cluster::new(4);
    let bag = BagOfTasks::create(&rts[0], "primes").unwrap();

    // 24 ranges of 2 000 numbers each.
    let ranges: Vec<Value> = (0..24)
        .map(|i| Value::Tuple(vec![Value::Int(i * 2000), Value::Int((i + 1) * 2000)]))
        .collect();
    let ids = bag.seed(&rts[0], 0, ranges).unwrap();
    println!("seeded {} subtasks", ids.len());

    // The monitor blocks on failure tuples and returns a dead worker's
    // in-progress subtasks to the bag.
    let monitor = bag.spawn_monitor(rts[0].clone());

    let work = |payload: &Value| {
        let f = payload.as_tuple().unwrap();
        let (lo, hi) = (f[0].as_int().unwrap(), f[1].as_int().unwrap());
        std::thread::sleep(Duration::from_millis(5)); // make work visible
        Value::Int(count_primes(lo, hi))
    };
    let _workers: Vec<_> = (1..4)
        .map(|h| bag.spawn_worker(rts[h].clone(), work))
        .collect();

    // Let the workers get going, then kill host 3 mid-task.
    std::thread::sleep(Duration::from_millis(40));
    println!("crashing host3 while it holds work...");
    cluster.crash(HostId(3));

    let results = bag.collect(&rts[0], &ids).unwrap();
    let total: i64 = results.values().map(|v| v.as_int().unwrap()).sum();
    let expected = count_primes(0, 48_000);
    println!("primes below 48000: {total} (expected {expected})");
    assert_eq!(total, expected, "no subtask was lost to the crash");

    bag.stop_monitor(&rts[0]).unwrap();
    let recovered = monitor.join().unwrap();
    println!("monitor handled {recovered} failure(s) — done.");
    bag.poison(&rts[0]).unwrap();
    cluster.shutdown();
}

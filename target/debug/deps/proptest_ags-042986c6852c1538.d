/root/repo/target/debug/deps/proptest_ags-042986c6852c1538.d: crates/ags/tests/proptest_ags.rs

/root/repo/target/debug/deps/proptest_ags-042986c6852c1538: crates/ags/tests/proptest_ags.rs

crates/ags/tests/proptest_ags.rs:

//! Barriers and consensus in tuple space, with a crash between rounds.
//!
//! Three hosts iterate a phased computation separated by tuple-space
//! barriers, then run one-shot consensus (the paper's "impossible with
//! single-op atomicity" example) to agree on a leader, and finally
//! observe a crash through the failure tuple without losing barrier
//! state for the survivors.
//!
//! ```text
//! cargo run --example barrier_failures
//! ```

use ftlinda::{Cluster, HostId};
use linda_paradigms::{consensus, TsBarrier};
use linda_tuple::pat;

fn main() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("sync").unwrap();

    // ----- phased computation over 3 barrier rounds ----------------------
    let bar = TsBarrier::create(&rts[0], ts, 3).unwrap();
    let workers: Vec<_> = rts
        .iter()
        .enumerate()
        .map(|(i, rt)| {
            let rt = rt.clone();
            std::thread::spawn(move || {
                for gen in 0..3 {
                    // ... phase work would happen here ...
                    bar.wait(&rt, gen).unwrap();
                    if i == 0 {
                        println!("all parties passed barrier generation {gen}");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // ----- consensus on a leader -----------------------------------------
    let decisions: Vec<_> = rts
        .iter()
        .enumerate()
        .map(|(i, rt)| {
            let rt = rt.clone();
            std::thread::spawn(move || consensus::propose(&rt, ts, "leader", i as i64).unwrap())
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    println!("leader decisions: {decisions:?}");
    assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement");
    let leader = decisions[0];

    // ----- a crash is observable as a tuple ------------------------------
    let victim = (leader as u32 + 1) % 3; // crash a non-leader
    println!("crashing host{victim}...");
    cluster.crash(HostId(victim));
    let survivor = rts.iter().find(|r| r.host().0 != victim).unwrap();
    let f = survivor.in_(ts, &pat!("failure", ?int)).unwrap();
    println!("failure tuple: {f}");
    assert_eq!(f[1].as_int().unwrap(), victim as i64);

    // Barrier/consensus state survives (stable TS): the decision remains.
    assert_eq!(
        consensus::decided(survivor, ts, "leader").unwrap(),
        Some(leader)
    );
    println!("consensus decision survived the crash — done.");
    cluster.shutdown();
}

/root/repo/target/release/deps/consul_sim-6d025b6f31c2dce3.d: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

/root/repo/target/release/deps/libconsul_sim-6d025b6f31c2dce3.rlib: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

/root/repo/target/release/deps/libconsul_sim-6d025b6f31c2dce3.rmeta: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

crates/consul/src/lib.rs:
crates/consul/src/isis.rs:
crates/consul/src/net.rs:
crates/consul/src/order.rs:
crates/consul/src/sequencer.rs:
crates/consul/src/stats.rs:

/root/repo/target/debug/deps/e2e_ags_latency-c5b0c2f39fb54530.d: crates/bench/benches/e2e_ags_latency.rs

/root/repo/target/debug/deps/e2e_ags_latency-c5b0c2f39fb54530: crates/bench/benches/e2e_ags_latency.rs

crates/bench/benches/e2e_ags_latency.rs:

/root/repo/target/release/deps/rand-b9c393adcde8c3ea.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-b9c393adcde8c3ea.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-b9c393adcde8c3ea.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:

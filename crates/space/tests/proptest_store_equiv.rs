//! Determinism equivalence across store implementations.
//!
//! The replicated kernel depends on every store returning the *same*
//! tuple for the same operation stream (oldest-match). The adaptive
//! machinery — value-level secondary indexes, the miss cache, and the
//! linear → indexed promotion — is all derived state and must be
//! invisible in results. This suite drives `IndexedStore` (with an
//! aggressive config: promotion on any probe, a tiny miss cache that
//! forces epoch evictions) and `AdaptiveStore` against the `LinearStore`
//! baseline under arbitrary interleavings of `out`/`take`/`read`/
//! `take_all`/`read_all`/`count` and checkpoint/restore cycles, asserting
//! byte-identical results and identical withdraw order throughout.

use linda_space::{AdaptiveStore, IndexedStore, LinearStore, Store, StoreConfig};
use linda_tuple::{tuple, PatField, Pattern, TypeTag, Value};
use proptest::prelude::*;

const HEADS: [&str; 3] = ["a", "b", "c"];

/// Promote on any probe, keep the miss cache tiny so epoch evictions
/// happen constantly — the most adversarial setting for the derived
/// state, worthless for performance, perfect for equivalence testing.
fn aggressive() -> StoreConfig {
    StoreConfig {
        promote_after_probes: 0,
        promote_min_tuples: 2,
        promote_below_bp: 10_000,
        max_value_indexes: 4,
        miss_cache_cap: 3,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Out(u8, i8),
    Take(Option<u8>, Option<i8>),
    Read(Option<u8>, Option<i8>),
    TakeAll(Option<u8>, Option<i8>),
    ReadAll(Option<u8>, Option<i8>),
    Count(Option<u8>, Option<i8>),
    /// Snapshot all stores (asserting the snapshots agree) and rebuild
    /// each from the snapshot — the checkpoint/restore path, which
    /// resets every piece of derived state.
    CheckpointRestore,
}

/// `None` → formal (`?str` / `?int`), `Some` → constant field.
fn pattern(head: Option<u8>, v: Option<i8>) -> Pattern {
    let f0 = match head {
        Some(h) => PatField::Actual(Value::from(HEADS[h as usize % HEADS.len()])),
        None => PatField::Formal(TypeTag::Str),
    };
    let f1 = match v {
        Some(v) => PatField::Actual(Value::from(v as i64)),
        None => PatField::Formal(TypeTag::Int),
    };
    Pattern::new(vec![f0, f1])
}

fn selector() -> impl Strategy<Value = (Option<u8>, Option<i8>)> {
    (
        proptest::option::of(0u8..HEADS.len() as u8),
        proptest::option::of(0i8..4),
    )
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..HEADS.len() as u8, 0i8..4).prop_map(|(h, v)| Op::Out(h, v)),
        2 => selector().prop_map(|(h, v)| Op::Take(h, v)),
        2 => selector().prop_map(|(h, v)| Op::Read(h, v)),
        1 => selector().prop_map(|(h, v)| Op::TakeAll(h, v)),
        1 => selector().prop_map(|(h, v)| Op::ReadAll(h, v)),
        1 => selector().prop_map(|(h, v)| Op::Count(h, v)),
        1 => Just(Op::CheckpointRestore),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn adaptive_stores_equal_linear_baseline(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut idx = IndexedStore::with_config(aggressive());
        let mut ada = AdaptiveStore::with_config(aggressive());
        let mut lin = LinearStore::new();
        for op in &ops {
            match op {
                Op::Out(h, v) => {
                    let t = tuple!(HEADS[*h as usize % HEADS.len()], *v as i64);
                    idx.insert(t.clone());
                    ada.insert(t.clone());
                    lin.insert(t);
                }
                Op::Take(h, v) => {
                    let p = pattern(*h, *v);
                    let want = lin.take(&p);
                    prop_assert_eq!(idx.take(&p), want.clone());
                    prop_assert_eq!(ada.take(&p), want);
                }
                Op::Read(h, v) => {
                    let p = pattern(*h, *v);
                    let want = lin.read(&p);
                    prop_assert_eq!(idx.read(&p), want.clone());
                    prop_assert_eq!(ada.read(&p), want);
                }
                Op::TakeAll(h, v) => {
                    let p = pattern(*h, *v);
                    let want = lin.take_all(&p);
                    prop_assert_eq!(idx.take_all(&p), want.clone());
                    prop_assert_eq!(ada.take_all(&p), want);
                }
                Op::ReadAll(h, v) => {
                    let p = pattern(*h, *v);
                    let want = lin.read_all(&p);
                    prop_assert_eq!(idx.read_all(&p), want.clone());
                    prop_assert_eq!(ada.read_all(&p), want);
                }
                Op::Count(h, v) => {
                    let p = pattern(*h, *v);
                    let want = lin.count(&p);
                    prop_assert_eq!(idx.count(&p), want);
                    prop_assert_eq!(ada.count(&p), want);
                }
                Op::CheckpointRestore => {
                    let snap = lin.snapshot();
                    prop_assert_eq!(idx.snapshot(), snap.clone());
                    prop_assert_eq!(ada.snapshot(), snap.clone());
                    idx = IndexedStore::with_config(aggressive());
                    ada = AdaptiveStore::with_config(aggressive());
                    lin = LinearStore::new();
                    for t in snap {
                        idx.insert(t.clone());
                        ada.insert(t.clone());
                        lin.insert(t);
                    }
                }
            }
            ada.tick();
            prop_assert_eq!(idx.len(), lin.len());
            prop_assert_eq!(ada.len(), lin.len());
        }
        prop_assert_eq!(idx.snapshot(), lin.snapshot());
        prop_assert_eq!(ada.snapshot(), lin.snapshot());
    }
}

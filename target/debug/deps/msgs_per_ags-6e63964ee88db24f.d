/root/repo/target/debug/deps/msgs_per_ags-6e63964ee88db24f.d: crates/bench/benches/msgs_per_ags.rs Cargo.toml

/root/repo/target/debug/deps/libmsgs_per_ags-6e63964ee88db24f.rmeta: crates/bench/benches/msgs_per_ags.rs Cargo.toml

crates/bench/benches/msgs_per_ags.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

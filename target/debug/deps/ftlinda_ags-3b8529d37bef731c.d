/root/repo/target/debug/deps/ftlinda_ags-3b8529d37bef731c.d: crates/ags/src/lib.rs crates/ags/src/ags.rs crates/ags/src/expr.rs crates/ags/src/ops.rs crates/ags/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libftlinda_ags-3b8529d37bef731c.rmeta: crates/ags/src/lib.rs crates/ags/src/ags.rs crates/ags/src/expr.rs crates/ags/src/ops.rs crates/ags/src/wire.rs Cargo.toml

crates/ags/src/lib.rs:
crates/ags/src/ags.rs:
crates/ags/src/expr.rs:
crates/ags/src/ops.rs:
crates/ags/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

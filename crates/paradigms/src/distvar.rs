//! The distributed shared variable (paper §2.3, Figure 2/3).
//!
//! A variable shared through tuple space is a tuple `(name, value)`:
//! initialize with `out`, inspect with `rd`, and update with `in` + `out`.
//! The paper's motivating failure: in plain Linda a process that crashes
//! between the `in` and the `out` *loses the variable* — every other
//! updater blocks forever. FT-Linda's fix is to make the `in`+`out` one
//! atomic guarded statement. Both forms are provided here so the E4
//! experiment can demonstrate the window.

use ftlinda::{Ags, FtError, MatchField as MF, Operand, Runtime, TsId};
use linda_tuple::{PatField, Pattern, TypeTag, Value};

/// A distributed integer variable stored as `(name, value)` in a stable
/// tuple space.
#[derive(Debug, Clone)]
pub struct DistVar {
    ts: TsId,
    name: String,
}

impl DistVar {
    /// Create the variable with an initial value (idempotent `out`).
    pub fn create(rt: &Runtime, ts: TsId, name: &str, init: i64) -> Result<DistVar, FtError> {
        rt.execute(&Ags::out_one(
            ts,
            vec![Operand::cst(name), Operand::cst(init)],
        ))?;
        Ok(DistVar {
            ts,
            name: name.to_owned(),
        })
    }

    /// Bind to an existing variable without initializing it.
    pub fn attach(ts: TsId, name: &str) -> DistVar {
        DistVar {
            ts,
            name: name.to_owned(),
        }
    }

    fn pattern(&self) -> Pattern {
        Pattern::new(vec![
            PatField::Actual(Value::Str(self.name.clone())),
            PatField::Formal(TypeTag::Int),
        ])
    }

    /// Read the current value (blocking `rd`).
    pub fn read(&self, rt: &Runtime) -> Result<i64, FtError> {
        let t = rt.rd(self.ts, &self.pattern())?;
        Ok(t[1].as_int().expect("int variable"))
    }

    /// Atomically apply `old → f(old)` where `f` is expressed in the AGS
    /// operand language; returns the *old* value. This is the paper's
    /// Figure 3: `⟨ in(name, ?old) ⇒ out(name, f(old)) ⟩` — one multicast,
    /// crash-safe.
    pub fn update(&self, rt: &Runtime, f: impl FnOnce(Operand) -> Operand) -> Result<i64, FtError> {
        let ags = Ags::builder()
            .guard_in(
                self.ts,
                vec![MF::actual(self.name.as_str()), MF::bind(TypeTag::Int)],
            )
            .out(
                self.ts,
                vec![Operand::cst(self.name.as_str()), f(Operand::formal(0))],
            )
            .build()?;
        let out = rt.execute(&ags)?;
        Ok(out.bindings[0].as_int().expect("int variable"))
    }

    /// Atomic add; returns the old value.
    pub fn fetch_add(&self, rt: &Runtime, delta: i64) -> Result<i64, FtError> {
        self.update(rt, |old| old.add(delta))
    }

    /// Atomic set; returns the old value.
    pub fn swap(&self, rt: &Runtime, value: i64) -> Result<i64, FtError> {
        self.update(rt, move |_| Operand::cst(value))
    }

    /// **Deliberately unsafe** two-step update in the style of plain
    /// Linda (paper Figure 2): withdraw, compute in the application, then
    /// deposit. If `crash_between` is true the second half is skipped,
    /// reproducing the lost-variable failure for experiment E4.
    pub fn update_unsafe_two_step(
        &self,
        rt: &Runtime,
        f: impl FnOnce(i64) -> i64,
        crash_between: bool,
    ) -> Result<Option<i64>, FtError> {
        let t = rt.in_(self.ts, &self.pattern())?;
        let old = t[1].as_int().expect("int variable");
        if crash_between {
            // The "process" dies holding the variable: nothing is
            // deposited and the tuple is gone.
            return Ok(None);
        }
        rt.out(
            self.ts,
            linda_tuple::Tuple::new(vec![Value::Str(self.name.clone()), Value::Int(f(old))]),
        )?;
        Ok(Some(old))
    }

    /// The variable's tuple space.
    pub fn ts(&self) -> TsId {
        self.ts
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftlinda::Cluster;
    use linda_tuple::pat;
    use std::time::Duration;

    #[test]
    fn create_read_update() {
        let (cluster, rts) = Cluster::new(2);
        let ts = rts[0].create_stable_ts("vars").unwrap();
        let v = DistVar::create(&rts[0], ts, "x", 10).unwrap();
        assert_eq!(v.read(&rts[1]).unwrap(), 10);
        assert_eq!(v.fetch_add(&rts[1], 5).unwrap(), 10);
        assert_eq!(v.read(&rts[0]).unwrap(), 15);
        assert_eq!(v.swap(&rts[0], 100).unwrap(), 15);
        assert_eq!(v.read(&rts[0]).unwrap(), 100);
        cluster.shutdown();
    }

    #[test]
    fn attach_sees_same_variable() {
        let (cluster, rts) = Cluster::new(2);
        let ts = rts[0].create_stable_ts("vars").unwrap();
        DistVar::create(&rts[0], ts, "y", 1).unwrap();
        let v2 = DistVar::attach(ts, "y");
        assert_eq!(v2.read(&rts[1]).unwrap(), 1);
        cluster.shutdown();
    }

    #[test]
    fn concurrent_fetch_add_is_lossless() {
        let (cluster, rts) = Cluster::new(3);
        let ts = rts[0].create_stable_ts("vars").unwrap();
        let v = DistVar::create(&rts[0], ts, "ctr", 0).unwrap();
        let handles: Vec<_> = rts
            .iter()
            .map(|rt| {
                let rt = rt.clone();
                let v = v.clone();
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        v.fetch_add(&rt, 1).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.read(&rts[0]).unwrap(), 60);
        cluster.shutdown();
    }

    #[test]
    fn unsafe_two_step_loses_variable_on_crash() {
        // Reproduces the paper's Figure 2 failure mode.
        let (cluster, rts) = Cluster::new(2);
        let ts = rts[0].create_stable_ts("vars").unwrap();
        let v = DistVar::create(&rts[0], ts, "z", 0).unwrap();
        assert_eq!(
            v.update_unsafe_two_step(&rts[0], |x| x + 1, true).unwrap(),
            None
        );
        // The variable is gone: a read would block forever.
        assert_eq!(rts[1].rdp(ts, &pat!("z", ?int)).unwrap(), None);
        // Whereas the atomic update never exposes such a window; restore
        // and verify.
        rts[1].out(ts, linda_tuple::tuple!("z", 7)).unwrap();
        assert_eq!(v.fetch_add(&rts[1], 1).unwrap(), 7);
        cluster.shutdown();
    }

    #[test]
    fn update_expression_error_leaves_variable_intact() {
        let (cluster, rts) = Cluster::new(2);
        let ts = rts[0].create_stable_ts("vars").unwrap();
        let v = DistVar::create(&rts[0], ts, "w", 3).unwrap();
        let r = v.update(&rts[0], |old| Operand::cst(1).div(old.sub(3)));
        assert!(r.is_err(), "division by zero must fail");
        // Rollback: the variable still exists with its old value.
        assert_eq!(
            rts[1].rd_timeout_helper(ts, &pat!("w", 3)).unwrap(),
            linda_tuple::tuple!("w", 3)
        );
        assert_eq!(v.read(&rts[0]).unwrap(), 3);
        cluster.shutdown();
    }

    // Small helper so the test reads clearly.
    trait RdHelper {
        fn rd_timeout_helper(&self, ts: TsId, p: &Pattern) -> Result<linda_tuple::Tuple, FtError>;
    }
    impl RdHelper for Runtime {
        fn rd_timeout_helper(&self, ts: TsId, p: &Pattern) -> Result<linda_tuple::Tuple, FtError> {
            let _ = Duration::ZERO;
            self.rd(ts, p)
        }
    }
}

//! End-to-end tests of the tuple-space observatory: `/introspect`,
//! per-signature metric families, the cluster-scope `/metrics`
//! aggregate, the starvation watchdog, push-gateway mode and trace
//! truncation reporting — all over real TCP against a live cluster.

use ftlinda::{Ags, Cluster, HostId, MatchField, Operand};
use linda_tuple::{pat, tuple};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Minimal HTTP/1.1 GET over std TCP; returns `(status, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect exporter");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Value of the first sample named `name` (exact match before a space
/// or `{`) in a Prometheus text page.
fn sample(page: &str, name: &str) -> Option<f64> {
    page.lines().find_map(|l| {
        let rest = l.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.parse().ok()
    })
}

#[test]
fn introspect_occupancy_matches_exact_store_recount() {
    let (cluster, rts) = Cluster::new(3);
    let jobs = rts[0].create_stable_ts("jobs").unwrap();
    let acks = rts[0].create_stable_ts("acks").unwrap();
    // Two signatures in "jobs", one in "acks".
    for i in 0..5i64 {
        rts[(i % 3) as usize].out(jobs, tuple!("job", i)).unwrap();
    }
    rts[1].out(jobs, tuple!("flag", true)).unwrap();
    rts[2].out(acks, tuple!("ack", 1, 2.5)).unwrap();
    // Withdraw one job so occupancy (4) diverges from high-water (5).
    rts[0].in_(jobs, &pat!("job", ?int)).unwrap();
    let top = rts.iter().map(|rt| rt.applied_seq()).max().unwrap();
    for rt in &rts {
        assert!(rt.wait_applied(top, Duration::from_secs(5)));
    }

    for rt in &rts {
        // Exact recount of this replica's stores, grouped by signature.
        for (ts, name) in [(jobs, "jobs"), (acks, "acks")] {
            let mut recount: BTreeMap<String, usize> = BTreeMap::new();
            for t in rt.snapshot(ts).unwrap() {
                *recount.entry(t.signature().to_string()).or_default() += 1;
            }
            let report = rt.introspect().expect("introspection on by default");
            let space = report
                .spaces
                .iter()
                .find(|s| s.name == name)
                .expect("space present in report");
            let census: BTreeMap<String, usize> = space
                .signatures
                .iter()
                .filter(|o| o.count > 0)
                .map(|o| (o.signature.to_string(), o.count))
                .collect();
            assert_eq!(
                census,
                recount,
                "census == recount for {name} on h{}",
                rt.host()
            );
        }

        let addr = cluster.http_addr(rt.host()).unwrap();
        let (code, body) = http_get(addr, "/introspect");
        assert_eq!(code, 200);
        // 4 jobs + 1 flag left in "jobs"; high-water remembers the 5th job.
        assert!(body.contains("\"name\":\"jobs\",\"tuples\":5"), "{body}");
        assert!(
            body.contains("{\"signature\":\"<str,int>\",\"count\":4,\"high_water\":5}"),
            "{body}"
        );
        assert!(
            body.contains("{\"signature\":\"<str,bool>\",\"count\":1,\"high_water\":1}"),
            "{body}"
        );
        assert!(body.contains("\"name\":\"acks\",\"tuples\":1"), "{body}");
        assert!(body.contains("\"signature\":\"<str,int,float>\""), "{body}");
        // Hot signatures lead with the busiest one.
        assert!(
            body.contains(
                "\"hot_signatures\":[{\"space\":\"jobs\",\"signature\":\"<str,int>\",\"count\":4}"
            ),
            "{body}"
        );
        // Matching cost is accounted: the in_ above probed and hit.
        assert!(body.contains("\"attempts\":"), "{body}");

        // The same numbers render as labeled metric families.
        let (code, metrics) = http_get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(
            metrics.contains("ftlinda_ts_tuples{space=\"jobs\",signature=\"<str,int>\"} 4"),
            "{metrics}"
        );
        assert!(
            metrics
                .contains("ftlinda_ts_tuples_high_water{space=\"jobs\",signature=\"<str,int>\"} 5"),
            "{metrics}"
        );
        assert!(
            metrics.contains("ftlinda_match_probes_total{space=\"jobs\"}"),
            "{metrics}"
        );
        assert!(
            metrics.contains("ftlinda_match_probe_efficiency_bp{space=\"jobs\"}"),
            "{metrics}"
        );
    }
    cluster.shutdown();
}

#[test]
fn cluster_scope_metrics_merge_all_live_members() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    for i in 0..6i64 {
        rts[(i % 3) as usize].out(ts, tuple!("n", i)).unwrap();
    }
    let top = rts.iter().map(|rt| rt.applied_seq()).max().unwrap();
    for rt in &rts {
        assert!(rt.wait_applied(top, Duration::from_secs(5)));
    }

    // Expected sum over member registries (completions are origin-local,
    // so the sum covers all 7 calls exactly once).
    let expected: u64 = rts
        .iter()
        .map(|rt| {
            rt.obs()
                .snapshot()
                .counter("ftlinda_ags_completions_total")
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(expected, 7, "6 outs + 1 create");

    let aggregate = cluster.cluster_metrics_text();
    assert_eq!(
        sample(&aggregate, "ftlinda_ags_completions_total"),
        Some(expected as f64),
        "{aggregate}"
    );
    // Cluster-registry metrics and per-member families share the page.
    assert!(
        aggregate.contains("ftlinda_digest_divergence_total"),
        "{aggregate}"
    );
    // Occupancy gauges sum across the 3 replicas: 6 tuples each.
    assert!(
        aggregate.contains("ftlinda_ts_tuples{space=\"main\",signature=\"<str,int>\"} 18"),
        "{aggregate}"
    );

    // Every member serves the identical aggregate route.
    for rt in &rts {
        let addr = cluster.http_addr(rt.host()).unwrap();
        let (code, body) = http_get(addr, "/metrics/cluster");
        assert_eq!(code, 200);
        assert_eq!(
            sample(&body, "ftlinda_ags_completions_total"),
            Some(expected as f64)
        );
    }

    // A crashed member drops out of the aggregate.
    cluster.crash(HostId(2));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let page = cluster.cluster_metrics_text();
        let v = sample(
            &page,
            "ftlinda_ts_tuples{space=\"main\",signature=\"<str,int>\"}",
        );
        if v == Some(12.0) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "crashed member still aggregated: {v:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    cluster.shutdown();
}

#[test]
fn starving_guard_fires_watchdog_and_shows_in_blocked_table() {
    let (cluster, rts) = Cluster::builder()
        .hosts(3)
        .starvation_after(Duration::from_millis(40))
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    // A near-miss tuple: same signature as the guard, wrong value.
    rts[0].out(ts, tuple!("job", 999)).unwrap();
    // A guard that cannot fire until we deposit ("job", 1).
    let starved = Ags::in_one(ts, vec![MatchField::actual("job"), MatchField::actual(1)]).unwrap();
    let handle = rts[1].execute_async(&starved);

    // The watchdog emits ags_starving on every member (each replica
    // blocks the same AGS) once the threshold passes.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let fired = rts
            .iter()
            .all(|rt| !rt.obs().events().recent_of("ags_starving").is_empty());
        if fired {
            break;
        }
        assert!(Instant::now() < deadline, "watchdog never fired");
        std::thread::sleep(Duration::from_millis(10));
    }
    let ev = &rts[0].obs().events().recent_of("ags_starving")[0];
    let field = |k: &str| {
        ev.fields
            .iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    assert!(
        field("guards").contains("<str,int>"),
        "guard signature in event"
    );
    assert_eq!(field("nearest_miss"), "1", "the 999 tuple is the near miss");
    assert!(field("age_ms").parse::<u64>().unwrap() >= 40);

    // The blocked table shows it as starving, with its age and miss count.
    let addr = cluster.http_addr(rts[0].host()).unwrap();
    let (code, body) = http_get(addr, "/introspect");
    assert_eq!(code, 200);
    assert!(body.contains("\"starving\":true"), "{body}");
    assert!(body.contains("\"nearest_miss\":1"), "{body}");
    let (_, metrics) = http_get(addr, "/metrics");
    assert!(
        sample(&metrics, "ftlinda_ags_starving").unwrap_or(0.0) >= 1.0,
        "{metrics}"
    );

    // Satisfying the guard ends the starvation; retry accounting shows
    // the wasted wakeups that preceded it.
    rts[2].out(ts, tuple!("job", 1)).unwrap();
    handle.wait().unwrap();
    let snap = rts[0].obs().snapshot();
    let retries = snap
        .counter_family("ftlinda_blocked_retries_total")
        .expect("retry family registered");
    assert!(
        retries
            .iter()
            .any(|(labels, n)| labels.contains("outcome=\"fired\"") && *n >= 1),
        "fired retry counted: {retries:?}"
    );
    cluster.shutdown();
}

#[test]
fn no_introspection_disables_deep_surface_but_keeps_pipeline() {
    let (cluster, rts) = Cluster::builder().hosts(3).no_introspection().build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, tuple!("x", 1)).unwrap();
    assert_eq!(rts[1].in_(ts, &pat!("x", ?int)).unwrap(), tuple!("x", 1));

    assert!(rts[0].introspect().is_none());
    assert!(
        rts[0].config().starvation_after.is_none(),
        "watchdog off too"
    );
    let addr = cluster.http_addr(rts[0].host()).unwrap();
    let (code, _) = http_get(addr, "/introspect");
    assert_eq!(code, 404);
    // Scalar pipeline metrics survive; deep families don't.
    let (code, metrics) = http_get(addr, "/metrics");
    assert_eq!(code, 200);
    assert!(metrics.contains("ftlinda_applied_seq"));
    assert!(!metrics.contains("ftlinda_ts_tuples{"), "{metrics}");
    assert!(
        !metrics.contains("ftlinda_match_probes_total{"),
        "{metrics}"
    );
    cluster.shutdown();
}

#[test]
fn push_gateway_receives_member_pages_and_counts_failures() {
    // A fake push gateway: accept every POST, record (path, body), 202.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let gw_addr = listener.local_addr().unwrap();
    let seen: Arc<Mutex<Vec<(String, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let seen2 = seen.clone();
    let gw = std::thread::spawn(move || {
        listener
            .set_nonblocking(false)
            .expect("blocking accept loop");
        for stream in listener.incoming() {
            let Ok(mut s) = stream else { break };
            let mut raw = Vec::new();
            let mut chunk = [0u8; 1024];
            s.set_read_timeout(Some(Duration::from_millis(500))).ok();
            loop {
                match s.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => {
                        raw.extend_from_slice(&chunk[..n]);
                        let text = String::from_utf8_lossy(&raw);
                        if let Some((head, body)) = text.split_once("\r\n\r\n") {
                            let len: usize = head
                                .lines()
                                .find_map(|l| l.strip_prefix("Content-Length: "))
                                .and_then(|v| v.parse().ok())
                                .unwrap_or(0);
                            if body.len() >= len {
                                break;
                            }
                        }
                    }
                    Err(_) => break,
                }
            }
            let text = String::from_utf8_lossy(&raw).to_string();
            let path = text.split_whitespace().nth(1).unwrap_or("").to_string();
            let body = text
                .split_once("\r\n\r\n")
                .map(|(_, b)| b.to_string())
                .unwrap_or_default();
            let stop = path.contains("STOP");
            if !stop {
                seen2.lock().unwrap().push((path, body));
            }
            let _ = s.write_all(b"HTTP/1.1 202 Accepted\r\nContent-Length: 0\r\n\r\n");
            if stop {
                break;
            }
        }
    });

    let url = format!("http://{gw_addr}/metrics/job/ftlinda");
    let (cluster, rts) = Cluster::builder()
        .hosts(3)
        .push_gateway(&url, Duration::from_millis(20))
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, tuple!("pushed", 1)).unwrap();

    // Wait for at least one full push round: one page per member plus
    // the cluster registry.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        {
            let pages = seen.lock().unwrap();
            let has = |suffix: &str| pages.iter().any(|(p, _)| p.ends_with(suffix));
            if has("/instance/0") && has("/instance/1") && has("/instance/2") && has("/job/ftlinda")
            {
                break;
            }
        }
        assert!(Instant::now() < deadline, "pushes never arrived");
        std::thread::sleep(Duration::from_millis(10));
    }
    {
        let pages = seen.lock().unwrap();
        let (_, member_page) = pages
            .iter()
            .find(|(p, _)| p.ends_with("/instance/0"))
            .unwrap();
        assert!(member_page.contains("ftlinda_applied_seq"), "{member_page}");
        let (_, cluster_page) = pages
            .iter()
            .find(|(p, _)| p.ends_with("/job/ftlinda"))
            .unwrap();
        assert!(
            cluster_page.contains("ftlinda_pushes_total"),
            "{cluster_page}"
        );
    }
    let pushes_before = cluster
        .obs()
        .snapshot()
        .counter("ftlinda_pushes_total")
        .unwrap_or(0);
    assert!(
        pushes_before >= 4,
        "one full round recorded: {pushes_before}"
    );
    assert_eq!(
        cluster
            .obs()
            .snapshot()
            .counter("ftlinda_push_failures_total")
            .unwrap_or(0),
        0
    );

    // Kill the gateway: pushes start failing, counted not fatal.
    let _ = http_get(gw_addr, "/STOP");
    gw.join().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let failures = cluster
            .obs()
            .snapshot()
            .counter("ftlinda_push_failures_total")
            .unwrap_or(0);
        if failures > 0 {
            break;
        }
        assert!(Instant::now() < deadline, "push failures never counted");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The cluster itself is unbothered.
    rts[1].out(ts, tuple!("still", 2)).unwrap();
    cluster.shutdown();
}

#[test]
fn trace_reports_truncation_once_spans_age_out() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    let handle = rts[0].execute_async(&Ags::out_one(
        ts,
        vec![Operand::cst("t"), Operand::cst(1i64)],
    ));
    let id = handle.trace_id();
    handle.wait().unwrap();
    for rt in &rts {
        assert!(rt.wait_applied(rts[0].applied_seq(), Duration::from_secs(5)));
    }
    let all_hosts: Vec<u32> = rts.iter().map(|rt| rt.host().0).collect();
    let tree = cluster.trace(id);
    assert!(tree.is_complete(&all_hosts));
    assert!(!tree.truncated, "nothing evicted yet");
    assert!(tree.to_json().contains("\"truncated\":false"));

    // Age the origin's ring out from under the trace: its spans are the
    // oldest, so flooding the log evicts them first.
    let spans = rts[0].obs().spans_handle();
    for i in 0..9000u64 {
        spans.push(ftlinda::obs::SpanRecord {
            trace: ftlinda::obs::TraceId::new(0, u64::MAX - 1),
            stage: "noise".into(),
            host: 0,
            at_micros: ftlinda::obs::now_micros() + i,
            fields: vec![],
        });
    }
    let tree = cluster.trace(id);
    assert!(
        tree.truncated,
        "evicted spans newer than the trace must mark it truncated"
    );
    assert!(tree.to_json().contains("\"truncated\":true"));
    cluster.shutdown();
}

#[test]
fn restart_keeps_observatory_configuration() {
    let (cluster, rts) = Cluster::builder()
        .hosts(3)
        .starvation_after(Duration::from_millis(30))
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, tuple!("keep", 7)).unwrap();
    cluster.crash(HostId(2));
    let rt2 = cluster.restart(HostId(2));
    assert!(rt2.wait_applied(rts[0].applied_seq(), Duration::from_secs(5)));
    // The fresh incarnation carries the same observability config...
    assert_eq!(
        rt2.config().starvation_after,
        Some(Duration::from_millis(30))
    );
    // ...and its rebuilt census matches its restored store.
    let report = rt2.introspect().unwrap();
    let main = report.spaces.iter().find(|s| s.name == "main").unwrap();
    assert_eq!(main.tuples, 1);
    assert_eq!(main.signatures[0].count, 1);
    assert_eq!(main.signatures[0].signature.to_string(), "<str,int>");
    cluster.shutdown();
}

/root/repo/target/release/deps/msgs_per_ags-58d51f986d905524.d: crates/bench/benches/msgs_per_ags.rs

/root/repo/target/release/deps/msgs_per_ags-58d51f986d905524: crates/bench/benches/msgs_per_ags.rs

crates/bench/benches/msgs_per_ags.rs:

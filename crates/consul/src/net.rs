//! The simulated network of workstations.
//!
//! The paper ran on Sun-3/i386 workstations on a 10 Mb Ethernet under the
//! x-kernel. We substitute an in-process message-passing network with:
//!
//! * per-link latency (configurable base + seeded jitter), FIFO links
//! * crash injection (fail-silent: a crashed host's traffic vanishes,
//!   in both directions) and restart
//! * a delayed *perfect failure detector*: `crash()` schedules a
//!   `CrashNotice` control event to every live host after the configured
//!   detection delay, modelling the heartbeat timeout that converts
//!   fail-silent crashes into fail-stop notifications (paper §2.3)
//! * message and byte accounting for the E9 experiment
//!
//! The router runs on its own thread, draining a monotonic delay queue.
//! Per-link FIFO order is preserved even with jitter (delivery times are
//! clamped monotonically per link), which matches Ethernet + x-kernel
//! behaviour closely enough for the protocols built on top.

use crate::stats::NetStats;
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifier of a simulated processor ("host" in the paper's terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// A network-level event delivered to a host's inbox.
#[derive(Debug, Clone)]
pub enum NetEvent<M> {
    /// A protocol message from a peer.
    Msg {
        /// Sending host.
        from: HostId,
        /// Payload.
        msg: M,
    },
    /// The failure detector reports `host` crashed (delivered to every
    /// live host after the detection delay).
    CrashNotice(HostId),
    /// The failure detector reports `host` (re)joined the network.
    JoinNotice(HostId),
}

/// Network configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Base one-way link latency.
    pub latency: Duration,
    /// Uniform extra jitter in `[0, jitter]`.
    pub jitter: Duration,
    /// Failure-detection delay (crash → CrashNotice at peers). Used by
    /// the built-in delayed *perfect* detector; ignored when
    /// `heartbeats` is set.
    pub detect_delay: Duration,
    /// RNG seed for jitter (simulations are reproducible per seed).
    pub seed: u64,
    /// When set, the built-in oracle detector is disabled and the
    /// protocol layer detects crashes itself from heartbeat silence
    /// (see [`Heartbeat`]). `timeout` must exceed the worst-case link
    /// latency + period or live hosts will be falsely suspected.
    pub heartbeats: Option<Heartbeat>,
    /// Optional per-host egress service-time model (NIC serialization).
    /// `None` (the default) keeps the classic infinite-bandwidth
    /// simulation: messages only pay `latency + jitter`.
    pub nic: Option<NicModel>,
}

/// Egress bandwidth model: each host owns one NIC that serializes its
/// outgoing messages. A message occupies the sender's NIC for
/// `per_msg + per_byte × size` before it enters the wire, so a burst
/// from one host queues behind itself while other hosts' NICs transmit
/// in parallel — the property that makes a single busy coordinator the
/// bottleneck on the paper's 10 Mb Ethernet, and the one the default
/// zero-cost network cannot express. Receive side is not modelled
/// (deliveries share the link latency only), matching the paper's
/// observation that the sender-side protocol stack dominated.
#[derive(Debug, Clone, Copy)]
pub struct NicModel {
    /// Fixed per-message cost (framing, protocol stack, interrupt).
    pub per_msg: Duration,
    /// Transmission time per payload byte.
    pub per_byte: Duration,
}

impl NicModel {
    /// A 10 Mb-Ethernet-era model: 10 Mb/s ≈ 0.8 µs per byte, plus
    /// ~100 µs of fixed per-packet protocol-stack overhead (the x-kernel
    /// numbers the paper's testbed reports are of this magnitude).
    pub fn ethernet_10mb() -> Self {
        NicModel {
            per_msg: Duration::from_micros(100),
            per_byte: Duration::from_nanos(800),
        }
    }

    /// NIC occupancy for one message of `bytes` payload bytes.
    pub fn service_time(&self, bytes: usize) -> Duration {
        self.per_msg + self.per_byte * (bytes as u32)
    }
}

/// Heartbeat-based failure detection parameters.
#[derive(Debug, Clone, Copy)]
pub struct Heartbeat {
    /// Interval between pings.
    pub period: Duration,
    /// Silence longer than this declares a host crashed.
    pub timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            detect_delay: Duration::from_millis(1),
            seed: 0xf7_11da,
            heartbeats: None,
            nic: None,
        }
    }
}

impl NetConfig {
    /// Zero-latency configuration (fast tests).
    pub fn instant() -> Self {
        NetConfig::default()
    }

    /// A LAN-like configuration with the given one-way latency.
    pub fn lan(latency: Duration) -> Self {
        NetConfig {
            latency,
            jitter: latency / 4,
            ..NetConfig::default()
        }
    }
}

/// Sizing hook so the router can account bytes without serializing twice.
pub trait WireSized {
    /// Approximate on-the-wire size of this message in bytes.
    fn wire_size(&self) -> usize;
}

struct Scheduled<M> {
    due: Instant,
    tie: u64,
    to: HostId,
    event: NetEvent<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.tie == other.tie
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.tie.cmp(&self.tie))
    }
}

struct RouterState<M> {
    queue: BinaryHeap<Scheduled<M>>,
    inboxes: HashMap<HostId, crossbeam::channel::Sender<NetEvent<M>>>,
    crashed: HashMap<HostId, bool>,
    last_delivery: HashMap<(HostId, HostId), Instant>,
    /// When each host's egress NIC finishes its current backlog (only
    /// maintained when [`NetConfig::nic`] is set).
    nic_free: HashMap<HostId, Instant>,
    rng: StdRng,
    tie: u64,
    shutdown: bool,
}

struct NetInner<M> {
    state: Mutex<RouterState<M>>,
    cond: Condvar,
    cfg: NetConfig,
    stats: NetStats,
    running: AtomicBool,
}

/// The simulated network. Clone handles freely; all clones alias one
/// network.
pub struct SimNet<M: Send + 'static> {
    inner: Arc<NetInner<M>>,
}

impl<M: Send + 'static> Clone for SimNet<M> {
    fn clone(&self) -> Self {
        SimNet {
            inner: self.inner.clone(),
        }
    }
}

impl<M: Send + WireSized + 'static> SimNet<M> {
    /// Create a network with `n` hosts (ids `0..n`), returning the network
    /// handle and each host's inbox receiver.
    pub fn new(n: u32, cfg: NetConfig) -> (Self, Vec<crossbeam::channel::Receiver<NetEvent<M>>>) {
        let mut inboxes = HashMap::new();
        let mut rxs = Vec::with_capacity(n as usize);
        for i in 0..n {
            let (tx, rx) = crossbeam::channel::unbounded();
            inboxes.insert(HostId(i), tx);
            rxs.push(rx);
        }
        let inner = Arc::new(NetInner {
            state: Mutex::new(RouterState {
                queue: BinaryHeap::new(),
                inboxes,
                crashed: HashMap::new(),
                last_delivery: HashMap::new(),
                nic_free: HashMap::new(),
                rng: StdRng::seed_from_u64(cfg.seed),
                tie: 0,
                shutdown: false,
            }),
            cond: Condvar::new(),
            cfg,
            stats: NetStats::default(),
            running: AtomicBool::new(true),
        });
        let net = SimNet { inner };
        net.spawn_router();
        (net, rxs)
    }

    fn spawn_router(&self) {
        let inner = self.inner.clone();
        std::thread::Builder::new()
            .name("simnet-router".into())
            .spawn(move || loop {
                let mut st = inner.state.lock();
                if st.shutdown {
                    return;
                }
                match st.queue.peek().map(|s| s.due) {
                    None => {
                        inner.cond.wait(&mut st);
                    }
                    Some(due) => {
                        let now = Instant::now();
                        if due <= now {
                            let item = st.queue.pop().expect("peeked");
                            // Drop traffic to crashed hosts; control
                            // notices are delivered regardless (they come
                            // from the detector, not the host).
                            let to_crashed = st.crashed.get(&item.to).copied().unwrap_or(false);
                            let deliver = match &item.event {
                                NetEvent::Msg { .. } => !to_crashed,
                                _ => !to_crashed,
                            };
                            if deliver {
                                if let Some(tx) = st.inboxes.get(&item.to) {
                                    // Receiver may be gone after restart;
                                    // dropping is correct (host is dead).
                                    let _ = tx.send(item.event);
                                }
                            }
                            drop(st);
                        } else {
                            inner.cond.wait_until(&mut st, due);
                        }
                    }
                }
            })
            .expect("spawn router");
    }

    /// Occupy `from`'s egress NIC for one `bytes`-sized message and
    /// return how long past *now* the message enters the wire. Zero when
    /// no NIC model is configured.
    fn nic_delay(&self, st: &mut RouterState<M>, from: HostId, bytes: usize) -> Duration {
        let Some(nic) = self.inner.cfg.nic else {
            return Duration::ZERO;
        };
        let now = Instant::now();
        let start = st.nic_free.get(&from).copied().unwrap_or(now).max(now);
        let busy_until = start + nic.service_time(bytes);
        st.nic_free.insert(from, busy_until);
        busy_until - now
    }

    fn schedule(
        &self,
        st: &mut RouterState<M>,
        from: Option<HostId>,
        to: HostId,
        event: NetEvent<M>,
        extra: Duration,
    ) {
        let now = Instant::now();
        let jitter = if self.inner.cfg.jitter.is_zero() {
            Duration::ZERO
        } else {
            let j = self.inner.cfg.jitter.as_nanos() as u64;
            Duration::from_nanos(st.rng.gen_range(0..=j))
        };
        let mut due = now + self.inner.cfg.latency + jitter + extra;
        // Preserve per-link FIFO.
        if let Some(f) = from {
            let key = (f, to);
            if let Some(last) = st.last_delivery.get(&key) {
                if due < *last {
                    due = *last;
                }
            }
            st.last_delivery.insert(key, due);
        }
        st.tie += 1;
        let tie = st.tie;
        st.queue.push(Scheduled {
            due,
            tie,
            to,
            event,
        });
        self.inner.cond.notify_one();
    }

    /// Point-to-point send. Silently dropped if `from` is crashed (a dead
    /// host's last gasps never reach the wire) or `to` is crashed.
    pub fn send(&self, from: HostId, to: HostId, msg: M) {
        let mut st = self.inner.state.lock();
        if st.crashed.get(&from).copied().unwrap_or(false) {
            return;
        }
        let size = msg.wire_size();
        self.inner.stats.record_msg(size);
        let service = self.nic_delay(&mut st, from, size);
        self.schedule(
            &mut st,
            Some(from),
            to,
            NetEvent::Msg { from, msg },
            service,
        );
    }

    /// Best-effort multicast to a set of hosts (one accounted message per
    /// destination, like Ethernet unicast fan-out; the *logical* multicast
    /// count is tracked separately by the ordering layer).
    pub fn multicast<I: IntoIterator<Item = HostId>>(&self, from: HostId, to: I, msg: M)
    where
        M: Clone,
    {
        let mut st = self.inner.state.lock();
        if st.crashed.get(&from).copied().unwrap_or(false) {
            return;
        }
        for dest in to {
            let size = msg.wire_size();
            self.inner.stats.record_msg(size);
            // Unicast fan-out: every copy occupies the sender's NIC in
            // turn, which is exactly what makes a K=1 coordinator the
            // bandwidth bottleneck under the service model.
            let service = self.nic_delay(&mut st, from, size);
            self.schedule(
                &mut st,
                Some(from),
                dest,
                NetEvent::Msg {
                    from,
                    msg: msg.clone(),
                },
                service,
            );
        }
    }

    /// Crash a host (fail-silent). In-flight messages to it are dropped at
    /// delivery time; messages from it no longer enter the wire. After the
    /// detection delay every live host receives a
    /// [`NetEvent::CrashNotice`].
    pub fn crash(&self, host: HostId) {
        let mut st = self.inner.state.lock();
        if st.crashed.get(&host).copied().unwrap_or(false) {
            return;
        }
        st.crashed.insert(host, true);
        st.nic_free.remove(&host);
        if self.inner.cfg.heartbeats.is_some() {
            // Heartbeat mode: peers must notice the silence themselves.
            return;
        }
        let peers: Vec<HostId> = st
            .inboxes
            .keys()
            .copied()
            .filter(|h| *h != host && !st.crashed.get(h).copied().unwrap_or(false))
            .collect();
        for p in peers {
            self.schedule(
                &mut st,
                None,
                p,
                NetEvent::CrashNotice(host),
                self.inner.cfg.detect_delay,
            );
        }
    }

    /// Freeze a host: silently drop its traffic in both directions while
    /// leaving its inbox and its member thread intact. Unlike
    /// [`SimNet::crash`], no detector notice is ever scheduled — under
    /// heartbeat detection the silence looks exactly like a crash, which
    /// is the point: this models a long stall or a flapping link, i.e.
    /// the *false suspicion* case, where the "failed" member's protocol
    /// state survives and the member later resumes from it.
    pub fn freeze(&self, host: HostId) {
        let mut st = self.inner.state.lock();
        st.crashed.insert(host, true);
        st.nic_free.remove(&host);
    }

    /// Undo a [`SimNet::freeze`]: the host's traffic flows again and its
    /// member resumes from whatever state it had at the freeze — stale
    /// cursor, stale membership view and all. The ordering layer's
    /// eviction/rejoin machinery is what must clean that up.
    pub fn thaw(&self, host: HostId) {
        let mut st = self.inner.state.lock();
        st.crashed.insert(host, false);
    }

    /// Restart a crashed host: installs a fresh inbox (returned) and, after
    /// the detection delay, announces a [`NetEvent::JoinNotice`] to every
    /// live host *including the restarted one*.
    pub fn restart(&self, host: HostId) -> crossbeam::channel::Receiver<NetEvent<M>> {
        let (tx, rx) = crossbeam::channel::unbounded();
        let mut st = self.inner.state.lock();
        st.crashed.insert(host, false);
        st.nic_free.remove(&host);
        st.inboxes.insert(host, tx);
        if self.inner.cfg.heartbeats.is_some() {
            // Heartbeat mode: liveness is learned from the JoinReq/ping
            // traffic of the restarted host itself.
            return rx;
        }
        let peers: Vec<HostId> = st
            .inboxes
            .keys()
            .copied()
            .filter(|h| !st.crashed.get(h).copied().unwrap_or(false))
            .collect();
        for p in peers {
            self.schedule(
                &mut st,
                None,
                p,
                NetEvent::JoinNotice(host),
                self.inner.cfg.detect_delay,
            );
        }
        rx
    }

    /// Whether `host` is currently crashed.
    pub fn is_crashed(&self, host: HostId) -> bool {
        self.inner
            .state
            .lock()
            .crashed
            .get(&host)
            .copied()
            .unwrap_or(false)
    }

    /// All hosts currently not crashed.
    pub fn live_hosts(&self) -> Vec<HostId> {
        let st = self.inner.state.lock();
        let mut v: Vec<HostId> = st
            .inboxes
            .keys()
            .copied()
            .filter(|h| !st.crashed.get(h).copied().unwrap_or(false))
            .collect();
        v.sort_unstable();
        v
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NetConfig {
        &self.inner.cfg
    }

    /// Network statistics (messages, bytes).
    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }

    /// Stop the router thread. Further sends are dropped.
    pub fn shutdown(&self) {
        self.inner.running.store(false, AtomicOrdering::SeqCst);
        self.inner.state.lock().shutdown = true;
        self.inner.cond.notify_all();
    }
}

impl<M> Drop for NetInner<M> {
    fn drop(&mut self) {
        self.state.get_mut().shutdown = true;
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[derive(Debug, Clone, PartialEq)]
    struct TestMsg(u64);

    impl WireSized for TestMsg {
        fn wire_size(&self) -> usize {
            8
        }
    }

    fn recv_msg(
        rx: &crossbeam::channel::Receiver<NetEvent<TestMsg>>,
        within: Duration,
    ) -> Option<(HostId, TestMsg)> {
        let deadline = Instant::now() + within;
        while Instant::now() < deadline {
            match rx.recv_timeout(deadline - Instant::now()) {
                Ok(NetEvent::Msg { from, msg }) => return Some((from, msg)),
                Ok(_) => continue,
                Err(_) => return None,
            }
        }
        None
    }

    #[test]
    fn point_to_point_delivery() {
        let (net, rxs) = SimNet::<TestMsg>::new(2, NetConfig::instant());
        net.send(HostId(0), HostId(1), TestMsg(7));
        assert_eq!(
            recv_msg(&rxs[1], Duration::from_secs(1)),
            Some((HostId(0), TestMsg(7)))
        );
        net.shutdown();
    }

    #[test]
    fn multicast_reaches_all() {
        let (net, rxs) = SimNet::<TestMsg>::new(3, NetConfig::instant());
        net.multicast(HostId(0), [HostId(0), HostId(1), HostId(2)], TestMsg(1));
        for rx in &rxs {
            assert!(recv_msg(rx, Duration::from_secs(1)).is_some());
        }
        net.shutdown();
    }

    #[test]
    fn fifo_per_link_with_jitter() {
        let cfg = NetConfig {
            latency: Duration::from_micros(200),
            jitter: Duration::from_micros(400),
            ..NetConfig::default()
        };
        let (net, rxs) = SimNet::<TestMsg>::new(2, cfg);
        for i in 0..50 {
            net.send(HostId(0), HostId(1), TestMsg(i));
        }
        let mut got = Vec::new();
        for _ in 0..50 {
            got.push(recv_msg(&rxs[1], Duration::from_secs(2)).unwrap().1 .0);
        }
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "link must be FIFO");
        net.shutdown();
    }

    #[test]
    fn latency_is_applied() {
        let cfg = NetConfig {
            latency: Duration::from_millis(30),
            ..NetConfig::default()
        };
        let (net, rxs) = SimNet::<TestMsg>::new(2, cfg);
        let t0 = Instant::now();
        net.send(HostId(0), HostId(1), TestMsg(1));
        recv_msg(&rxs[1], Duration::from_secs(2)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
        net.shutdown();
    }

    #[test]
    fn crashed_host_receives_nothing() {
        let (net, rxs) = SimNet::<TestMsg>::new(2, NetConfig::instant());
        net.crash(HostId(1));
        net.send(HostId(0), HostId(1), TestMsg(1));
        assert_eq!(recv_msg(&rxs[1], Duration::from_millis(50)), None);
        assert!(net.is_crashed(HostId(1)));
        net.shutdown();
    }

    #[test]
    fn crashed_host_sends_nothing() {
        let (net, rxs) = SimNet::<TestMsg>::new(2, NetConfig::instant());
        net.crash(HostId(0));
        net.send(HostId(0), HostId(1), TestMsg(1));
        // Host 1 gets the crash notice but never the message.
        let deadline = Instant::now() + Duration::from_millis(100);
        let mut got_notice = false;
        while Instant::now() < deadline {
            match rxs[1].recv_timeout(Duration::from_millis(10)) {
                Ok(NetEvent::CrashNotice(h)) => {
                    assert_eq!(h, HostId(0));
                    got_notice = true;
                }
                Ok(NetEvent::Msg { .. }) => panic!("message from crashed host delivered"),
                _ => {}
            }
        }
        assert!(got_notice);
        net.shutdown();
    }

    #[test]
    fn crash_notice_reaches_all_live_hosts() {
        let (net, rxs) = SimNet::<TestMsg>::new(3, NetConfig::instant());
        net.crash(HostId(2));
        for rx in &rxs[..2] {
            let ev = rx.recv_timeout(Duration::from_secs(1)).unwrap();
            assert!(matches!(ev, NetEvent::CrashNotice(HostId(2))));
        }
        assert_eq!(net.live_hosts(), vec![HostId(0), HostId(1)]);
        net.shutdown();
    }

    #[test]
    fn restart_installs_new_inbox_and_announces() {
        let (net, rxs) = SimNet::<TestMsg>::new(2, NetConfig::instant());
        net.crash(HostId(1));
        // drain crash notice at host 0
        let _ = rxs[0].recv_timeout(Duration::from_secs(1)).unwrap();
        let rx1 = net.restart(HostId(1));
        let ev = rxs[0].recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(matches!(ev, NetEvent::JoinNotice(HostId(1))));
        let ev = rx1.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(matches!(ev, NetEvent::JoinNotice(HostId(1))));
        // New inbox is live.
        net.send(HostId(0), HostId(1), TestMsg(9));
        assert_eq!(
            recv_msg(&rx1, Duration::from_secs(1)),
            Some((HostId(0), TestMsg(9)))
        );
        assert!(!net.is_crashed(HostId(1)));
        net.shutdown();
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let (net, rxs) = SimNet::<TestMsg>::new(2, NetConfig::instant());
        net.send(HostId(0), HostId(1), TestMsg(1));
        net.multicast(HostId(0), [HostId(0), HostId(1)], TestMsg(2));
        recv_msg(&rxs[1], Duration::from_secs(1)).unwrap();
        assert_eq!(net.stats().messages(), 3);
        assert_eq!(net.stats().bytes(), 24);
        net.shutdown();
    }

    #[test]
    fn nic_serializes_one_hosts_egress() {
        let cfg = NetConfig {
            nic: Some(NicModel {
                per_msg: Duration::from_millis(20),
                per_byte: Duration::ZERO,
            }),
            ..NetConfig::default()
        };
        let (net, rxs) = SimNet::<TestMsg>::new(2, cfg);
        let t0 = Instant::now();
        for i in 0..3 {
            net.send(HostId(0), HostId(1), TestMsg(i));
        }
        for _ in 0..3 {
            recv_msg(&rxs[1], Duration::from_secs(2)).unwrap();
        }
        // Three messages through one NIC: the last one waited for the
        // first two to transmit.
        assert!(t0.elapsed() >= Duration::from_millis(60));
        net.shutdown();
    }

    #[test]
    fn nic_charges_bytes() {
        let cfg = NetConfig {
            nic: Some(NicModel {
                per_msg: Duration::ZERO,
                per_byte: Duration::from_millis(5), // TestMsg is 8 bytes
            }),
            ..NetConfig::default()
        };
        let (net, rxs) = SimNet::<TestMsg>::new(2, cfg);
        let t0 = Instant::now();
        net.send(HostId(0), HostId(1), TestMsg(1));
        recv_msg(&rxs[1], Duration::from_secs(2)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(40));
        net.shutdown();
    }

    #[test]
    fn nics_of_different_hosts_run_in_parallel() {
        let cfg = NetConfig {
            nic: Some(NicModel {
                per_msg: Duration::from_millis(50),
                per_byte: Duration::ZERO,
            }),
            ..NetConfig::default()
        };
        let (net, rxs) = SimNet::<TestMsg>::new(3, cfg);
        let t0 = Instant::now();
        net.send(HostId(0), HostId(2), TestMsg(1));
        net.send(HostId(1), HostId(2), TestMsg(2));
        recv_msg(&rxs[2], Duration::from_secs(2)).unwrap();
        recv_msg(&rxs[2], Duration::from_secs(2)).unwrap();
        let elapsed = t0.elapsed();
        // Two different senders' NICs overlap: both messages are in by
        // ~one service time, nowhere near the serialized 100ms.
        assert!(elapsed >= Duration::from_millis(50));
        assert!(
            elapsed < Duration::from_millis(95),
            "parallel NICs took {elapsed:?}"
        );
        net.shutdown();
    }

    #[test]
    fn double_crash_is_idempotent() {
        let (net, rxs) = SimNet::<TestMsg>::new(2, NetConfig::instant());
        net.crash(HostId(1));
        net.crash(HostId(1));
        let _ = rxs[0].recv_timeout(Duration::from_secs(1)).unwrap();
        // Only one notice.
        assert!(rxs[0].recv_timeout(Duration::from_millis(50)).is_err());
        net.shutdown();
    }
}

/root/repo/target/debug/deps/cluster_tests-8db09ef6871cecf9.d: crates/core/tests/cluster_tests.rs

/root/repo/target/debug/deps/cluster_tests-8db09ef6871cecf9: crates/core/tests/cluster_tests.rs

crates/core/tests/cluster_tests.rs:

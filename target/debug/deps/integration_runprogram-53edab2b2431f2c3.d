/root/repo/target/debug/deps/integration_runprogram-53edab2b2431f2c3.d: tests/integration_runprogram.rs

/root/repo/target/debug/deps/integration_runprogram-53edab2b2431f2c3: tests/integration_runprogram.rs

tests/integration_runprogram.rs:

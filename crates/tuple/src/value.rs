//! Scalar values carried in tuple fields.
//!
//! Linda tuples are heterogeneous sequences of typed fields. The original
//! C-Linda supported the C scalar types plus strings; we mirror that set.
//! Floats compare by bit pattern so that `Value` is `Eq + Hash` and replica
//! state machines behave identically on every host (the paper's replicated
//! state machine approach requires deterministic matching).

use std::fmt;
use std::hash::{Hash, Hasher};

/// The type of a tuple field, used in formal parameters (`?int`) and in
/// signature analysis (the FT-lcc precompiler catalogs the ordered list of
/// field types for every pattern in the program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum TypeTag {
    /// 64-bit signed integer (`int` in the paper's examples).
    Int = 0,
    /// 64-bit IEEE-754 float (`double`).
    Float = 1,
    /// Boolean.
    Bool = 2,
    /// Unicode scalar (`char`).
    Char = 3,
    /// Immutable string.
    Str = 4,
    /// Raw byte payload (used for opaque task descriptors).
    Bytes = 5,
    /// A nested tuple value (used e.g. for aggregate results).
    Tuple = 6,
}

impl TypeTag {
    /// All tags, in encoding order.
    pub const ALL: [TypeTag; 7] = [
        TypeTag::Int,
        TypeTag::Float,
        TypeTag::Bool,
        TypeTag::Char,
        TypeTag::Str,
        TypeTag::Bytes,
        TypeTag::Tuple,
    ];

    /// Decode a tag from its wire byte.
    pub fn from_u8(b: u8) -> Option<TypeTag> {
        TypeTag::ALL.get(b as usize).copied()
    }

    /// The lowercase name used by the textual DSL (`?int`, `?str`, ...).
    pub fn name(self) -> &'static str {
        match self {
            TypeTag::Int => "int",
            TypeTag::Float => "float",
            TypeTag::Bool => "bool",
            TypeTag::Char => "char",
            TypeTag::Str => "str",
            TypeTag::Bytes => "bytes",
            TypeTag::Tuple => "tuple",
        }
    }

    /// Parse a DSL type name.
    pub fn from_name(s: &str) -> Option<TypeTag> {
        Some(match s {
            "int" => TypeTag::Int,
            "float" | "double" => TypeTag::Float,
            "bool" => TypeTag::Bool,
            "char" => TypeTag::Char,
            "str" | "string" => TypeTag::Str,
            "bytes" => TypeTag::Bytes,
            "tuple" => TypeTag::Tuple,
            _ => return None,
        })
    }
}

impl fmt::Display for TypeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single tuple field value.
///
/// `Value` is `Eq`/`Hash`/`Ord` even though it contains floats: floats are
/// compared by their IEEE-754 bit pattern. This makes tuple matching a
/// deterministic function of the operation stream, which the replicated
/// state machine relies on.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float (compared by bit pattern).
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Unicode scalar.
    Char(char),
    /// Immutable string.
    Str(String),
    /// Raw byte payload.
    Bytes(Vec<u8>),
    /// Nested tuple.
    Tuple(Vec<Value>),
}

impl Value {
    /// The runtime type of this value.
    pub fn type_tag(&self) -> TypeTag {
        match self {
            Value::Int(_) => TypeTag::Int,
            Value::Float(_) => TypeTag::Float,
            Value::Bool(_) => TypeTag::Bool,
            Value::Char(_) => TypeTag::Char,
            Value::Str(_) => TypeTag::Str,
            Value::Bytes(_) => TypeTag::Bytes,
            Value::Tuple(_) => TypeTag::Tuple,
        }
    }

    /// Integer accessor; `None` when the value is not an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float accessor.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Char accessor.
    pub fn as_char(&self) -> Option<char> {
        match self {
            Value::Char(c) => Some(*c),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Byte-payload accessor.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Nested-tuple accessor.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// Approximate heap + inline size in bytes, used by the message-size
    /// accounting in the E9 experiment.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Char(_) => 4,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::Tuple(t) => t.iter().map(Value::size_bytes).sum::<usize>() + 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Char(a), Value::Char(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            (Value::Tuple(a), Value::Tuple(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.type_tag() as u8);
        match self {
            Value::Int(i) => state.write_i64(*i),
            Value::Float(x) => state.write_u64(x.to_bits()),
            Value::Bool(b) => state.write_u8(*b as u8),
            Value::Char(c) => state.write_u32(*c as u32),
            Value::Str(s) => s.hash(state),
            Value::Bytes(b) => b.hash(state),
            Value::Tuple(t) => {
                state.write_usize(t.len());
                for v in t {
                    v.hash(state);
                }
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: first by type tag, then by content (floats by bits).
    /// Used only for deterministic tie-breaking, not arithmetic comparison.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering as O;
        let t = (self.type_tag() as u8).cmp(&(other.type_tag() as u8));
        if t != O::Equal {
            return t;
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.to_bits().cmp(&b.to_bits()),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Char(a), Value::Char(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bytes(a), Value::Bytes(b)) => a.cmp(b),
            (Value::Tuple(a), Value::Tuple(b)) => a.cmp(b),
            _ => unreachable!("type tags compared equal"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Char(c) => write!(f, "'{c}'"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "b[{}]", b.len()),
            Value::Tuple(t) => {
                f.write_str("(")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<char> for Value {
    fn from(v: char) -> Self {
        Value::Char(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}
impl From<&[u8]> for Value {
    fn from(v: &[u8]) -> Self {
        Value::Bytes(v.to_vec())
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Tuple(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn type_tags_roundtrip() {
        for t in TypeTag::ALL {
            assert_eq!(TypeTag::from_u8(t as u8), Some(t));
            assert_eq!(TypeTag::from_name(t.name()), Some(t));
        }
        assert_eq!(TypeTag::from_u8(200), None);
        assert_eq!(TypeTag::from_name("quux"), None);
    }

    #[test]
    fn float_alias_names() {
        assert_eq!(TypeTag::from_name("double"), Some(TypeTag::Float));
        assert_eq!(TypeTag::from_name("string"), Some(TypeTag::Str));
    }

    #[test]
    fn value_type_tags() {
        assert_eq!(Value::Int(1).type_tag(), TypeTag::Int);
        assert_eq!(Value::Float(1.0).type_tag(), TypeTag::Float);
        assert_eq!(Value::Bool(true).type_tag(), TypeTag::Bool);
        assert_eq!(Value::Char('x').type_tag(), TypeTag::Char);
        assert_eq!(Value::Str("a".into()).type_tag(), TypeTag::Str);
        assert_eq!(Value::Bytes(vec![1]).type_tag(), TypeTag::Bytes);
        assert_eq!(Value::Tuple(vec![]).type_tag(), TypeTag::Tuple);
    }

    #[test]
    fn nan_equals_itself_bitwise() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn negative_zero_distinct_from_positive_zero() {
        // Bit-pattern equality: -0.0 != +0.0 so replicas never disagree on
        // which tuple matched.
        assert_ne!(Value::Float(-0.0), Value::Float(0.0));
    }

    #[test]
    fn cross_type_inequality() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Str("1".into()), Value::Int(1));
        assert_ne!(Value::Bool(true), Value::Int(1));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), None);
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Char('z').as_char(), Some('z'));
        assert_eq!(Value::Str("hi".into()).as_str(), Some("hi"));
        assert_eq!(Value::Bytes(vec![9]).as_bytes(), Some(&[9u8][..]));
        assert_eq!(
            Value::Tuple(vec![Value::Int(1)]).as_tuple(),
            Some(&[Value::Int(1)][..])
        );
    }

    #[test]
    fn ordering_is_total_and_type_major() {
        let mut vals = vec![
            Value::Str("b".into()),
            Value::Int(3),
            Value::Float(1.0),
            Value::Int(1),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Int(1),
                Value::Int(3),
                Value::Float(1.0),
                Value::Str("b".into()),
            ]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Str("hi".into()).to_string(), "\"hi\"");
        assert_eq!(Value::Char('q').to_string(), "'q'");
        assert_eq!(
            Value::Tuple(vec![Value::Int(1), Value::Bool(false)]).to_string(),
            "(1, false)"
        );
    }

    #[test]
    fn size_accounting() {
        assert_eq!(Value::Int(0).size_bytes(), 8);
        assert_eq!(Value::Str("abcd".into()).size_bytes(), 4);
        assert_eq!(Value::Bytes(vec![0; 16]).size_bytes(), 16);
        assert!(Value::Tuple(vec![Value::Int(0), Value::Int(0)]).size_bytes() >= 16);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from(5usize), Value::Int(5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(vec![1u8, 2]), Value::Bytes(vec![1, 2]));
        assert_eq!(
            Value::from(vec![Value::Int(1)]),
            Value::Tuple(vec![Value::Int(1)])
        );
    }
}

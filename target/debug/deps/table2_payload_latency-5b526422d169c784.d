/root/repo/target/debug/deps/table2_payload_latency-5b526422d169c784.d: crates/bench/benches/table2_payload_latency.rs

/root/repo/target/debug/deps/table2_payload_latency-5b526422d169c784: crates/bench/benches/table2_payload_latency.rs

crates/bench/benches/table2_payload_latency.rs:

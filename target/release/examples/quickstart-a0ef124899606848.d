/root/repo/target/release/examples/quickstart-a0ef124899606848.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a0ef124899606848: examples/quickstart.rs

examples/quickstart.rs:

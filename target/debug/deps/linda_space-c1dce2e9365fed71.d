/root/repo/target/debug/deps/linda_space-c1dce2e9365fed71.d: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs

/root/repo/target/debug/deps/liblinda_space-c1dce2e9365fed71.rlib: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs

/root/repo/target/debug/deps/liblinda_space-c1dce2e9365fed71.rmeta: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs

crates/space/src/lib.rs:
crates/space/src/space.rs:
crates/space/src/store.rs:

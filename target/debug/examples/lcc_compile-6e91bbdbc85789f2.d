/root/repo/target/debug/examples/lcc_compile-6e91bbdbc85789f2.d: examples/lcc_compile.rs

/root/repo/target/debug/examples/lcc_compile-6e91bbdbc85789f2: examples/lcc_compile.rs

examples/lcc_compile.rs:

/root/repo/target/debug/deps/linda_repro-646b65f5354e6425.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblinda_repro-646b65f5354e6425.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! `ftlinda-top`: the out-of-process cluster aggregator.
//!
//! Scrapes every member's HTTP exporter — `/metrics/snapshot` (the
//! `ftlsnap` wire format, merge modes and histogram layouts intact) and
//! `/timeseries` — and renders one merged Prometheus page with exactly
//! the shape of the in-process `/metrics/cluster`, without being a
//! member itself. Alongside the page it appends one `BENCH_*`-style
//! JSON snapshot per tick, so a run leaves a machine-readable record of
//! cluster health over time.
//!
//! ```text
//! ftlinda-top --targets 127.0.0.1:8400,127.0.0.1:8401,127.0.0.1:8402 \
//!     --interval-ms 1000 --ticks 10 --page-out cluster.prom \
//!     --json-out BENCH_cluster_top.json
//! ```
//!
//! Unreachable members are never papered over: each tick's JSON lists
//! `reachable`/`unreachable` target arrays, and the merged page carries
//! one `ftlinda_top_scrape_up{target="..."}` gauge child per target.

use ftlinda::{http_get, obs, FEDERATION_TIMEOUT};
use std::net::SocketAddr;
use std::time::Duration;

struct Opts {
    targets: Vec<SocketAddr>,
    interval: Duration,
    ticks: u64,
    page_out: Option<String>,
    json_out: Option<String>,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: ftlinda-top --targets HOST:PORT,... [--interval-ms M] [--ticks N]\n\
         \x20                [--page-out FILE] [--json-out FILE] [--quiet]\n\
         \n\
         Scrape each target's /metrics/snapshot + /timeseries every interval,\n\
         write the merged Prometheus page and one JSON status line per tick.\n\
         --ticks 0 runs until killed."
    );
    std::process::exit(2)
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        targets: Vec::new(),
        interval: Duration::from_millis(1000),
        ticks: 1,
        page_out: None,
        json_out: None,
        quiet: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--targets" => {
                o.targets = value(&mut i)
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--interval-ms" => {
                o.interval =
                    Duration::from_millis(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--ticks" => o.ticks = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--page-out" => o.page_out = Some(value(&mut i)),
            "--json-out" => o.json_out = Some(value(&mut i)),
            "--quiet" => o.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("ftlinda-top: unknown flag {other}");
                usage()
            }
        }
        i += 1;
    }
    if o.targets.is_empty() {
        eprintln!("ftlinda-top: --targets is required");
        usage()
    }
    o
}

/// One scrape round's result: the merged snapshot plus who answered.
struct Scrape {
    merged: obs::RegistrySnapshot,
    reachable: Vec<SocketAddr>,
    unreachable: Vec<SocketAddr>,
    /// Timeseries sample counts per reachable target.
    series: Vec<(SocketAddr, u64)>,
}

/// One scrape round: fetch every target's snapshot, merge, and report
/// who answered.
fn scrape(targets: &[SocketAddr]) -> Scrape {
    // The aggregator's own registry seeds the merge: per-target `up`
    // gauges plus scrape-error counters, so the merged page itself says
    // which members it covers.
    let own = obs::Registry::new();
    let up = own.gauge_family(
        "ftlinda_top_scrape_up",
        "1 if the member's /metrics/snapshot answered this aggregator tick",
    );
    let mut reachable = Vec::new();
    let mut unreachable = Vec::new();
    let mut fetched: Vec<obs::RegistrySnapshot> = Vec::new();
    let mut series_counts: Vec<(SocketAddr, u64)> = Vec::new();
    for t in targets {
        let label = t.to_string();
        let child = up.with(&[("target", &label)]);
        let snap = http_get(*t, "/metrics/snapshot", FEDERATION_TIMEOUT)
            .ok()
            .filter(|(status, _)| *status == 200)
            .and_then(|(_, body)| obs::RegistrySnapshot::from_wire(&body).ok());
        match snap {
            Some(s) => {
                child.set(1);
                reachable.push(*t);
                fetched.push(s);
                // /timeseries is optional (404 when the sampler is off);
                // count its samples rather than storing the whole ring.
                if let Ok((200, body)) = http_get(*t, "/timeseries", FEDERATION_TIMEOUT) {
                    let n = body.matches("\"at_millis\"").count() as u64;
                    series_counts.push((*t, n));
                }
            }
            None => {
                child.set(0);
                unreachable.push(*t);
            }
        }
    }
    let mut merged = own.snapshot();
    for s in &fetched {
        merged.merge(s);
    }
    Scrape {
        merged,
        reachable,
        unreachable,
        series: series_counts,
    }
}

fn json_addr_list(addrs: &[SocketAddr]) -> String {
    let items: Vec<String> = addrs.iter().map(|a| format!("\"{a}\"")).collect();
    format!("[{}]", items.join(","))
}

fn main() {
    let o = parse_opts();
    let mut tick: u64 = 0;
    let mut json_lines = String::new();
    loop {
        tick += 1;
        let Scrape {
            merged,
            reachable,
            unreachable,
            series,
        } = scrape(&o.targets);
        let page = merged.render();
        if let Some(path) = &o.page_out {
            if let Err(e) = std::fs::write(path, &page) {
                eprintln!("ftlinda-top: writing {path} failed: {e}");
                std::process::exit(4);
            }
        }
        let completions = merged.counter("ftlinda_ags_completions_total").unwrap_or(0);
        let tuples = merged.gauge("ftlinda_stable_tuples").unwrap_or(0);
        let blocked = merged.gauge("ftlinda_blocked_ags").unwrap_or(0);
        let series_json: Vec<String> = series
            .iter()
            .map(|(a, n)| format!("{{\"target\":\"{a}\",\"samples\":{n}}}"))
            .collect();
        let line = format!(
            "{{\"bench\":\"cluster_top\",\"tick\":{tick},\"targets\":{},\
             \"reachable\":{},\"unreachable\":{},\
             \"ags_completions_total\":{completions},\"stable_tuples\":{tuples},\
             \"blocked_ags\":{blocked},\"timeseries\":[{}]}}\n",
            o.targets.len(),
            json_addr_list(&reachable),
            json_addr_list(&unreachable),
            series_json.join(","),
        );
        json_lines.push_str(&line);
        if let Some(path) = &o.json_out {
            if let Err(e) = std::fs::write(path, &json_lines) {
                eprintln!("ftlinda-top: writing {path} failed: {e}");
                std::process::exit(4);
            }
        }
        if !o.quiet {
            print!("{line}");
        }
        if o.ticks != 0 && tick >= o.ticks {
            break;
        }
        std::thread::sleep(o.interval);
    }
    // The final page doubles as the run's artifact when --page-out was
    // not given: print it once so a piped invocation captures it.
    if o.page_out.is_none() && !o.quiet {
        print!("{}", scrape(&o.targets).merged.render());
    }
}

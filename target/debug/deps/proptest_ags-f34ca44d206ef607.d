/root/repo/target/debug/deps/proptest_ags-f34ca44d206ef607.d: crates/ags/tests/proptest_ags.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_ags-f34ca44d206ef607.rmeta: crates/ags/tests/proptest_ags.rs Cargo.toml

crates/ags/tests/proptest_ags.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/cluster_tests-aef7eda7fac3f817.d: crates/core/tests/cluster_tests.rs

/root/repo/target/debug/deps/cluster_tests-aef7eda7fac3f817: crates/core/tests/cluster_tests.rs

crates/core/tests/cluster_tests.rs:

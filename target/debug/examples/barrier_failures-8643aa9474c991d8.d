/root/repo/target/debug/examples/barrier_failures-8643aa9474c991d8.d: examples/barrier_failures.rs

/root/repo/target/debug/examples/barrier_failures-8643aa9474c991d8: examples/barrier_failures.rs

examples/barrier_failures.rs:

/root/repo/target/release/deps/ftlinda-e66faceb7cb83c2f.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

/root/repo/target/release/deps/libftlinda-e66faceb7cb83c2f.rlib: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

/root/repo/target/release/deps/libftlinda-e66faceb7cb83c2f.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/error.rs:
crates/core/src/runtime.rs:
crates/core/src/server.rs:

/root/repo/target/debug/deps/cluster_tests-323ea93f9748a2de.d: crates/core/tests/cluster_tests.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_tests-323ea93f9748a2de.rmeta: crates/core/tests/cluster_tests.rs Cargo.toml

crates/core/tests/cluster_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/crossbeam-79f20447b2d0381c.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-79f20447b2d0381c.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-79f20447b2d0381c.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:

/root/repo/target/debug/examples/distributed_variable-16bdd2dc7498814b.d: examples/distributed_variable.rs

/root/repo/target/debug/examples/distributed_variable-16bdd2dc7498814b: examples/distributed_variable.rs

examples/distributed_variable.rs:

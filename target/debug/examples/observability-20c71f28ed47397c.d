/root/repo/target/debug/examples/observability-20c71f28ed47397c.d: examples/observability.rs Cargo.toml

/root/repo/target/debug/examples/libobservability-20c71f28ed47397c.rmeta: examples/observability.rs Cargo.toml

examples/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ftlinda-c06ce64def9851eb.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

/root/repo/target/debug/deps/ftlinda-c06ce64def9851eb: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/error.rs:
crates/core/src/runtime.rs:
crates/core/src/server.rs:

//! `ftlinda-node`: one member of a multi-process FT-Linda cluster.
//!
//! Each process hosts one replica — kernel, sequencer member per shard
//! lane, HTTP exporter — and speaks the length-prefixed TCP protocol to
//! its peers (DESIGN.md §15). Booting N of these on one machine is what
//! `scripts/tcp_cluster.sh` does; killing one and relaunching it with
//! `--rejoin` exercises the snapshot rejoin path across real processes.
//!
//! ```text
//! ftlinda-node --id 0 --peers 127.0.0.1:7400,127.0.0.1:7401,127.0.0.1:7402 \
//!     --shards 2 --http-base 8400 --role pong
//! ```
//!
//! Roles:
//! - `idle` (default): boot, converge, serve the observability surface
//!   until killed (or `--run-secs`).
//! - `pong`: one atomic AGS per request — `in ("ping", ?i)` guarding
//!   `out ("pong", i)` — forever.
//! - `ping`: `--count` round trips of `out ("ping", i)` / `in ("pong", i)`,
//!   then write latency statistics to `--bench-out` and exit.
//! - `xtrace`: execute one cross-shard AGS with a trace id, print
//!   `XTRACE id=<trace>`, and keep serving HTTP so any member's
//!   `/cluster/trace/<id>` can assemble the federated tree.

use ftlinda::{
    Ags, Cluster, ClusterBuilder, FtError, HostId, MatchField as MF, Operand, Runtime,
    TcpClusterConfig, Transport, TypeTag,
};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

struct Opts {
    id: u32,
    peers: Vec<SocketAddr>,
    shards: u32,
    http_base: Option<u16>,
    role: String,
    count: u64,
    rejoin: bool,
    hb: Option<(u64, u64)>,
    bench_out: String,
    run_secs: Option<u64>,
    form_timeout: Duration,
}

fn usage() -> ! {
    eprintln!(
        "usage: ftlinda-node --id N --peers HOST:PORT,... [--shards K] [--http-base PORT]\n\
         \x20                [--role idle|ping|pong] [--count N] [--rejoin]\n\
         \x20                [--hb-period-ms M --hb-timeout-ms M] [--bench-out FILE]\n\
         \x20                [--run-secs S] [--form-timeout-secs S]"
    );
    std::process::exit(2)
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        id: u32::MAX,
        peers: Vec::new(),
        shards: 1,
        http_base: None,
        role: "idle".into(),
        count: 1000,
        rejoin: false,
        hb: None,
        bench_out: "BENCH_tcp_pingpong.json".into(),
        run_secs: None,
        form_timeout: Duration::from_secs(30),
    };
    let mut hb_period: Option<u64> = None;
    let mut hb_timeout: Option<u64> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--id" => o.id = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--peers" => {
                o.peers = value(&mut i)
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--shards" => o.shards = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--http-base" => o.http_base = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--role" => o.role = value(&mut i),
            "--count" => o.count = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--rejoin" => o.rejoin = true,
            "--hb-period-ms" => hb_period = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--hb-timeout-ms" => {
                hb_timeout = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--bench-out" => o.bench_out = value(&mut i),
            "--run-secs" => o.run_secs = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--form-timeout-secs" => {
                o.form_timeout =
                    Duration::from_secs(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("ftlinda-node: unknown flag {other}");
                usage()
            }
        }
        i += 1;
    }
    if o.id == u32::MAX || o.peers.is_empty() || o.id as usize >= o.peers.len() {
        eprintln!("ftlinda-node: --id must index into --peers");
        usage()
    }
    if !matches!(o.role.as_str(), "idle" | "ping" | "pong" | "xtrace") {
        eprintln!("ftlinda-node: unknown role {}", o.role);
        usage()
    }
    if let (Some(p), Some(t)) = (hb_period, hb_timeout) {
        o.hb = Some((p, t));
    }
    o
}

fn main() {
    let o = parse_opts();
    let mut b: ClusterBuilder = Cluster::builder()
        .shards(o.shards)
        .transport(Transport::Tcp(TcpClusterConfig {
            me: o.id,
            addrs: o.peers.clone(),
            rejoin: o.rejoin,
        }));
    if let Some((p, t)) = o.hb {
        b = b.heartbeats(Duration::from_millis(p), Duration::from_millis(t));
    }
    b = match o.http_base {
        Some(base) => b.http_base_port(base),
        None => b.no_http(),
    };
    let (cluster, mut rts) = match b.try_build() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("ftlinda-node: transport failed to start: {e}");
            std::process::exit(2);
        }
    };
    let rt = rts.remove(0);
    let http = cluster.http_addr(HostId(o.id));
    println!(
        "ftlinda-node id={} seq={} http={} shards={} role={}{}",
        o.id,
        o.peers[o.id as usize],
        http.map(|a| a.to_string()).unwrap_or_else(|| "-".into()),
        o.shards,
        o.role,
        if o.rejoin { " rejoin" } else { "" },
    );

    // Wait for the mesh to form (or, rejoining, for any peer) before
    // doing work: a Submit sent while a link is still dialing is dropped
    // like any packet on a dead wire.
    let want = if o.rejoin { 2 } else { o.peers.len() };
    let t0 = Instant::now();
    while cluster.live_hosts().len() < want {
        if t0.elapsed() > o.form_timeout {
            eprintln!(
                "ftlinda-node: cluster never formed ({}/{} members seen)",
                cluster.live_hosts().len(),
                want
            );
            std::process::exit(3);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let ts = match rt.create_stable_ts("main") {
        Ok(ts) => ts,
        Err(e) => {
            eprintln!("ftlinda-node: create_stable_ts failed: {e}");
            std::process::exit(3);
        }
    };
    println!("READY id={} members={}", o.id, cluster.live_hosts().len());

    match o.role.as_str() {
        "ping" => run_ping(&rt, ts, o.count, &o.bench_out, o.peers.len(), o.shards),
        "pong" => run_pong(&rt, ts, o.run_secs),
        "xtrace" => run_xtrace(&rt, ts, o.shards, o.run_secs),
        _ => match o.run_secs {
            Some(s) => std::thread::sleep(Duration::from_secs(s)),
            None => loop {
                std::thread::sleep(Duration::from_secs(3600));
            },
        },
    }
    cluster.shutdown();
}

/// `--role pong`: serve each ping with one atomic AGS — the guard takes
/// `("ping", ?i)`, the body deposits `("pong", i)` — until the runtime
/// shuts down. Eviction (a false suspicion while we were blocked) is
/// survivable: the AGS is simply resubmitted after the rejoin.
fn run_pong(rt: &Runtime, ts: ftlinda::TsId, run_secs: Option<u64>) {
    let serve = Ags::builder()
        .guard_in(ts, vec![MF::actual("ping"), MF::bind(TypeTag::Int)])
        .out(ts, vec![Operand::cst("pong"), Operand::formal(0)])
        .build()
        .expect("pong AGS is statically valid");
    let deadline = run_secs.map(|s| Instant::now() + Duration::from_secs(s));
    loop {
        // Only poll with a timeout when a deadline exists: every expired
        // execute_timeout leaves its AGS queued, so the untimed serve
        // loop blocks indefinitely instead of accreting one queued AGS
        // per second of idleness.
        let r = match deadline {
            Some(d) if Instant::now() > d => return,
            Some(_) => rt.execute_timeout(&serve, Duration::from_secs(1)),
            None => rt.execute(&serve),
        };
        match r {
            Ok(_) | Err(FtError::Timeout) => {}
            Err(FtError::Evicted) | Err(FtError::StateTransfer) => {}
            Err(FtError::Shutdown) => return,
            Err(e) => {
                eprintln!("ftlinda-node: pong serve failed: {e}");
                std::process::exit(4);
            }
        }
    }
}

/// `--role xtrace`: seed `("x", 41)` on one shard, then fire a
/// cross-shard AGS — guard `in ("x", ?int)` on the `[Str, Int]` shard,
/// body `out ("y", "done")` on the `[Str, Str]` shard — via
/// `execute_traced`, and announce the committing attempt's trace id so a
/// harness can fetch `/cluster/trace/<id>` from any member. The process
/// then idles (serving its exporter) for `--run-secs`.
fn run_xtrace(rt: &Runtime, ts: ftlinda::TsId, shards: u32, run_secs: Option<u64>) {
    let sig = |tags: &[TypeTag]| linda_tuple::Signature::new(tags.to_vec()).stable_hash();
    let guard_shard = ftlinda_ags::shard_of(ts, sig(&[TypeTag::Str, TypeTag::Int]), shards);
    let body_shard = ftlinda_ags::shard_of(ts, sig(&[TypeTag::Str, TypeTag::Str]), shards);
    if guard_shard == body_shard {
        eprintln!(
            "ftlinda-node: xtrace needs its two signatures on distinct shards \
             (both landed on {guard_shard} with --shards {shards})"
        );
        std::process::exit(4);
    }
    if let Err(e) = rt.execute(&Ags::out_one(
        ts,
        vec![Operand::cst("x"), Operand::cst(41i64)],
    )) {
        eprintln!("ftlinda-node: xtrace seed failed: {e}");
        std::process::exit(4);
    }
    let ags = Ags::builder()
        .guard_in(ts, vec![MF::actual("x"), MF::bind(TypeTag::Int)])
        .out(ts, vec![Operand::cst("y"), Operand::cst("done")])
        .build()
        .expect("xtrace AGS is statically valid");
    match rt.execute_traced(&ags) {
        Ok((_, id)) => println!("XTRACE id={id}"),
        Err(e) => {
            eprintln!("ftlinda-node: xtrace execute failed: {e}");
            std::process::exit(4);
        }
    }
    match run_secs {
        Some(s) => std::thread::sleep(Duration::from_secs(s)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
}

/// `--role ping`: drive `count` round trips and write the latency
/// profile as a small JSON object.
fn run_ping(rt: &Runtime, ts: ftlinda::TsId, count: u64, out: &str, hosts: usize, shards: u32) {
    let mut rtt_us: Vec<u64> = Vec::with_capacity(count as usize);
    let bench0 = Instant::now();
    for i in 0..count {
        let i = i as i64;
        let t0 = Instant::now();
        let mut sent = false;
        loop {
            // Resubmit on eviction/state transfer: the pair is
            // idempotent enough for a bench (a duplicate ping leaves a
            // stray pong tuple behind, never a wrong reply).
            if !sent {
                match rt.execute(&Ags::out_one(
                    ts,
                    vec![Operand::cst("ping"), Operand::cst(i)],
                )) {
                    Ok(_) => sent = true,
                    Err(FtError::Evicted) | Err(FtError::StateTransfer) => continue,
                    Err(e) => {
                        eprintln!("ftlinda-node: ping out failed: {e}");
                        std::process::exit(4);
                    }
                }
            }
            let take = Ags::in_one(ts, vec![MF::actual("pong"), MF::actual(i)])
                .expect("pong take is statically valid");
            match rt.execute(&take) {
                Ok(_) => break,
                Err(FtError::Evicted) | Err(FtError::StateTransfer) => continue,
                Err(e) => {
                    eprintln!("ftlinda-node: pong take failed: {e}");
                    std::process::exit(4);
                }
            }
        }
        rtt_us.push(t0.elapsed().as_micros() as u64);
    }
    let elapsed = bench0.elapsed();
    rtt_us.sort_unstable();
    let pct = |p: f64| rtt_us[((rtt_us.len() - 1) as f64 * p) as usize];
    let mean = rtt_us.iter().sum::<u64>() as f64 / rtt_us.len() as f64;
    // Wire-level RTT, measured by the heartbeat timestamp piggyback
    // (`ftlinda_net_rtt_seconds`, one histogram child per peer, merged
    // here across peers and lanes). Unlike the closed-loop numbers above
    // it excludes sequencing and kernel work — pure network round trip.
    let wire = rt
        .metrics_snapshot()
        .histogram_family_merged("ftlinda_net_rtt_seconds");
    let wire_us = |q: f64| -> f64 {
        wire.as_ref()
            .and_then(|h| h.quantile(q))
            .map_or(0.0, |s| s * 1e6)
    };
    let json = format!(
        "{{\"bench\":\"tcp_pingpong\",\"transport\":\"tcp\",\"hosts\":{hosts},\
         \"shards\":{shards},\"count\":{count},\"elapsed_secs\":{:.6},\
         \"ops_per_sec\":{:.1},\"rtt_mean_us\":{mean:.1},\"rtt_p50_us\":{},\
         \"rtt_p99_us\":{},\"wire_rtt_samples\":{},\"wire_rtt_p50_us\":{:.1},\
         \"wire_rtt_p95_us\":{:.1},\"wire_rtt_p99_us\":{:.1}}}\n",
        elapsed.as_secs_f64(),
        count as f64 / elapsed.as_secs_f64(),
        pct(0.50),
        pct(0.99),
        wire.as_ref().map_or(0, |h| h.count()),
        wire_us(0.50),
        wire_us(0.95),
        wire_us(0.99),
    );
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("ftlinda-node: writing {out} failed: {e}");
        std::process::exit(4);
    }
    print!("{json}");
}

//! Tuple stores: the data structure behind a tuple space.
//!
//! Three implementations of the [`Store`] trait are provided:
//!
//! * [`IndexedStore`] — the production store. Tuples are bucketed by the
//!   stable hash of their signature (arity + ordered field types), and
//!   within a bucket **value-level secondary indexes** accelerate
//!   patterns with constant fields. The first-field index is built
//!   eagerly (the overwhelmingly common Linda idiom is a string-constant
//!   head, `("subtask", ?int, ?bytes)`); indexes on other positions are
//!   promoted lazily when a scan is observed to be expensive, so the
//!   dominant `in("task", id, ?x)` shape resolves in O(1) hash lookups
//!   instead of a within-bucket scan. A **miss cache** (antituple cache)
//!   makes a repeated failed poll for the same pattern O(1) until an
//!   insert that could match invalidates it.
//! * [`LinearStore`] — a straight `Vec` scan, kept as the baseline for
//!   ablation experiment A2.
//! * [`AdaptiveStore`] — starts as a [`LinearStore`] and promotes itself
//!   to an [`IndexedStore`] when the live probe-efficiency figures say
//!   the scan has become hot. Small spaces keep the cheap scan; hot ones
//!   get the indexes. [`crate::LocalSpace`] uses this.
//!
//! All stores implement **oldest-match semantics**: `take`/`read` return
//! the matching tuple that was inserted earliest. This determinism is not
//! just a nicety — the replicated state machine (crate `ftlinda-kernel`)
//! requires every replica to withdraw the *same* tuple for the same
//! operation stream, and oldest-match also preserves causality for
//! FIFO-producer/consumer patterns.
//!
//! **Derived state only:** indexes, the miss cache, and the promotion
//! decision are pure acceleration structures derived from the tuple
//! multiset. They are never checkpointed, digested, or compared across
//! replicas — two replicas may hold different indexes (or none) and
//! still withdraw identical tuples for the same operation stream.
//! Checkpoint/restore rebuilds stores from snapshots, which starts the
//! derived state empty.
//!
//! **Zero-clone withdraw contract:** `take`/`take_all` (and the tracked
//! variants) move the stored tuple out by removing it first — they never
//! clone payload bytes. Only the read-side operations (`read`,
//! `read_all`, `snapshot`) copy, because the original stays in the
//! store. AGS `move` over large tuple sets therefore costs O(matches)
//! pointer moves, not O(bytes).

use linda_tuple::{PatField, Pattern, Signature, StableMap, Tuple, Value};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Tuning knobs for the adaptive matching engine. The defaults suit the
/// benchmark workloads; every knob is plumbed through
/// `ClusterBuilder::store_config` so deployments can tune without
/// recompiling.
///
/// Different replicas may run different configs: everything these knobs
/// control is derived state and never affects match results, digests, or
/// the wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// A single match attempt that examines more than this many tuples
    /// promotes: within a bucket it builds value indexes for the
    /// pattern's constant fields, and in [`AdaptiveStore`] it is the
    /// probes-per-attempt bar for switching linear → indexed.
    pub promote_after_probes: u64,
    /// Never promote (bucket indexes or the linear → indexed switch)
    /// while fewer than this many tuples are involved — small spaces
    /// keep the cheap scan.
    pub promote_min_tuples: usize,
    /// [`AdaptiveStore`] also promotes when probe efficiency falls below
    /// this many basis points (after a minimum number of attempts):
    /// sustained wasted probing is a hot scan even if no single attempt
    /// crossed `promote_after_probes`.
    pub promote_below_bp: i64,
    /// Maximum value indexes per signature bucket, *including* the eager
    /// first-field index. Each index costs O(bucket) memory and O(1)
    /// maintenance per insert/remove.
    pub max_value_indexes: usize,
    /// Maximum patterns held in the miss cache; when full the whole
    /// cache is dropped (epoch eviction — correctness never depends on
    /// retention). `0` disables miss caching.
    pub miss_cache_cap: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            promote_after_probes: 8,
            promote_min_tuples: 32,
            promote_below_bp: 500,
            max_value_indexes: 4,
            miss_cache_cap: 128,
        }
    }
}

/// Point-in-time matching-cost totals for one store.
///
/// A *probe* is one `Pattern::matches` evaluation against a stored tuple;
/// an *attempt* is one `in`/`rd`-shaped operation (`take`, `read`,
/// `contains`, `count`, `take_all`, `read_all`); a *hit* is a probe that
/// matched. A *cache hit* is an attempt answered by the miss cache — it
/// counts as an attempt with zero probes, never as an invisible
/// operation. `probes / attempts` is the matching cost the store's
/// indexing did **not** eliminate.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MatchStats {
    /// Match-shaped operations attempted (including miss-cache hits).
    pub attempts: u64,
    /// Tuples examined (`Pattern::matches` evaluations).
    pub probes: u64,
    /// Probes that matched.
    pub hits: u64,
    /// Attempts answered by the miss cache with zero probes.
    pub cache_hits: u64,
}

impl MatchStats {
    /// Mean tuples examined per attempt (0.0 when nothing was attempted).
    pub fn probes_per_attempt(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.probes as f64 / self.attempts as f64
        }
    }

    /// Fraction of probes that matched (1.0 when no probe was wasted —
    /// including the degenerate zero-probe case).
    pub fn efficiency(&self) -> f64 {
        if self.probes == 0 {
            1.0
        } else {
            self.hits as f64 / self.probes as f64
        }
    }

    /// [`MatchStats::efficiency`] in basis points (0–10000). Integer
    /// percent floored sub-1%-efficiency workloads to 0 — indistinguishable
    /// from idle; basis points keep the 100k-miss case visible.
    pub fn efficiency_bp(&self) -> i64 {
        (self.efficiency() * 10_000.0).round() as i64
    }

    /// Component-wise difference versus an earlier snapshot (for
    /// delta-feeding monotonic counters).
    pub fn since(&self, earlier: &MatchStats) -> MatchStats {
        MatchStats {
            attempts: self.attempts.saturating_sub(earlier.attempts),
            probes: self.probes.saturating_sub(earlier.probes),
            hits: self.hits.saturating_sub(earlier.hits),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
        }
    }

    /// Component-wise sum (merging phases of an [`AdaptiveStore`]).
    fn plus(&self, other: &MatchStats) -> MatchStats {
        MatchStats {
            attempts: self.attempts + other.attempts,
            probes: self.probes + other.probes,
            hits: self.hits + other.hits,
            cache_hits: self.cache_hits + other.cache_hits,
        }
    }
}

/// Interior-mutability accumulator for [`MatchStats`], so the read-side
/// operations (`read`, `contains`, `count`, `read_all` — all `&self`) can
/// account their probes too. `Cell` keeps the hot path to a plain load +
/// store; stores are only ever reached behind a `Mutex` (`LocalSpace`,
/// the kernel), so the non-`Sync` cell never sees concurrent access.
#[derive(Debug, Default, Clone)]
struct MatchCounters {
    attempts: Cell<u64>,
    probes: Cell<u64>,
    hits: Cell<u64>,
    cache_hits: Cell<u64>,
}

impl MatchCounters {
    fn record(&self, probes: u64, hits: u64) {
        self.attempts.set(self.attempts.get() + 1);
        self.probes.set(self.probes.get() + probes);
        self.hits.set(self.hits.get() + hits);
    }

    /// A miss-cache hit is an attempt with zero probes — visible in the
    /// stats, cheap in the store.
    fn record_cache_hit(&self) {
        self.attempts.set(self.attempts.get() + 1);
        self.cache_hits.set(self.cache_hits.get() + 1);
    }

    fn stats(&self) -> MatchStats {
        MatchStats {
            attempts: self.attempts.get(),
            probes: self.probes.get(),
            hits: self.hits.get(),
            cache_hits: self.cache_hits.get(),
        }
    }
}

/// Occupancy of one tuple signature within a store: current count plus
/// the high-water mark since the store was created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureOccupancy {
    /// The signature (arity + ordered field types).
    pub signature: Signature,
    /// Tuples of this signature currently stored.
    pub count: usize,
    /// Most tuples of this signature ever stored at once.
    pub high_water: usize,
}

/// Derived-state inventory of a store: how much acceleration structure
/// exists right now. Pure observability — never part of digests or
/// checkpoints (see the module docs).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IndexReport {
    /// Value indexes currently live beyond the eager first-field index
    /// (i.e. lazily promoted positions, summed over signature buckets).
    pub value_indexes: usize,
    /// Cumulative count of index builds (lazy promotions) performed.
    pub index_builds: u64,
    /// Cumulative count of index demotions (churn-dominated indexes
    /// dropped by the demotion guard).
    pub index_demotions: u64,
    /// Patterns currently held in the miss cache.
    pub miss_cached: usize,
}

/// Minimal interface of a tuple store (single-threaded; the concurrent
/// wrapper lives in [`crate::LocalSpace`]).
pub trait Store {
    /// Deposit a tuple.
    fn insert(&mut self, t: Tuple);
    /// Withdraw the oldest tuple matching `p`, if any.
    fn take(&mut self, p: &Pattern) -> Option<Tuple>;
    /// Read (copy) the oldest tuple matching `p`, if any.
    fn read(&self, p: &Pattern) -> Option<Tuple>;
    /// Whether any tuple matches `p`.
    fn contains(&self, p: &Pattern) -> bool {
        self.read(p).is_some()
    }
    /// Number of tuples matching `p`.
    fn count(&self, p: &Pattern) -> usize;
    /// Withdraw *all* tuples matching `p`, oldest first (the `move` AGS op).
    fn take_all(&mut self, p: &Pattern) -> Vec<Tuple>;
    /// Copy all tuples matching `p`, oldest first (the `copy` AGS op).
    fn read_all(&self, p: &Pattern) -> Vec<Tuple>;
    /// Total number of stored tuples.
    fn len(&self) -> usize;
    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Remove everything.
    fn clear(&mut self);
    /// Snapshot of all tuples in insertion order (for checkpointing and
    /// state transfer to recovering replicas).
    fn snapshot(&self) -> Vec<Tuple>;
    /// Cumulative matching-cost totals (attempts / probes / hits) since
    /// the store was created. Pure observability: never part of replica
    /// digests or checkpoints.
    fn match_stats(&self) -> MatchStats;
    /// Per-signature occupancy with high-water marks, sorted by
    /// signature. Entries whose count dropped to 0 are retained (their
    /// high-water mark is still informative); `clear` resets everything.
    fn signature_census(&self) -> Vec<SignatureOccupancy>;
    /// Tuples currently stored under the signature with this stable hash
    /// (the "nearest miss" count for a guard that keeps not matching).
    fn signature_len(&self, sig_hash: u64) -> usize;
    /// Inventory of derived acceleration structures. Stores without any
    /// (the linear baseline) report zeros.
    fn index_report(&self) -> IndexReport {
        IndexReport::default()
    }
}

/// Secondary index within one bucket: values at a fixed field position →
/// insertion seqs holding that value there.
///
/// `maintenance` and `served` drive the demotion decision: every
/// insert/remove that updates the index is one maintenance op, and every
/// match attempt the index answered (either by supplying candidates or
/// by proving zero candidates exist) is one serve. When upkeep far
/// outruns serves the index is costing more than it saves — see
/// [`Bucket::maybe_demote`]. Both are derived state, like the index
/// itself.
#[derive(Debug, Clone)]
struct ValueIndex {
    pos: usize,
    map: HashMap<Value, BTreeSet<u64>>,
    maintenance: Cell<u64>,
    served: Cell<u64>,
}

impl ValueIndex {
    fn empty(pos: usize) -> Self {
        ValueIndex {
            pos,
            map: HashMap::new(),
            maintenance: Cell::new(0),
            served: Cell::new(0),
        }
    }
}

/// Candidate source chosen for one match attempt.
enum Cands<'a> {
    /// No index applies (no constant field is indexed): scan the bucket.
    Scan,
    /// An index applies and proves zero candidates exist.
    Empty,
    /// Seqs from the most selective applicable index, ascending.
    Set(&'a BTreeSet<u64>),
}

/// Pick the most selective applicable index for `p`: among indexes whose
/// position carries a constant in the pattern, the one with the fewest
/// candidate seqs. An absent key is a proof of zero candidates. The
/// chosen index (including one that proves emptiness) gets a serve
/// credit toward its demotion accounting.
fn best_candidates<'a>(indexes: &'a [ValueIndex], p: &Pattern) -> Cands<'a> {
    let mut best: Option<(&'a ValueIndex, &'a BTreeSet<u64>)> = None;
    let mut applicable = false;
    for ix in indexes {
        let Some(PatField::Actual(v)) = p.fields().get(ix.pos) else {
            continue;
        };
        applicable = true;
        match ix.map.get(v) {
            None => {
                ix.served.set(ix.served.get() + 1);
                return Cands::Empty;
            }
            Some(set) => {
                if best.is_none_or(|(_, b)| set.len() < b.len()) {
                    best = Some((ix, set));
                }
            }
        }
    }
    match (applicable, best) {
        (false, _) => Cands::Scan,
        (true, None) => Cands::Empty,
        (true, Some((ix, set))) => {
            ix.served.set(ix.served.get() + 1);
            Cands::Set(set)
        }
    }
}

/// One signature bucket of the [`IndexedStore`].
///
/// `indexes` lives in a `RefCell` because promotion happens on the
/// read-side (`&self`) match paths; the store itself is only ever used
/// behind a `Mutex`, so the cell never sees concurrent access. A dropped
/// (emptied) bucket loses its promoted indexes — they are rebuilt on
/// demand if the signature gets hot again.
#[derive(Debug, Clone)]
struct Bucket {
    /// Insertion-ordered entries (key = global insertion sequence).
    entries: BTreeMap<u64, Tuple>,
    /// Value indexes; position 0 (the head index) is always present.
    indexes: RefCell<Vec<ValueIndex>>,
}

impl Default for Bucket {
    fn default() -> Self {
        Bucket {
            entries: BTreeMap::new(),
            indexes: RefCell::new(vec![ValueIndex::empty(0)]),
        }
    }
}

impl Bucket {
    /// Insert under `seq`. Returns `true` if the sequence number was
    /// fresh. A duplicate seq would silently shadow the older tuple in
    /// `entries` while leaving stale index entries behind, so callers
    /// must treat `false` as a contract violation (see `insert_tracked`
    /// / `restore_at`).
    fn insert(&mut self, seq: u64, t: Tuple) -> bool {
        if self.entries.contains_key(&seq) {
            return false;
        }
        for ix in self.indexes.get_mut().iter_mut() {
            if let Some(v) = t.get(ix.pos) {
                ix.map.entry(v.clone()).or_default().insert(seq);
                ix.maintenance.set(ix.maintenance.get() + 1);
            }
        }
        self.entries.insert(seq, t);
        true
    }

    fn remove(&mut self, seq: u64) -> Option<Tuple> {
        let t = self.entries.remove(&seq)?;
        for ix in self.indexes.get_mut().iter_mut() {
            if let Some(v) = t.get(ix.pos) {
                if let Some(set) = ix.map.get_mut(v) {
                    set.remove(&seq);
                    if set.is_empty() {
                        ix.map.remove(v);
                    }
                    ix.maintenance.set(ix.maintenance.get() + 1);
                }
            }
        }
        Some(t)
    }

    /// Oldest matching seq plus the number of tuples examined. An
    /// expensive attempt promotes indexes for the pattern's constant
    /// fields before returning (so the *next* attempt is cheap).
    fn find_first(&self, p: &Pattern, cfg: &StoreConfig, builds: &Cell<u64>) -> (Option<u64>, u64) {
        let mut probes = 0u64;
        let found = {
            let indexes = self.indexes.borrow();
            match best_candidates(&indexes, p) {
                Cands::Empty => None,
                Cands::Set(set) => set.iter().copied().find(|seq| {
                    probes += 1;
                    p.matches(&self.entries[seq])
                }),
                Cands::Scan => self.entries.keys().copied().find(|seq| {
                    probes += 1;
                    p.matches(&self.entries[seq])
                }),
            }
        };
        self.maybe_promote(p, probes, cfg, builds);
        (found, probes)
    }

    /// All matching seqs (oldest first) plus the number examined.
    fn find_all(&self, p: &Pattern, cfg: &StoreConfig, builds: &Cell<u64>) -> (Vec<u64>, u64) {
        let mut probes = 0u64;
        let found: Vec<u64> = {
            let indexes = self.indexes.borrow();
            match best_candidates(&indexes, p) {
                Cands::Empty => Vec::new(),
                Cands::Set(set) => set
                    .iter()
                    .copied()
                    .filter(|seq| {
                        probes += 1;
                        p.matches(&self.entries[seq])
                    })
                    .collect(),
                Cands::Scan => self
                    .entries
                    .keys()
                    .copied()
                    .filter(|seq| {
                        probes += 1;
                        p.matches(&self.entries[seq])
                    })
                    .collect(),
            }
        };
        self.maybe_promote(p, probes, cfg, builds);
        (found, probes)
    }

    /// Lazy index promotion: after an attempt that examined more than
    /// `promote_after_probes` tuples in a bucket of promotable size,
    /// build value indexes for the pattern's constant positions (up to
    /// `max_value_indexes` per bucket, head index included).
    fn maybe_promote(&self, p: &Pattern, probes: u64, cfg: &StoreConfig, builds: &Cell<u64>) {
        if probes <= cfg.promote_after_probes || self.entries.len() < cfg.promote_min_tuples {
            return;
        }
        let mut indexes = self.indexes.borrow_mut();
        for (pos, field) in p.fields().iter().enumerate() {
            if indexes.len() >= cfg.max_value_indexes {
                break;
            }
            if !matches!(field, PatField::Actual(_)) || indexes.iter().any(|ix| ix.pos == pos) {
                continue;
            }
            let mut ix = ValueIndex::empty(pos);
            for (seq, t) in &self.entries {
                if let Some(v) = t.get(pos) {
                    ix.map.entry(v.clone()).or_default().insert(*seq);
                }
            }
            indexes.push(ix);
            builds.set(builds.get() + 1);
        }
    }

    /// Demotion guard, the inverse of [`Bucket::maybe_promote`]: a
    /// promoted index whose upkeep has far outrun the attempts it served
    /// (`DEMOTE_COST_RATIO` maintenance ops per serve, after a warm-up
    /// floor scaled from `promote_min_tuples`) is costing more than it
    /// saves on this churn-heavy bucket. The coldest such index (fewest
    /// serves) is dropped; the eager head index is never demoted. A
    /// demoted position can re-promote later if the access pattern turns
    /// around — it restarts with fresh accounting, and the warm-up floor
    /// keeps the cycle amortized.
    fn maybe_demote(&mut self, cfg: &StoreConfig, demotions: &Cell<u64>) {
        let warmup = (cfg.promote_min_tuples as u64).saturating_mul(4);
        let indexes = self.indexes.get_mut();
        let victim = indexes
            .iter()
            .enumerate()
            .filter(|(_, ix)| ix.pos != 0)
            .filter(|(_, ix)| {
                let m = ix.maintenance.get();
                m >= warmup && m > DEMOTE_COST_RATIO * ix.served.get()
            })
            .min_by_key(|(_, ix)| ix.served.get())
            .map(|(i, _)| i);
        if let Some(i) = victim {
            indexes.remove(i);
            demotions.set(demotions.get() + 1);
        }
    }

    fn promoted_indexes(&self) -> usize {
        self.indexes.borrow().len().saturating_sub(1)
    }
}

/// Maintenance ops a promoted index may spend per attempt it serves
/// before the demotion guard drops it (see [`Bucket::maybe_demote`]).
const DEMOTE_COST_RATIO: u64 = 8;

/// Antituple (miss) cache: patterns recently observed to match nothing.
///
/// Keyed by `(signature hash, head actual)` so an insert only has to
/// check two keys — a pattern whose head is the constant `h` can never
/// match a tuple whose head differs from `h`, and patterns without a
/// constant head live under `None`. Removals never create matches, so
/// only inserts invalidate. Epoch eviction (drop everything at the cap)
/// keeps the structure trivially correct: a forgotten miss just costs
/// one re-probe.
#[derive(Debug, Default, Clone)]
struct MissCache {
    entries: RefCell<HashMap<MissKey, HashSet<Pattern>>>,
    len: Cell<usize>,
}

/// `(signature hash, constant head if any)` — see [`MissCache`].
type MissKey = (u64, Option<Value>);

impl MissCache {
    fn key(p: &Pattern) -> MissKey {
        (p.signature().stable_hash(), p.head_actual().cloned())
    }

    /// Whether `p` is cached as a known miss.
    fn contains(&self, p: &Pattern) -> bool {
        self.len.get() > 0
            && self
                .entries
                .borrow()
                .get(&Self::key(p))
                .is_some_and(|set| set.contains(p))
    }

    /// Record that `p` matched nothing. `cap == 0` disables caching.
    fn note_miss(&self, p: &Pattern, cap: usize) {
        if cap == 0 {
            return;
        }
        if self.len.get() >= cap {
            self.entries.borrow_mut().clear();
            self.len.set(0);
        }
        if self
            .entries
            .borrow_mut()
            .entry(Self::key(p))
            .or_default()
            .insert(p.clone())
        {
            self.len.set(self.len.get() + 1);
        }
    }

    /// Drop every cached pattern the inserted tuple `t` (of signature
    /// hash `sig_hash`) could satisfy. Only the tuple's own head key and
    /// the headless key can hold such patterns.
    fn invalidate(&self, sig_hash: u64, t: &Tuple) {
        if self.len.get() == 0 {
            return;
        }
        let mut map = self.entries.borrow_mut();
        let mut keys = vec![(sig_hash, None)];
        if let Some(head) = t.get(0) {
            keys.push((sig_hash, Some(head.clone())));
        }
        for key in keys {
            if let Some(set) = map.get_mut(&key) {
                let before = set.len();
                set.retain(|p| !p.matches(t));
                self.len.set(self.len.get() - (before - set.len()));
                if set.is_empty() {
                    map.remove(&key);
                }
            }
        }
    }

    fn clear(&self) {
        self.entries.borrow_mut().clear();
        self.len.set(0);
    }

    fn len(&self) -> usize {
        self.len.get()
    }
}

/// Signature-indexed tuple store with adaptive value-level secondary
/// indexes and an antituple (miss) cache.
#[derive(Debug, Default, Clone)]
pub struct IndexedStore {
    buckets: StableMap<u64, Bucket>,
    next_seq: u64,
    len: usize,
    /// Signature-hash → occupancy. Kept separate from `buckets` because
    /// emptied buckets are removed, while a census entry must survive at
    /// count 0 to preserve its high-water mark.
    census: StableMap<u64, SignatureOccupancy>,
    matches: MatchCounters,
    cfg: StoreConfig,
    /// Per-signature [`StoreConfig`] overrides (hash of the signature →
    /// knobs). A bucket with an override ignores the store-wide `cfg`
    /// entirely. Like everything else the knobs control, overrides are
    /// derived state: replicas may disagree on them without diverging.
    overrides: StableMap<u64, StoreConfig>,
    miss_cache: MissCache,
    index_builds: Cell<u64>,
    index_demotions: Cell<u64>,
}

impl IndexedStore {
    /// An empty store with the default [`StoreConfig`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store with explicit tuning knobs.
    pub fn with_config(cfg: StoreConfig) -> Self {
        IndexedStore {
            cfg,
            ..Self::default()
        }
    }

    /// Override the tuning knobs for one signature (by stable hash),
    /// leaving every other bucket on the store-wide default.
    pub fn set_config_override(&mut self, sig_hash: u64, cfg: StoreConfig) {
        self.overrides.insert(sig_hash, cfg);
    }

    /// The effective knobs for the bucket keyed by `sig_hash`.
    fn cfg_for(&self, sig_hash: u64) -> StoreConfig {
        self.overrides.get(&sig_hash).copied().unwrap_or(self.cfg)
    }

    fn bucket_for_pattern(&self, p: &Pattern) -> Option<&Bucket> {
        self.buckets.get(&p.signature().stable_hash())
    }

    /// Shared insert path: miss-cache invalidation, bucket insert, and
    /// len/census bookkeeping. Every way a tuple can (re)enter the store
    /// — `insert`, `insert_tracked`, and the `restore_at` undo — funnels
    /// through here, so no path can leave a stale cached miss behind.
    /// Returns whether `seq` was fresh (see `Bucket::insert`).
    fn insert_at(&mut self, seq: u64, t: Tuple) -> bool {
        let sig = t.signature();
        let key = sig.stable_hash();
        let cfg = self.cfg_for(key);
        self.miss_cache.invalidate(key, &t);
        let bucket = self.buckets.entry(key).or_default();
        let fresh = bucket.insert(seq, t);
        bucket.maybe_demote(&cfg, &self.index_demotions);
        if fresh {
            self.len += 1;
            let entry = self
                .census
                .entry(key)
                .or_insert_with(|| SignatureOccupancy {
                    signature: sig,
                    count: 0,
                    high_water: 0,
                });
            entry.count += 1;
            entry.high_water = entry.high_water.max(entry.count);
        }
        fresh
    }

    fn census_remove(&mut self, key: u64, n: usize) {
        if n > 0 {
            if let Some(e) = self.census.get_mut(&key) {
                e.count = e.count.saturating_sub(n);
            }
        }
    }

    // ----- tracked operations -------------------------------------------
    //
    // The AGS execution engine needs *exact* rollback: an aborted atomic
    // guarded statement must leave the store bit-identical (including
    // tuple age/insertion order) at every replica. These inherent methods
    // expose the internal sequence number so an undo log can restore a
    // withdrawn tuple at its original position.

    /// Insert and return the internal insertion sequence (for undo).
    pub fn insert_tracked(&mut self, t: Tuple) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let fresh = self.insert_at(seq, t);
        debug_assert!(fresh, "insert_tracked allocated a duplicate seq {seq}");
        seq
    }

    /// Withdraw the oldest match together with its sequence number.
    pub fn take_tracked(&mut self, p: &Pattern) -> Option<(u64, Tuple)> {
        if self.miss_cache.contains(p) {
            self.matches.record_cache_hit();
            return None;
        }
        let key = p.signature().stable_hash();
        let cfg = self.cfg_for(key);
        let Some(bucket) = self.buckets.get_mut(&key) else {
            self.matches.record(0, 0);
            self.miss_cache.note_miss(p, cfg.miss_cache_cap);
            return None;
        };
        let (found, probes) = bucket.find_first(p, &cfg, &self.index_builds);
        self.matches.record(probes, found.is_some() as u64);
        let Some(seq) = found else {
            self.miss_cache.note_miss(p, cfg.miss_cache_cap);
            return None;
        };
        let t = bucket.remove(seq)?;
        bucket.maybe_demote(&cfg, &self.index_demotions);
        self.len -= 1;
        if bucket.entries.is_empty() {
            self.buckets.remove(&key);
        }
        self.census_remove(key, 1);
        Some((seq, t))
    }

    /// Withdraw all matches together with their sequence numbers.
    pub fn take_all_tracked(&mut self, p: &Pattern) -> Vec<(u64, Tuple)> {
        if self.miss_cache.contains(p) {
            self.matches.record_cache_hit();
            return Vec::new();
        }
        let key = p.signature().stable_hash();
        let cfg = self.cfg_for(key);
        let Some(bucket) = self.buckets.get_mut(&key) else {
            self.matches.record(0, 0);
            self.miss_cache.note_miss(p, cfg.miss_cache_cap);
            return Vec::new();
        };
        let (seqs, probes) = bucket.find_all(p, &cfg, &self.index_builds);
        self.matches.record(probes, seqs.len() as u64);
        if seqs.is_empty() {
            self.miss_cache.note_miss(p, cfg.miss_cache_cap);
            return Vec::new();
        }
        let out: Vec<(u64, Tuple)> = seqs
            .into_iter()
            .filter_map(|seq| bucket.remove(seq).map(|t| (seq, t)))
            .collect();
        bucket.maybe_demote(&cfg, &self.index_demotions);
        self.len -= out.len();
        if bucket.entries.is_empty() {
            self.buckets.remove(&key);
        }
        self.census_remove(key, out.len());
        out
    }

    /// Remove the tuple inserted under `seq` (undo of `insert_tracked`).
    pub fn remove_at(&mut self, seq: u64, sig_hash: u64) -> Option<Tuple> {
        let cfg = self.cfg_for(sig_hash);
        let bucket = self.buckets.get_mut(&sig_hash)?;
        let t = bucket.remove(seq)?;
        bucket.maybe_demote(&cfg, &self.index_demotions);
        self.len -= 1;
        if bucket.entries.is_empty() {
            self.buckets.remove(&sig_hash);
        }
        self.census_remove(sig_hash, 1);
        Some(t)
    }

    /// Withdraw *every* tuple stored under the signature with this
    /// stable hash, oldest first — the whole-bucket handoff used when a
    /// cross-shard AGS temporarily moves a signature to another replica
    /// group. Derived state for the signature (value indexes, promotion
    /// history) leaves with the bucket; cached misses stay correct
    /// because a removal can never create a match, and re-installing the
    /// tuples later funnels through `insert`, which invalidates.
    pub fn checkout_signature(&mut self, sig_hash: u64) -> Vec<Tuple> {
        let Some(bucket) = self.buckets.remove(&sig_hash) else {
            return Vec::new();
        };
        let out: Vec<Tuple> = bucket.entries.into_values().collect();
        self.len -= out.len();
        self.census_remove(sig_hash, out.len());
        out
    }

    /// Re-insert a tuple at its original sequence position (undo of
    /// `take_tracked`), restoring its age exactly. Invalidates any
    /// cached miss the restored tuple satisfies (via `insert_at`).
    ///
    /// # Contract
    ///
    /// `seq` must not currently be occupied — it must come from a
    /// preceding `take_tracked`/`take_all_tracked` on this store. A
    /// duplicate seq used to *silently overwrite* the resident tuple
    /// (corrupting `len` and leaving a stale head-index entry); it is now
    /// rejected: the store is left unchanged, `false` is returned, and
    /// debug builds panic.
    pub fn restore_at(&mut self, seq: u64, t: Tuple) -> bool {
        let fresh = self.insert_at(seq, t);
        debug_assert!(fresh, "restore_at seq {seq} is already occupied");
        fresh
    }
}

impl Store for IndexedStore {
    fn insert(&mut self, t: Tuple) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let fresh = self.insert_at(seq, t);
        debug_assert!(fresh, "insert allocated a duplicate seq {seq}");
    }

    fn take(&mut self, p: &Pattern) -> Option<Tuple> {
        self.take_tracked(p).map(|(_, t)| t)
    }

    fn read(&self, p: &Pattern) -> Option<Tuple> {
        if self.miss_cache.contains(p) {
            self.matches.record_cache_hit();
            return None;
        }
        let cfg = self.cfg_for(p.signature().stable_hash());
        let Some(bucket) = self.bucket_for_pattern(p) else {
            self.matches.record(0, 0);
            self.miss_cache.note_miss(p, cfg.miss_cache_cap);
            return None;
        };
        let (found, probes) = bucket.find_first(p, &cfg, &self.index_builds);
        self.matches.record(probes, found.is_some() as u64);
        if found.is_none() {
            self.miss_cache.note_miss(p, cfg.miss_cache_cap);
        }
        found.map(|seq| bucket.entries[&seq].clone())
    }

    fn count(&self, p: &Pattern) -> usize {
        if self.miss_cache.contains(p) {
            self.matches.record_cache_hit();
            return 0;
        }
        let cfg = self.cfg_for(p.signature().stable_hash());
        let Some(bucket) = self.bucket_for_pattern(p) else {
            self.matches.record(0, 0);
            self.miss_cache.note_miss(p, cfg.miss_cache_cap);
            return 0;
        };
        let (found, probes) = bucket.find_all(p, &cfg, &self.index_builds);
        self.matches.record(probes, found.len() as u64);
        if found.is_empty() {
            self.miss_cache.note_miss(p, cfg.miss_cache_cap);
        }
        found.len()
    }

    fn take_all(&mut self, p: &Pattern) -> Vec<Tuple> {
        self.take_all_tracked(p)
            .into_iter()
            .map(|(_, t)| t)
            .collect()
    }

    fn read_all(&self, p: &Pattern) -> Vec<Tuple> {
        if self.miss_cache.contains(p) {
            self.matches.record_cache_hit();
            return Vec::new();
        }
        let cfg = self.cfg_for(p.signature().stable_hash());
        let Some(bucket) = self.bucket_for_pattern(p) else {
            self.matches.record(0, 0);
            self.miss_cache.note_miss(p, cfg.miss_cache_cap);
            return Vec::new();
        };
        let (found, probes) = bucket.find_all(p, &cfg, &self.index_builds);
        self.matches.record(probes, found.len() as u64);
        if found.is_empty() {
            self.miss_cache.note_miss(p, cfg.miss_cache_cap);
        }
        found
            .into_iter()
            .map(|seq| bucket.entries[&seq].clone())
            .collect()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.buckets.clear();
        self.census.clear();
        self.miss_cache.clear();
        self.len = 0;
    }

    fn snapshot(&self) -> Vec<Tuple> {
        let mut all: Vec<(u64, Tuple)> = self
            .buckets
            .values()
            .flat_map(|b| b.entries.iter().map(|(s, t)| (*s, t.clone())))
            .collect();
        all.sort_by_key(|(s, _)| *s);
        all.into_iter().map(|(_, t)| t).collect()
    }

    fn match_stats(&self) -> MatchStats {
        self.matches.stats()
    }

    fn signature_census(&self) -> Vec<SignatureOccupancy> {
        let mut out: Vec<SignatureOccupancy> = self.census.values().cloned().collect();
        out.sort_by(|a, b| a.signature.cmp(&b.signature));
        out
    }

    fn signature_len(&self, sig_hash: u64) -> usize {
        self.census.get(&sig_hash).map_or(0, |e| e.count)
    }

    fn index_report(&self) -> IndexReport {
        IndexReport {
            value_indexes: self.buckets.values().map(Bucket::promoted_indexes).sum(),
            index_builds: self.index_builds.get(),
            index_demotions: self.index_demotions.get(),
            miss_cached: self.miss_cache.len(),
        }
    }
}

/// Baseline store: a flat insertion-ordered vector with linear scans.
/// Exists to quantify what signature indexing buys (ablation A2).
#[derive(Debug, Default, Clone)]
pub struct LinearStore {
    entries: Vec<(u64, Tuple)>,
    next_seq: u64,
    census: StableMap<u64, SignatureOccupancy>,
    matches: MatchCounters,
}

impl LinearStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn census_insert(&mut self, sig: Signature) {
        let entry = self
            .census
            .entry(sig.stable_hash())
            .or_insert_with(|| SignatureOccupancy {
                signature: sig,
                count: 0,
                high_water: 0,
            });
        entry.count += 1;
        entry.high_water = entry.high_water.max(entry.count);
    }

    fn census_remove(&mut self, key: u64, n: usize) {
        if n > 0 {
            if let Some(e) = self.census.get_mut(&key) {
                e.count = e.count.saturating_sub(n);
            }
        }
    }
}

impl Store for LinearStore {
    fn insert(&mut self, t: Tuple) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.census_insert(t.signature());
        self.entries.push((seq, t));
    }

    fn take(&mut self, p: &Pattern) -> Option<Tuple> {
        let mut probes = 0u64;
        let idx = self.entries.iter().position(|(_, t)| {
            probes += 1;
            p.matches(t)
        });
        self.matches.record(probes, idx.is_some() as u64);
        let idx = idx?;
        let t = self.entries.remove(idx).1;
        self.census_remove(t.signature().stable_hash(), 1);
        Some(t)
    }

    fn read(&self, p: &Pattern) -> Option<Tuple> {
        let mut probes = 0u64;
        let found = self
            .entries
            .iter()
            .find(|(_, t)| {
                probes += 1;
                p.matches(t)
            })
            .map(|(_, t)| t.clone());
        self.matches.record(probes, found.is_some() as u64);
        found
    }

    fn count(&self, p: &Pattern) -> usize {
        let n = self.entries.iter().filter(|(_, t)| p.matches(t)).count();
        self.matches.record(self.entries.len() as u64, n as u64);
        n
    }

    fn take_all(&mut self, p: &Pattern) -> Vec<Tuple> {
        // Drain-partition: matches are moved out, non-matches moved back.
        // No tuple payload is ever cloned on this withdraw path.
        let probes = self.entries.len() as u64;
        let mut out = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        for (seq, t) in self.entries.drain(..) {
            if p.matches(&t) {
                out.push(t);
            } else {
                kept.push((seq, t));
            }
        }
        self.entries = kept;
        self.matches.record(probes, out.len() as u64);
        self.census_remove(p.signature().stable_hash(), out.len());
        out
    }

    fn read_all(&self, p: &Pattern) -> Vec<Tuple> {
        let out: Vec<Tuple> = self
            .entries
            .iter()
            .filter(|(_, t)| p.matches(t))
            .map(|(_, t)| t.clone())
            .collect();
        self.matches
            .record(self.entries.len() as u64, out.len() as u64);
        out
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.census.clear();
    }

    fn snapshot(&self) -> Vec<Tuple> {
        self.entries.iter().map(|(_, t)| t.clone()).collect()
    }

    fn match_stats(&self) -> MatchStats {
        self.matches.stats()
    }

    fn signature_census(&self) -> Vec<SignatureOccupancy> {
        let mut out: Vec<SignatureOccupancy> = self.census.values().cloned().collect();
        out.sort_by(|a, b| a.signature.cmp(&b.signature));
        out
    }

    fn signature_len(&self, sig_hash: u64) -> usize {
        self.census.get(&sig_hash).map_or(0, |e| e.count)
    }
}

/// Backing representation of an [`AdaptiveStore`].
#[derive(Debug, Clone)]
enum AdaptiveInner {
    Linear(LinearStore),
    Indexed(IndexedStore),
}

/// A store that starts as a cheap linear scan and promotes itself to the
/// indexed representation when the live probe-efficiency figures say the
/// scan has become hot (the census/gauge data from the observatory PR,
/// finally consumed). Promotion replays the snapshot in insertion order,
/// so oldest-match results are identical before and after — the switch
/// is invisible to every caller except the probe counters.
///
/// There is no demotion: once a space has demonstrated it is hot, the
/// index maintenance cost is assumed to stay worth paying.
#[derive(Debug, Clone)]
pub struct AdaptiveStore {
    cfg: StoreConfig,
    inner: AdaptiveInner,
    /// Match totals accumulated by the linear phase, merged into
    /// [`Store::match_stats`] so monotonic-counter consumers never see a
    /// reset at promotion.
    base: MatchStats,
    /// Linear-phase census at promotion (high-water marks survive the
    /// replay, which would otherwise under-report drained signatures).
    carry: Vec<SignatureOccupancy>,
}

impl Default for AdaptiveStore {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaptiveStore {
    /// An empty adaptive store with the default [`StoreConfig`].
    pub fn new() -> Self {
        Self::with_config(StoreConfig::default())
    }

    /// An empty adaptive store with explicit tuning knobs.
    pub fn with_config(cfg: StoreConfig) -> Self {
        AdaptiveStore {
            cfg,
            inner: AdaptiveInner::Linear(LinearStore::new()),
            base: MatchStats::default(),
            carry: Vec::new(),
        }
    }

    /// Whether the store has promoted to the indexed representation.
    pub fn promoted(&self) -> bool {
        matches!(self.inner, AdaptiveInner::Indexed(_))
    }

    /// Re-evaluate the promotion decision. Called by [`crate::LocalSpace`]
    /// after match-shaped operations; promotes when the space is big
    /// enough and either a recent attempt scanned past
    /// `promote_after_probes` tuples on average, or sustained efficiency
    /// dropped below `promote_below_bp` basis points.
    pub fn tick(&mut self) {
        let AdaptiveInner::Linear(lin) = &self.inner else {
            return;
        };
        if lin.len() < self.cfg.promote_min_tuples {
            return;
        }
        let stats = lin.match_stats();
        let hot = stats.probes_per_attempt() > self.cfg.promote_after_probes as f64
            || (stats.attempts >= 16 && stats.efficiency_bp() < self.cfg.promote_below_bp);
        if !hot {
            return;
        }
        let mut idx = IndexedStore::with_config(self.cfg);
        for t in lin.snapshot() {
            idx.insert(t);
        }
        self.base = self.base.plus(&stats);
        self.carry = lin.signature_census();
        self.inner = AdaptiveInner::Indexed(idx);
    }

    fn as_store(&self) -> &dyn Store {
        match &self.inner {
            AdaptiveInner::Linear(s) => s,
            AdaptiveInner::Indexed(s) => s,
        }
    }

    fn as_store_mut(&mut self) -> &mut dyn Store {
        match &mut self.inner {
            AdaptiveInner::Linear(s) => s,
            AdaptiveInner::Indexed(s) => s,
        }
    }
}

impl Store for AdaptiveStore {
    fn insert(&mut self, t: Tuple) {
        self.as_store_mut().insert(t);
    }

    fn take(&mut self, p: &Pattern) -> Option<Tuple> {
        self.as_store_mut().take(p)
    }

    fn read(&self, p: &Pattern) -> Option<Tuple> {
        self.as_store().read(p)
    }

    fn count(&self, p: &Pattern) -> usize {
        self.as_store().count(p)
    }

    fn take_all(&mut self, p: &Pattern) -> Vec<Tuple> {
        self.as_store_mut().take_all(p)
    }

    fn read_all(&self, p: &Pattern) -> Vec<Tuple> {
        self.as_store().read_all(p)
    }

    fn len(&self) -> usize {
        self.as_store().len()
    }

    fn clear(&mut self) {
        // The census contract says `clear` resets occupancy history, so
        // the carried linear-phase high-water marks go too. Match totals
        // survive (they are "since the store was created", like the
        // underlying stores' own counters).
        self.carry.clear();
        self.as_store_mut().clear();
    }

    fn snapshot(&self) -> Vec<Tuple> {
        self.as_store().snapshot()
    }

    fn match_stats(&self) -> MatchStats {
        self.base.plus(&self.as_store().match_stats())
    }

    fn signature_census(&self) -> Vec<SignatureOccupancy> {
        let mut out = self.as_store().signature_census();
        for carried in &self.carry {
            match out.iter_mut().find(|o| o.signature == carried.signature) {
                Some(o) => o.high_water = o.high_water.max(carried.high_water),
                // Signatures drained before promotion are absent from the
                // replayed store; keep their history at count 0.
                None => out.push(SignatureOccupancy {
                    signature: carried.signature.clone(),
                    count: 0,
                    high_water: carried.high_water,
                }),
            }
        }
        out.sort_by(|a, b| a.signature.cmp(&b.signature));
        out
    }

    fn signature_len(&self, sig_hash: u64) -> usize {
        self.as_store().signature_len(sig_hash)
    }

    fn index_report(&self) -> IndexReport {
        self.as_store().index_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linda_tuple::{pat, tuple};

    fn stores() -> Vec<Box<dyn Store>> {
        vec![
            Box::new(IndexedStore::new()),
            Box::new(LinearStore::new()),
            Box::new(AdaptiveStore::new()),
        ]
    }

    #[test]
    fn insert_take_roundtrip() {
        for mut s in stores() {
            s.insert(tuple!("a", 1));
            assert_eq!(s.len(), 1);
            assert_eq!(s.take(&pat!("a", ?int)), Some(tuple!("a", 1)));
            assert_eq!(s.len(), 0);
            assert!(s.is_empty());
            assert_eq!(s.take(&pat!("a", ?int)), None);
        }
    }

    #[test]
    fn oldest_match_fifo() {
        for mut s in stores() {
            s.insert(tuple!("t", 1));
            s.insert(tuple!("t", 2));
            s.insert(tuple!("t", 3));
            assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 1)));
            assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 2)));
            assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 3)));
        }
    }

    #[test]
    fn oldest_match_skips_nonmatching_newer_head() {
        for mut s in stores() {
            s.insert(tuple!("x", 1));
            s.insert(tuple!("y", 2));
            s.insert(tuple!("x", 3));
            // Head-indexed path: pattern with head actual "y".
            assert_eq!(s.take(&pat!("y", ?int)), Some(tuple!("y", 2)));
            // Generic path: all-formal pattern sees oldest overall.
            assert_eq!(s.take(&pat!(?str, ?int)), Some(tuple!("x", 1)));
            assert_eq!(s.take(&pat!(?str, ?int)), Some(tuple!("x", 3)));
        }
    }

    #[test]
    fn read_does_not_remove() {
        for mut s in stores() {
            s.insert(tuple!("a", 1));
            assert_eq!(s.read(&pat!("a", ?int)), Some(tuple!("a", 1)));
            assert_eq!(s.len(), 1);
            assert!(s.contains(&pat!("a", ?int)));
            assert!(!s.contains(&pat!("b", ?int)));
        }
    }

    #[test]
    fn count_and_read_all() {
        for mut s in stores() {
            for i in 0..5 {
                s.insert(tuple!("n", i));
            }
            s.insert(tuple!("other", 1.0));
            assert_eq!(s.count(&pat!("n", ?int)), 5);
            assert_eq!(s.count(&pat!("n", 3)), 1);
            assert_eq!(s.count(&pat!("zzz", ?int)), 0);
            let all = s.read_all(&pat!("n", ?int));
            assert_eq!(all.len(), 5);
            assert_eq!(all[0], tuple!("n", 0));
            assert_eq!(all[4], tuple!("n", 4));
            assert_eq!(s.len(), 6);
        }
    }

    #[test]
    fn take_all_removes_only_matches() {
        for mut s in stores() {
            for i in 0..4 {
                s.insert(tuple!("job", i));
            }
            s.insert(tuple!("done", 0));
            let taken = s.take_all(&pat!("job", ?int));
            assert_eq!(taken.len(), 4);
            assert_eq!(taken[0], tuple!("job", 0));
            assert_eq!(s.len(), 1);
            assert_eq!(s.take(&pat!("done", ?int)), Some(tuple!("done", 0)));
        }
    }

    #[test]
    fn signatures_do_not_cross_match() {
        for mut s in stores() {
            s.insert(tuple!("a", 1));
            s.insert(tuple!("a", 1.0));
            s.insert(tuple!("a", 1, 2));
            assert_eq!(s.take(&pat!("a", ?float)), Some(tuple!("a", 1.0)));
            assert_eq!(s.take(&pat!("a", ?int, ?int)), Some(tuple!("a", 1, 2)));
            assert_eq!(s.take(&pat!("a", ?int)), Some(tuple!("a", 1)));
        }
    }

    #[test]
    fn duplicate_tuples_are_a_multiset() {
        for mut s in stores() {
            s.insert(tuple!("dup"));
            s.insert(tuple!("dup"));
            assert_eq!(s.count(&pat!("dup")), 2);
            assert_eq!(s.take(&pat!("dup")), Some(tuple!("dup")));
            assert_eq!(s.count(&pat!("dup")), 1);
        }
    }

    #[test]
    fn empty_tuple_storage() {
        for mut s in stores() {
            s.insert(tuple!());
            assert_eq!(s.take(&pat!()), Some(tuple!()));
        }
    }

    #[test]
    fn snapshot_preserves_insertion_order() {
        for mut s in stores() {
            s.insert(tuple!("b", 2));
            s.insert(tuple!("a", 1));
            s.insert(tuple!("c", 3.0));
            assert_eq!(
                s.snapshot(),
                vec![tuple!("b", 2), tuple!("a", 1), tuple!("c", 3.0)]
            );
        }
    }

    #[test]
    fn clear_empties() {
        for mut s in stores() {
            s.insert(tuple!(1));
            s.insert(tuple!(2));
            s.clear();
            assert_eq!(s.len(), 0);
            assert_eq!(s.take(&pat!(?int)), None);
        }
    }

    #[test]
    fn head_index_cleanup_after_removal() {
        let mut s = IndexedStore::new();
        s.insert(tuple!("k", 1));
        assert_eq!(s.take(&pat!("k", ?int)), Some(tuple!("k", 1)));
        // Bucket is gone; reinsert works and matches again.
        s.insert(tuple!("k", 2));
        assert_eq!(s.read(&pat!("k", ?int)), Some(tuple!("k", 2)));
    }

    #[test]
    fn mid_pattern_actuals_filter() {
        for mut s in stores() {
            s.insert(tuple!("p", 1, "x"));
            s.insert(tuple!("p", 2, "y"));
            assert_eq!(s.take(&pat!("p", ?int, "y")), Some(tuple!("p", 2, "y")));
        }
    }

    #[test]
    fn signature_census_counts_and_high_water() {
        for mut s in stores() {
            for i in 0..3 {
                s.insert(tuple!("job", i));
            }
            s.insert(tuple!("flag"));
            let census = s.signature_census();
            assert_eq!(census.len(), 2);
            let job = census
                .iter()
                .find(|c| c.signature.to_string() == "<str,int>")
                .unwrap();
            assert_eq!((job.count, job.high_water), (3, 3));
            // Draining below the high-water mark keeps the mark.
            s.take(&pat!("job", ?int));
            s.take(&pat!("job", ?int));
            let job_hash = tuple!("job", 0).signature().stable_hash();
            assert_eq!(s.signature_len(job_hash), 1);
            let census = s.signature_census();
            let job = census
                .iter()
                .find(|c| c.signature.to_string() == "<str,int>")
                .unwrap();
            assert_eq!((job.count, job.high_water), (1, 3));
            // take_all empties the signature but the census entry stays.
            s.take_all(&pat!("job", ?int));
            assert_eq!(s.signature_len(job_hash), 0);
            let census = s.signature_census();
            let job = census
                .iter()
                .find(|c| c.signature.to_string() == "<str,int>")
                .unwrap();
            assert_eq!((job.count, job.high_water), (0, 3));
            // clear resets the census entirely.
            s.clear();
            assert!(s.signature_census().is_empty());
        }
    }

    #[test]
    fn census_tracks_tracked_undo_paths() {
        let mut s = IndexedStore::new();
        let sig = tuple!("t", 0).signature().stable_hash();
        let seq = s.insert_tracked(tuple!("t", 0));
        assert_eq!(s.signature_len(sig), 1);
        s.remove_at(seq, sig);
        assert_eq!(s.signature_len(sig), 0);
        s.insert(tuple!("t", 1));
        let (seq, t) = s.take_tracked(&pat!("t", ?int)).unwrap();
        assert_eq!(s.signature_len(sig), 0);
        s.restore_at(seq, t);
        assert_eq!(s.signature_len(sig), 1);
        let c = &s.signature_census()[0];
        assert_eq!((c.count, c.high_water), (1, 1), "undo is not a new peak");
    }

    #[test]
    fn match_stats_count_probes_and_hits() {
        // Indexed: miss on an absent signature costs zero probes.
        let s = IndexedStore::new();
        assert!(!s.contains(&pat!("nope", ?int)));
        let st = s.match_stats();
        assert_eq!((st.attempts, st.probes, st.hits), (1, 0, 0));

        // Linear: the same miss scans the whole store.
        let mut lin = LinearStore::new();
        for i in 0..5 {
            lin.insert(tuple!("job", i));
        }
        assert!(!lin.contains(&pat!("nope", ?int)));
        let st = lin.match_stats();
        assert_eq!((st.attempts, st.probes, st.hits), (1, 5, 0));
        assert_eq!(st.probes_per_attempt(), 5.0);
        assert_eq!(st.efficiency(), 0.0);

        // A successful head-indexed take probes exactly one tuple.
        let mut idx = IndexedStore::new();
        idx.insert(tuple!("a", 1));
        idx.insert(tuple!("b", 2));
        assert!(idx.take(&pat!("b", ?int)).is_some());
        let st = idx.match_stats();
        assert_eq!((st.attempts, st.probes, st.hits), (1, 1, 1));
        assert_eq!(st.efficiency(), 1.0);

        // Deltas for counter feeding.
        assert!(idx.take(&pat!("a", ?int)).is_some());
        let newer = idx.match_stats();
        assert_eq!(newer.since(&st).attempts, 1);
    }

    #[test]
    fn efficiency_basis_points() {
        let st = MatchStats {
            attempts: 1,
            probes: 1563,
            hits: 1,
            cache_hits: 0,
        };
        // Integer percent would floor this to 0; basis points keep it
        // distinguishable from idle.
        assert_eq!(st.efficiency_bp(), 6);
        let idle = MatchStats::default();
        assert_eq!(idle.efficiency_bp(), 10_000);
    }

    #[test]
    fn repeated_miss_is_cache_hit_with_zero_probes() {
        let mut s = IndexedStore::new();
        for i in 0..4 {
            s.insert(tuple!("job", i));
        }
        // First miss probes the bucket and seeds the cache.
        assert_eq!(s.take(&pat!("job", 99)), None);
        let st1 = s.match_stats();
        assert_eq!(st1.cache_hits, 0);
        assert!(st1.probes > 0);
        // Repeats are answered by the cache: attempt counted, zero probes.
        for _ in 0..3 {
            assert_eq!(s.take(&pat!("job", 99)), None);
        }
        assert!(!s.contains(&pat!("job", 99)));
        assert_eq!(s.count(&pat!("job", 99)), 0);
        assert!(s.read_all(&pat!("job", 99)).is_empty());
        assert!(s.take_all(&pat!("job", 99)).is_empty());
        let st2 = s.match_stats();
        let delta = st2.since(&st1);
        assert_eq!(delta.attempts, 7, "cache hits still count as attempts");
        assert_eq!(delta.probes, 0, "cache hits probe nothing");
        assert_eq!(delta.cache_hits, 7);
        assert_eq!(s.index_report().miss_cached, 1);
    }

    #[test]
    fn miss_cache_invalidated_only_by_matching_insert() {
        let mut s = IndexedStore::new();
        s.insert(tuple!("job", 1));
        assert_eq!(s.take(&pat!("job", 0)), None); // cached miss
                                                   // Near misses — same signature, same head, different value — do
                                                   // NOT invalidate: the cached pattern still cannot match.
        s.insert(tuple!("job", 5));
        s.insert(tuple!("other", 0));
        let before = s.match_stats();
        assert_eq!(s.take(&pat!("job", 0)), None);
        let d = s.match_stats().since(&before);
        assert_eq!((d.probes, d.cache_hits), (0, 1), "near miss kept cache");
        // A genuinely matching insert invalidates; the take now succeeds.
        s.insert(tuple!("job", 0));
        assert_eq!(s.take(&pat!("job", 0)), Some(tuple!("job", 0)));
    }

    #[test]
    fn miss_cache_headless_pattern_invalidated() {
        let mut s = IndexedStore::new();
        s.insert(tuple!("a", 1));
        let p = pat!(?str, 7);
        assert_eq!(s.read(&p), None);
        assert_eq!(s.index_report().miss_cached, 1);
        s.insert(tuple!("z", 7));
        assert_eq!(s.read(&p), Some(tuple!("z", 7)));
    }

    #[test]
    fn miss_cache_empty_tuple() {
        let mut s = IndexedStore::new();
        assert_eq!(s.take(&pat!()), None);
        assert_eq!(s.index_report().miss_cached, 1);
        s.insert(tuple!());
        assert_eq!(s.take(&pat!()), Some(tuple!()));
    }

    #[test]
    fn miss_cache_survives_unrelated_take_all() {
        let mut s = IndexedStore::new();
        for i in 0..3 {
            s.insert(tuple!("job", i));
        }
        assert_eq!(s.read(&pat!("job", 99)), None);
        // Withdrawals can never create a match; the cache entry stays and
        // stays correct.
        assert_eq!(s.take_all(&pat!("job", ?int)).len(), 3);
        let before = s.match_stats();
        assert_eq!(s.read(&pat!("job", 99)), None);
        assert_eq!(s.match_stats().since(&before).cache_hits, 1);
    }

    #[test]
    fn miss_cache_epoch_eviction_at_cap() {
        let mut s = IndexedStore::with_config(StoreConfig {
            miss_cache_cap: 2,
            ..StoreConfig::default()
        });
        assert_eq!(s.take(&pat!("a", 1)), None);
        assert_eq!(s.take(&pat!("a", 2)), None);
        assert_eq!(s.index_report().miss_cached, 2);
        // Third distinct miss crosses the cap: the whole epoch drops,
        // then the new miss is cached.
        assert_eq!(s.take(&pat!("a", 3)), None);
        assert_eq!(s.index_report().miss_cached, 1);
        // Evicted patterns are re-probed, not wrong.
        s.insert(tuple!("a", 1));
        assert_eq!(s.take(&pat!("a", 1)), Some(tuple!("a", 1)));
    }

    #[test]
    fn miss_cache_disabled_by_zero_cap() {
        let mut s = IndexedStore::with_config(StoreConfig {
            miss_cache_cap: 0,
            ..StoreConfig::default()
        });
        assert_eq!(s.take(&pat!("a", 1)), None);
        assert_eq!(s.take(&pat!("a", 1)), None);
        let st = s.match_stats();
        assert_eq!((st.cache_hits, s.index_report().miss_cached), (0, 0));
    }

    #[test]
    fn second_field_index_promotes_and_serves() {
        let cfg = StoreConfig {
            promote_min_tuples: 8,
            promote_after_probes: 4,
            ..StoreConfig::default()
        };
        let mut s = IndexedStore::with_config(cfg);
        for i in 0..64 {
            s.insert(tuple!("task", i, 0.5));
        }
        assert_eq!(s.index_report().value_indexes, 0);
        // All tuples share the head "task", so the head index is useless
        // here: the first attempt scans, crosses the promotion bar, and
        // builds a position-1 index.
        let before = s.match_stats();
        assert_eq!(
            s.read(&pat!("task", 63, ?float)),
            Some(tuple!("task", 63, 0.5))
        );
        let first = s.match_stats().since(&before);
        assert_eq!(first.probes, 64, "first attempt pays the scan");
        let rep = s.index_report();
        assert_eq!((rep.value_indexes, rep.index_builds), (1, 1));
        // Subsequent bound-second-field attempts are O(1).
        let before = s.match_stats();
        assert_eq!(
            s.read(&pat!("task", 17, ?float)),
            Some(tuple!("task", 17, 0.5))
        );
        assert_eq!(s.match_stats().since(&before).probes, 1);
        // A miss on an absent indexed value probes nothing at all.
        let before = s.match_stats();
        assert_eq!(s.read(&pat!("task", -1, ?float)), None);
        assert_eq!(s.match_stats().since(&before).probes, 0);
        // The index tracks withdrawals: taking by indexed value stays
        // oldest-match correct as entries disappear.
        assert_eq!(
            s.take(&pat!("task", 17, ?float)),
            Some(tuple!("task", 17, 0.5))
        );
        assert_eq!(s.take(&pat!("task", 17, ?float)), None);
        assert_eq!(s.len(), 63);
    }

    #[test]
    fn promotion_respects_max_value_indexes() {
        let cfg = StoreConfig {
            promote_min_tuples: 4,
            promote_after_probes: 1,
            max_value_indexes: 2,
            ..StoreConfig::default()
        };
        let mut s = IndexedStore::with_config(cfg);
        for i in 0..8 {
            s.insert(tuple!("t", i, i * 10, i * 100));
        }
        // This pattern has constants at positions 1, 2, 3 — but only one
        // slot remains beside the head index.
        s.read(&pat!("t", 3, 30, 300));
        let rep = s.index_report();
        assert_eq!(rep.value_indexes, 1, "cap is bucket-wide, head included");
    }

    #[test]
    fn small_buckets_never_promote() {
        let mut s = IndexedStore::new(); // promote_min_tuples = 32
        for i in 0..16 {
            s.insert(tuple!("t", i));
        }
        s.read(&pat!("t", 15)); // scans 16 > promote_after_probes
        assert_eq!(s.index_report().value_indexes, 0);
    }

    #[test]
    fn adaptive_store_promotes_when_hot() {
        let cfg = StoreConfig {
            promote_min_tuples: 16,
            promote_after_probes: 8,
            ..StoreConfig::default()
        };
        let mut s = AdaptiveStore::with_config(cfg);
        for i in 0..64 {
            s.insert(tuple!("n", i));
        }
        s.tick();
        assert!(!s.promoted(), "no match traffic yet");
        let pre_stats = s.match_stats();
        assert_eq!(s.read(&pat!("n", 63)), Some(tuple!("n", 63))); // 64-probe scan
        s.tick();
        assert!(s.promoted(), "expensive scan promotes");
        // Totals are monotonic across the switch.
        let post = s.match_stats();
        assert!(post.attempts > pre_stats.attempts);
        assert!(post.probes >= 64);
        // Results identical post-promotion; oldest-match preserved.
        assert_eq!(s.take(&pat!("n", ?int)), Some(tuple!("n", 0)));
        assert_eq!(s.take(&pat!("n", ?int)), Some(tuple!("n", 1)));
        assert_eq!(s.len(), 62);
    }

    #[test]
    fn adaptive_store_stays_linear_when_small() {
        let mut s = AdaptiveStore::new();
        for i in 0..8 {
            s.insert(tuple!("n", i));
        }
        for i in 0..32 {
            s.read(&pat!("n", i % 8));
        }
        s.tick();
        assert!(!s.promoted(), "below promote_min_tuples");
    }

    #[test]
    fn adaptive_census_survives_promotion() {
        let cfg = StoreConfig {
            promote_min_tuples: 4,
            promote_after_probes: 2,
            ..StoreConfig::default()
        };
        let mut s = AdaptiveStore::with_config(cfg);
        for i in 0..6 {
            s.insert(tuple!("peak", i));
        }
        for _ in 0..4 {
            s.take(&pat!("peak", ?int));
        }
        // Drain a whole signature before promotion.
        s.insert(tuple!("gone"));
        s.take(&pat!("gone"));
        // Force promotion via an expensive scan over a big-enough store.
        for i in 0..4 {
            s.insert(tuple!("x", i, i));
        }
        s.read(&pat!("x", 99, ?int));
        s.tick();
        assert!(s.promoted());
        let census = s.signature_census();
        let peak = census
            .iter()
            .find(|c| c.signature.to_string() == "<str,int>")
            .unwrap();
        assert_eq!(
            (peak.count, peak.high_water),
            (2, 6),
            "high-water carried across promotion"
        );
        let gone = census
            .iter()
            .find(|c| c.signature.to_string() == "<str>")
            .unwrap();
        assert_eq!((gone.count, gone.high_water), (0, 1));
    }

    #[test]
    fn indexed_and_linear_agree_on_random_workload() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut idx = IndexedStore::new();
        let mut lin = LinearStore::new();
        let heads = ["a", "b", "c"];
        for _ in 0..2000 {
            let op: u8 = rng.gen_range(0..4);
            let head = heads[rng.gen_range(0..heads.len())];
            let v: i64 = rng.gen_range(0..5);
            match op {
                0 => {
                    let t = tuple!(head, v);
                    idx.insert(t.clone());
                    lin.insert(t);
                }
                1 => {
                    let p = pat!(head, ?int);
                    assert_eq!(idx.take(&p), lin.take(&p));
                }
                2 => {
                    let p = pat!(head, v);
                    assert_eq!(idx.read(&p), lin.read(&p));
                }
                _ => {
                    let p = pat!(?str, v);
                    assert_eq!(idx.count(&p), lin.count(&p));
                }
            }
            assert_eq!(idx.len(), lin.len());
        }
        assert_eq!(idx.snapshot(), lin.snapshot());
    }
}

#[cfg(test)]
mod tracked_tests {
    use super::*;
    use linda_tuple::{pat, tuple};

    #[test]
    fn tracked_roundtrip_preserves_age() {
        let mut s = IndexedStore::new();
        s.insert(tuple!("t", 1));
        s.insert(tuple!("t", 2));
        s.insert(tuple!("t", 3));
        // Withdraw the middle one by value, then restore it.
        let (seq, t) = s.take_tracked(&pat!("t", 2)).unwrap();
        assert_eq!(t, tuple!("t", 2));
        s.restore_at(seq, t);
        // Age order must be exactly as before the withdrawal.
        assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 1)));
        assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 2)));
        assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 3)));
    }

    #[test]
    fn remove_at_undoes_insert() {
        let mut s = IndexedStore::new();
        let t = tuple!("x", 9);
        let sig = t.signature().stable_hash();
        let seq = s.insert_tracked(t);
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove_at(seq, sig), Some(tuple!("x", 9)));
        assert_eq!(s.len(), 0);
        assert_eq!(s.remove_at(seq, sig), None);
    }

    #[test]
    fn restore_at_rejects_occupied_seq() {
        let mut s = IndexedStore::new();
        s.insert(tuple!("t", 1));
        let (seq, t) = s.take_tracked(&pat!("t", 1)).unwrap();
        assert!(s.restore_at(seq, t));
        // The slot is occupied again: a second restore at the same seq
        // must not overwrite it or corrupt `len`.
        let dup = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.restore_at(seq, tuple!("t", 99))
        }));
        if cfg!(debug_assertions) {
            assert!(dup.is_err(), "debug builds panic on duplicate seq");
        } else {
            assert!(!dup.unwrap(), "release builds report the rejection");
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.read(&pat!("t", ?int)), Some(tuple!("t", 1)));
        assert_eq!(s.count(&pat!("t", 99)), 0, "duplicate must not land");
    }

    #[test]
    fn take_all_tracked_restores() {
        let mut s = IndexedStore::new();
        for i in 0..4 {
            s.insert(tuple!("job", i));
        }
        s.insert(tuple!("other"));
        let taken = s.take_all_tracked(&pat!("job", ?int));
        assert_eq!(taken.len(), 4);
        assert_eq!(s.len(), 1);
        for (seq, t) in taken {
            s.restore_at(seq, t);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.take(&pat!("job", 0)), Some(tuple!("job", 0)));
    }

    #[test]
    fn restore_at_invalidates_cached_miss() {
        // The AGS rollback path re-creates tuples: a miss cached while
        // the tuple was withdrawn must not survive its restoration.
        let mut s = IndexedStore::new();
        s.insert(tuple!("lock"));
        let (seq, t) = s.take_tracked(&pat!("lock")).unwrap();
        assert_eq!(s.read(&pat!("lock")), None); // cached
        s.restore_at(seq, t);
        assert_eq!(s.read(&pat!("lock")), Some(tuple!("lock")));
    }

    #[test]
    fn per_signature_config_override_applies() {
        // Store-wide default caches misses; the override disables the
        // cache for one signature only.
        let mut s = IndexedStore::new();
        let job_sig = tuple!("job", 0).signature().stable_hash();
        s.set_config_override(
            job_sig,
            StoreConfig {
                miss_cache_cap: 0,
                ..StoreConfig::default()
            },
        );
        assert_eq!(s.take(&pat!("job", 1)), None);
        assert_eq!(s.take(&pat!("job", 1)), None);
        assert_eq!(s.match_stats().cache_hits, 0, "override disabled caching");
        assert_eq!(s.index_report().miss_cached, 0);
        // A signature without an override still uses the default cache.
        assert_eq!(s.take(&pat!("other", 1.0)), None);
        assert_eq!(s.take(&pat!("other", 1.0)), None);
        assert_eq!(s.match_stats().cache_hits, 1);
    }

    #[test]
    fn per_signature_override_gates_promotion() {
        // The override raises the promotion bar for the hot signature:
        // scans that would promote under the default never do.
        let mut s = IndexedStore::new(); // promote_min_tuples = 32
        let sig = tuple!("t", 0, 0).signature().stable_hash();
        s.set_config_override(
            sig,
            StoreConfig {
                promote_min_tuples: usize::MAX,
                ..StoreConfig::default()
            },
        );
        for i in 0..64 {
            s.insert(tuple!("t", i, i));
        }
        s.read(&pat!("t", 63, ?int)); // 64-probe scan, would promote by default
        assert_eq!(s.index_report().value_indexes, 0);
    }

    #[test]
    fn value_index_demotion_on_churn() {
        let cfg = StoreConfig {
            promote_min_tuples: 8,
            promote_after_probes: 4,
            ..StoreConfig::default()
        };
        let mut s = IndexedStore::with_config(cfg);
        for i in 0..64 {
            s.insert(tuple!("task", i, 0.5));
        }
        // All heads are equal, so this scan is expensive and promotes a
        // position-1 index.
        s.read(&pat!("task", 63, ?float));
        assert_eq!(s.index_report().value_indexes, 1);
        // Churn the bucket without ever binding position 1: the index
        // pays maintenance on every insert/remove and serves nothing.
        for i in 64..120 {
            s.insert(tuple!("task", i, 0.5));
            assert!(s.take(&pat!("task", ?int, ?float)).is_some());
        }
        let rep = s.index_report();
        assert_eq!(rep.value_indexes, 0, "churn-dominated index dropped");
        assert_eq!(rep.index_demotions, 1);
        // Matching is unaffected (demotion is derived state only).
        assert_eq!(
            s.read(&pat!("task", 100, ?float)),
            Some(tuple!("task", 100, 0.5))
        );
    }

    #[test]
    fn demotion_spares_a_serving_index() {
        let cfg = StoreConfig {
            promote_min_tuples: 8,
            promote_after_probes: 4,
            ..StoreConfig::default()
        };
        let mut s = IndexedStore::with_config(cfg);
        for i in 0..64 {
            s.insert(tuple!("task", i, 0.5));
        }
        s.read(&pat!("task", 63, ?float));
        assert_eq!(s.index_report().value_indexes, 1);
        // Same churn volume, but every cycle also *uses* the index: the
        // serve credits keep maintenance under the demotion ratio.
        for i in 64..120 {
            s.insert(tuple!("task", i, 0.5));
            assert!(s.take(&pat!("task", i, ?float)).is_some());
        }
        let rep = s.index_report();
        assert_eq!(rep.value_indexes, 1, "serving index survives churn");
        assert_eq!(rep.index_demotions, 0);
    }

    #[test]
    fn checkout_signature_moves_whole_bucket() {
        let mut s = IndexedStore::new();
        s.insert(tuple!("a", 1));
        s.insert(tuple!("b"));
        s.insert(tuple!("a", 2));
        s.insert(tuple!("a", 3));
        let sig = tuple!("a", 0).signature().stable_hash();
        let moved = s.checkout_signature(sig);
        assert_eq!(
            moved,
            vec![tuple!("a", 1), tuple!("a", 2), tuple!("a", 3)],
            "oldest first"
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.signature_len(sig), 0);
        assert_eq!(s.take(&pat!("a", ?int)), None);
        // Absent signature checks out as empty.
        assert!(s.checkout_signature(0xdead_beef).is_empty());
        // Re-install preserves relative age; a miss cached while the
        // bucket was away is invalidated by the re-insert.
        for t in moved {
            s.insert(t);
        }
        assert_eq!(s.take(&pat!("a", ?int)), Some(tuple!("a", 1)));
        assert_eq!(s.take(&pat!("a", ?int)), Some(tuple!("a", 2)));
        let census = s.signature_census();
        let a = census
            .iter()
            .find(|c| c.signature.to_string() == "<str,int>")
            .unwrap();
        assert_eq!(a.high_water, 3, "checkout keeps occupancy history");
    }

    #[test]
    fn tracked_ops_do_not_double_count() {
        // One tracked take = one attempt; the Store-trait wrappers add
        // nothing on top.
        let mut s = IndexedStore::new();
        s.insert(tuple!("t", 1));
        s.insert(tuple!("t", 2));
        let before = s.match_stats();
        assert!(s.take(&pat!("t", ?int)).is_some()); // via take_tracked
        let d = s.match_stats().since(&before);
        assert_eq!(d.attempts, 1);
        let before = s.match_stats();
        assert_eq!(s.take_all(&pat!("t", ?int)).len(), 1); // via take_all_tracked
        let d = s.match_stats().since(&before);
        assert_eq!(d.attempts, 1);
    }
}

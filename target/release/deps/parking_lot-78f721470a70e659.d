/root/repo/target/release/deps/parking_lot-78f721470a70e659.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-78f721470a70e659.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-78f721470a70e659.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:

//! Offline shim for the `bytes` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this crate reimplements the (small) subset of `bytes` the workspace uses:
//! [`Bytes`] as a cheaply-cloneable shared byte buffer, and the [`Buf`] /
//! [`BufMut`] read/write cursors over byte slices and `Vec<u8>`.
//!
//! Semantics match the real crate for everything exercised here; the big
//! intentional simplification is that [`Bytes::from_static`] copies instead
//! of borrowing (no `Vtable` machinery), which is invisible to callers.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static slice (copies; the real crate borrows).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Number of bytes contained.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of self for the provided range, sharing the backing
    /// storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of range");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Self::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from(s.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// Read access to a buffer of bytes, consumed front to back.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The current contiguous unread region (always the full remainder here).
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write access to an append-only byte buffer.
pub trait BufMut {
    /// Append `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..).to_vec(), vec![2, 3, 4]);
        assert_eq!(b.clone(), b);
    }

    #[test]
    fn buf_cursor_consumes() {
        let data = [1u8, 0, 2, 0, 0, 0, 3];
        let mut buf = &data[..];
        assert_eq!(buf.get_u8(), 1);
        assert_eq!(buf.get_u16(), 2);
        assert_eq!(buf.get_u32(), 3);
        assert!(!buf.has_remaining());
    }

    #[test]
    fn bufmut_appends() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(7);
        v.put_u64(9);
        v.put_slice(b"ab");
        assert_eq!(v.len(), 11);
        let mut r = &v[..];
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64(), 9);
    }
}

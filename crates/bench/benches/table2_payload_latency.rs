//! E2 / Table 2 — AGS processing latency on a second configuration.
//!
//! The paper's Table 2 repeats Table 1 on i386 hardware; the point of the
//! second table is how the costs *scale* with the platform and the data.
//! Our second axis is payload shape: the same out+in AGS carrying scalar
//! ints, strings of growing size, and raw byte payloads — exercising the
//! codec and matcher the way bigger tuples did on the slower machine.

use criterion::{criterion_group, criterion_main, Criterion};
use ftlinda_ags::{Ags, MatchField as MF, Operand, TsId};
use ftlinda_kernel::Request;
use linda_bench::*;
use linda_tuple::{TypeTag, Value};
use std::time::{Duration, Instant};

fn payload_roundtrip_ags(payload: Value) -> Ags {
    // ⟨ in("p", ?same-type) ⇒ out("p", const payload) ⟩: steady state.
    let tag = payload.type_tag();
    Ags::builder()
        .guard_in(TsId(0), vec![MF::actual("p"), MF::bind(tag)])
        .out(TsId(0), vec![Operand::cst("p"), Operand::Const(payload)])
        .build()
        .unwrap()
}

fn kernel_with(payload: Value) -> impl Fn() -> (ftlinda_kernel::Kernel, u64) {
    move || {
        let payload = payload.clone();
        seeded_kernel(move |k, seq| {
            apply_request(
                k,
                seq,
                &Request::Ags(Ags::out_one(
                    TsId(0),
                    vec![Operand::cst("p"), Operand::Const(payload)],
                )),
            );
        })
    }
}

fn cases() -> Vec<(String, Value)> {
    let mut v: Vec<(String, Value)> = vec![
        ("int".into(), Value::Int(42)),
        ("float".into(), Value::Float(1.5)),
    ];
    for len in [16usize, 256, 1024, 4096] {
        v.push((format!("str_{len}B"), Value::Str("x".repeat(len))));
        v.push((format!("bytes_{len}B"), Value::Bytes(vec![7u8; len])));
    }
    v
}

fn print_table() {
    // Measured from the kernel's own `ftlinda_ags_execute_seconds`
    // histogram (the same instrument `/metrics` exports), not an ad-hoc
    // wall-clock loop: mean is exact (running sum), p95 is the
    // Prometheus-style bucket estimate.
    println!("\nTable 2 reproduction — in+out AGS latency by payload shape:");
    for (label, payload) in cases() {
        let mk = kernel_with(payload.clone());
        let enc = encoded(&payload_roundtrip_ags(payload));
        let snap = instrumented_apply(&|| mk(), &enc, 10_000);
        print_row(
            &label,
            format!(
                "{:9.0} ns/AGS mean   p95 ≤ {:7.1} µs",
                snap.mean().unwrap_or(0.0) * 1e9,
                snap.p95().unwrap_or(0.0) * 1e6
            ),
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("table2_payload");
    g.sample_size(15).measurement_time(Duration::from_secs(1));
    for (label, payload) in cases() {
        let mk = kernel_with(payload.clone());
        let enc = encoded(&payload_roundtrip_ags(payload));
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let (mut k, mut seq) = mk();
                let t0 = Instant::now();
                for _ in 0..iters {
                    apply_encoded(&mut k, &mut seq, &enc);
                }
                t0.elapsed()
            })
        });
    }
    g.finish();

    // The typing axis: `?str` formal vs exact actual match on a 1 KiB
    // string (actual match must compare the whole payload).
    let mut g = c.benchmark_group("table2_match_kind");
    g.sample_size(15).measurement_time(Duration::from_secs(1));
    let big = Value::Str("x".repeat(1024));
    for (label, pat_field) in [
        ("formal_?str", MF::bind(TypeTag::Str)),
        ("actual_1KiB", MF::Expr(Operand::Const(big.clone()))),
    ] {
        let ags = Ags::builder()
            .guard_in(TsId(0), vec![MF::actual("p"), pat_field])
            .out(
                TsId(0),
                vec![Operand::cst("p"), Operand::Const(big.clone())],
            )
            .build()
            .unwrap();
        let mk = kernel_with(big.clone());
        let enc = encoded(&ags);
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let (mut k, mut seq) = mk();
                let t0 = Instant::now();
                for _ in 0..iters {
                    apply_encoded(&mut k, &mut seq, &enc);
                }
                t0.elapsed()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Property-based tests of the replicated state machine's core
//! guarantee: *any* totally-ordered request stream drives every kernel to
//! the identical state — stores, blocked queues, everything that feeds
//! back into execution.

use bytes::Bytes;
use consul_sim::{Delivery, HostId};
use ftlinda_ags::{Ags, MatchField as MF, Operand, TsId};
use ftlinda_kernel::{encode_request, Kernel, Request};
use linda_tuple::TypeTag;
use proptest::prelude::*;

/// A small universe of AGS shapes over one space: enough to cover outs,
/// blocking ins, disjunction, body failures, expressions, and move/copy.
#[derive(Debug, Clone)]
enum Shape {
    Out { head: usize, v: i64 },
    In { head: usize, formal: bool },
    Inp { head: usize },
    CounterIncr,
    BodyFail { head: usize },
    MoveAll { head: usize },
    Disjunction { a: usize, b: usize },
}

const HEADS: [&str; 3] = ["x", "y", "z"];

fn to_ags(s: &Shape) -> Ags {
    let ts = TsId(0);
    let ts2 = TsId(1);
    match s {
        Shape::Out { head, v } => {
            Ags::out_one(ts, vec![Operand::cst(HEADS[*head]), Operand::cst(*v)])
        }
        Shape::In { head, formal } => {
            let f = if *formal {
                MF::bind(TypeTag::Int)
            } else {
                MF::actual(1i64)
            };
            Ags::in_one(ts, vec![MF::actual(HEADS[*head]), f]).unwrap()
        }
        Shape::Inp { head } => {
            Ags::inp_one(ts, vec![MF::actual(HEADS[*head]), MF::bind(TypeTag::Int)]).unwrap()
        }
        Shape::CounterIncr => Ags::builder()
            .guard_in(ts, vec![MF::actual("ctr"), MF::bind(TypeTag::Int)])
            .out(ts, vec![Operand::cst("ctr"), Operand::formal(0).add(1)])
            .build()
            .unwrap(),
        Shape::BodyFail { head } => Ags::builder()
            .guard_true()
            .out(ts, vec![Operand::cst("tmp"), Operand::cst(9)])
            .in_(ts, vec![MF::actual(HEADS[*head]), MF::actual(12345i64)])
            .build()
            .unwrap(),
        Shape::MoveAll { head } => Ags::builder()
            .guard_true()
            .move_(
                ts,
                ts2,
                vec![MF::actual(HEADS[*head]), MF::bind(TypeTag::Int)],
            )
            .build()
            .unwrap(),
        Shape::Disjunction { a, b } => Ags::builder()
            .guard_in(ts, vec![MF::actual(HEADS[*a]), MF::bind(TypeTag::Int)])
            .out(ts, vec![Operand::cst("got"), Operand::formal(0)])
            .or()
            .guard_in(ts, vec![MF::actual(HEADS[*b]), MF::bind(TypeTag::Int)])
            .out(ts, vec![Operand::cst("got"), Operand::formal(0).mul(2)])
            .build()
            .unwrap(),
    }
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (0usize..3, -3i64..4).prop_map(|(head, v)| Shape::Out { head, v }),
        (0usize..3, any::<bool>()).prop_map(|(head, formal)| Shape::In { head, formal }),
        (0usize..3).prop_map(|head| Shape::Inp { head }),
        Just(Shape::CounterIncr),
        (0usize..3).prop_map(|head| Shape::BodyFail { head }),
        (0usize..3).prop_map(|head| Shape::MoveAll { head }),
        (0usize..3, 0usize..3).prop_map(|(a, b)| Shape::Disjunction { a, b }),
    ]
}

/// Interleave app requests with failure/join view changes.
#[derive(Debug, Clone)]
enum Event {
    Req(Shape, u32),
    Fail(u32),
    Join(u32),
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        6 => (arb_shape(), 0u32..4).prop_map(|(s, o)| Event::Req(s, o)),
        1 => (0u32..4).prop_map(Event::Fail),
        1 => (0u32..4).prop_map(Event::Join),
    ]
}

fn build_stream(events: &[Event]) -> Vec<Delivery> {
    let mut out = Vec::with_capacity(events.len() + 3);
    let mut seq = 0u64;
    let push_app = |seq: &mut u64, origin: u32, req: &Request, out: &mut Vec<Delivery>| {
        *seq += 1;
        out.push(Delivery::App {
            seq: *seq,
            origin: HostId(origin),
            local: *seq,
            payload: Bytes::from(encode_request(req)),
        });
    };
    push_app(
        &mut seq,
        0,
        &Request::CreateTs {
            name: "main".into(),
        },
        &mut out,
    );
    push_app(
        &mut seq,
        0,
        &Request::CreateTs { name: "aux".into() },
        &mut out,
    );
    push_app(
        &mut seq,
        0,
        &Request::Ags(Ags::out_one(
            TsId(0),
            vec![Operand::cst("ctr"), Operand::cst(0)],
        )),
        &mut out,
    );
    for ev in events {
        match ev {
            Event::Req(shape, origin) => {
                push_app(&mut seq, *origin, &Request::Ags(to_ags(shape)), &mut out)
            }
            Event::Fail(h) => {
                seq += 1;
                out.push(Delivery::Fail {
                    seq,
                    host: HostId(*h),
                });
            }
            Event::Join(h) => {
                seq += 1;
                out.push(Delivery::Join {
                    seq,
                    host: HostId(*h),
                });
            }
        }
    }
    out
}

fn run_kernel(host: u32, stream: &[Delivery]) -> Kernel {
    let (tx, rx) = crossbeam::channel::unbounded();
    std::mem::forget(rx);
    let mut k = Kernel::new(HostId(host), tx);
    for d in stream {
        k.apply(d);
    }
    k
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Replica convergence: four kernels with different host identities
    /// applying the same stream end in identical state.
    #[test]
    fn replicas_converge(events in proptest::collection::vec(arb_event(), 0..60)) {
        let stream = build_stream(&events);
        let kernels: Vec<Kernel> = (0..4).map(|h| run_kernel(h, &stream)).collect();
        let d0 = kernels[0].digest();
        for k in &kernels[1..] {
            prop_assert_eq!(k.digest(), d0);
            prop_assert_eq!(k.blocked_len(), kernels[0].blocked_len());
            prop_assert_eq!(k.snapshot(TsId(0)), kernels[0].snapshot(TsId(0)));
            prop_assert_eq!(k.snapshot(TsId(1)), kernels[0].snapshot(TsId(1)));
        }
    }

    /// Determinism under replay: applying the stream twice from scratch
    /// (what a restarted replica does) reproduces the state exactly.
    #[test]
    fn replay_is_deterministic(events in proptest::collection::vec(arb_event(), 0..60)) {
        let stream = build_stream(&events);
        let a = run_kernel(0, &stream);
        let b = run_kernel(0, &stream);
        prop_assert_eq!(a.digest(), b.digest());
    }

    /// Prefix monotonicity: a kernel fed a prefix then the suffix equals
    /// a kernel fed the whole stream (incremental apply ≡ batch apply).
    #[test]
    fn prefix_then_suffix_equals_whole(
        events in proptest::collection::vec(arb_event(), 0..60),
        cut_frac in 0.0f64..1.0,
    ) {
        let stream = build_stream(&events);
        let cut = ((stream.len() as f64) * cut_frac) as usize;
        let whole = run_kernel(0, &stream);
        let (tx, rx) = crossbeam::channel::unbounded();
        std::mem::forget(rx);
        let mut split = Kernel::new(HostId(0), tx);
        for d in &stream[..cut] {
            split.apply(d);
        }
        for d in &stream[cut..] {
            split.apply(d);
        }
        prop_assert_eq!(whole.digest(), split.digest());
    }

    /// The counter invariant: however the stream interleaves, the "ctr"
    /// tuple either exists exactly once or is currently withdrawn by a
    /// blocked/failed AGS — it is never duplicated.
    #[test]
    fn counter_never_duplicated(events in proptest::collection::vec(arb_event(), 0..80)) {
        let stream = build_stream(&events);
        let k = run_kernel(0, &stream);
        let snap = k.snapshot(TsId(0)).unwrap();
        let ctrs = snap
            .iter()
            .filter(|t| t.get(0).and_then(|v| v.as_str()) == Some("ctr"))
            .count();
        prop_assert!(ctrs <= 1, "counter duplicated: {ctrs}");
        prop_assert_eq!(ctrs, 1, "counter must survive (increments are atomic)");
    }
}

// ---------------------------------------------------------------------------
// Live-cluster convergence under random crash/restart schedules.
// ---------------------------------------------------------------------------

/// One step of a randomized fault schedule against a live 3-host cluster.
#[derive(Debug, Clone)]
enum FaultStep {
    /// Deposit `n` tuples from a live host (picked by index preference).
    Traffic { from: usize, n: u8 },
    /// Crash the preferred host if that still leaves a majority.
    Crash { host: usize },
    /// Restart the preferred host if it is down.
    Restart { host: usize },
}

fn arb_fault_step() -> impl Strategy<Value = FaultStep> {
    prop_oneof![
        3 => (0usize..3, 1u8..4).prop_map(|(from, n)| FaultStep::Traffic { from, n }),
        1 => (0usize..3).prop_map(|host| FaultStep::Crash { host }),
        1 => (0usize..3).prop_map(|host| FaultStep::Restart { host }),
    ]
}

proptest! {
    // Each case spins up a real cluster (threads, detector, network), so
    // keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Whole-stack convergence: under any random crash/restart schedule,
    /// live replicas end with identical digests at the same applied seq,
    /// and the background digest-divergence detector stays quiet.
    #[test]
    fn live_cluster_converges_and_detector_stays_quiet(
        steps in proptest::collection::vec(arb_fault_step(), 1..8),
    ) {
        use ftlinda::Cluster;

        let (cluster, rts) = Cluster::builder()
            .hosts(3)
            .divergence_period(std::time::Duration::from_millis(3))
            .build();
        let ts = rts[0].create_stable_ts("main").unwrap();
        let mut live: Vec<Option<ftlinda::Runtime>> =
            rts.iter().cloned().map(Some).collect();
        let mut counter = 0i64;

        for step in &steps {
            match step {
                FaultStep::Traffic { from, n } => {
                    // Prefer the indexed host; fall back to any live one.
                    let rt = live[*from]
                        .as_ref()
                        .or_else(|| live.iter().flatten().next())
                        .unwrap();
                    for _ in 0..*n {
                        rt.out(ts, linda_tuple::tuple!("t", counter)).unwrap();
                        counter += 1;
                    }
                }
                FaultStep::Crash { host } => {
                    let up = live.iter().flatten().count();
                    if up > 2 && live[*host].is_some() {
                        cluster.crash(HostId(*host as u32));
                        live[*host] = None;
                    }
                }
                FaultStep::Restart { host } => {
                    if live[*host].is_none() {
                        live[*host] = Some(cluster.restart(HostId(*host as u32)));
                    }
                }
            }
        }

        // Every live replica must converge to the same (seq, digest).
        let survivors: Vec<&ftlinda::Runtime> = live.iter().flatten().collect();
        prop_assert!(survivors.len() >= 2);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let states: Vec<(u64, u64)> =
                survivors.iter().map(|rt| rt.applied_digest()).collect();
            if states.windows(2).all(|w| w[0] == w[1]) {
                break;
            }
            prop_assert!(
                std::time::Instant::now() < deadline,
                "replicas never converged: {states:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }

        // Give the detector a few periods over the converged state, then
        // require total silence: no counter ticks, no events.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let div = cluster
            .obs()
            .counter("ftlinda_digest_divergence_total", "");
        prop_assert_eq!(div.get(), 0, "false-positive divergence");
        prop_assert!(cluster.obs().events().recent_of("digest_divergence").is_empty());
        cluster.shutdown();
    }
}

/root/repo/target/debug/deps/compile_tests-a71223295a19bc57.d: crates/lcc/tests/compile_tests.rs

/root/repo/target/debug/deps/compile_tests-a71223295a19bc57: crates/lcc/tests/compile_tests.rs

crates/lcc/tests/compile_tests.rs:

/root/repo/target/debug/examples/linda_run-c8a38cb16187c766.d: examples/linda_run.rs Cargo.toml

/root/repo/target/debug/examples/liblinda_run-c8a38cb16187c766.rmeta: examples/linda_run.rs Cargo.toml

examples/linda_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/ft_lcc-b131ba78ed537958.d: crates/lcc/src/lib.rs crates/lcc/src/lexer.rs crates/lcc/src/parser.rs crates/lcc/src/pretty.rs

/root/repo/target/release/deps/libft_lcc-b131ba78ed537958.rlib: crates/lcc/src/lib.rs crates/lcc/src/lexer.rs crates/lcc/src/parser.rs crates/lcc/src/pretty.rs

/root/repo/target/release/deps/libft_lcc-b131ba78ed537958.rmeta: crates/lcc/src/lib.rs crates/lcc/src/lexer.rs crates/lcc/src/parser.rs crates/lcc/src/pretty.rs

crates/lcc/src/lib.rs:
crates/lcc/src/lexer.rs:
crates/lcc/src/parser.rs:
crates/lcc/src/pretty.rs:

//! The AGS execution engine: atomic, deterministic, with exact rollback.
//!
//! An AGS executes as one step of the replicated state machine. Guard
//! satisfiability is probed first (branches in order, first satisfiable
//! fires — so `⟨ in(p) ⇒ … or true ⇒ … ⟩` gives the paper's *strong*
//! `inp` semantics); the chosen branch's guard and body then run against
//! the stores under an undo log. Any failure during the body — a body
//! `in`/`rd` with no match, an expression error — rolls the stores back
//! to the exact pre-AGS state (including tuple ages) and reports a
//! deterministic error. Because every replica evaluates the same branch
//! against identical state, all replicas commit or abort identically.
//!
//! Writes to *scratch* spaces (volatile, owner-local) are buffered and
//! returned to the caller on commit: only the submitting host
//! materializes them, and only after the AGS is known to succeed.

use ftlinda_ags::{
    resolve_pattern, resolve_template, Ags, AgsOutcome, BodyOp, EvalCtx, EvalError, Guard,
    MatchField, ScratchId, SpaceRef, TsId,
};
use linda_space::IndexedStore;
use linda_tuple::{Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Deterministic execution failure; identical at every replica.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A body `in`/`rd` found no matching tuple at execution time.
    BodyUnmatched {
        /// Index of the failing op within the branch body.
        op_index: usize,
    },
    /// Operand evaluation failed.
    Eval(EvalError),
    /// The referenced stable space does not exist (yet).
    UnknownTs(TsId),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BodyUnmatched { op_index } => {
                write!(f, "body op #{op_index} (in/rd) had no matching tuple")
            }
            ExecError::Eval(e) => write!(f, "expression error: {e}"),
            ExecError::UnknownTs(id) => write!(f, "unknown stable tuple space {id}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EvalError> for ExecError {
    fn from(e: EvalError) -> Self {
        ExecError::Eval(e)
    }
}

/// Why an AGS did not execute right now.
#[derive(Debug, Clone, PartialEq)]
pub enum TryOutcome {
    /// A branch fired; outcome + scratch writes for the owner.
    Fired {
        /// Which branch and what it bound.
        outcome: AgsOutcome,
        /// Deferred writes to the owner's scratch spaces.
        scratch_outs: Vec<(ScratchId, Tuple)>,
        /// `(space, signature-hash)` of every tuple this AGS committed
        /// into a stable space. The kernel uses these to retry only the
        /// blocked AGSs whose guard could match a new deposit.
        deposited: Vec<(TsId, u64)>,
    },
    /// No branch's guard was satisfiable; the AGS must block.
    Blocked,
    /// A branch fired but its body failed; state was rolled back.
    Failed(ExecError),
}

/// One entry of the undo log.
enum Undo {
    /// Remove the tuple inserted under (ts, seq, sig_hash).
    RemoveInserted { ts: TsId, seq: u64, sig: u64 },
    /// Restore a withdrawn tuple at its original position.
    RestoreTaken { ts: TsId, seq: u64, tuple: Tuple },
}

/// Execute `ags` against `stables` on behalf of `(self_host, request_seq)`.
///
/// Branch guards are probed in order; the first satisfiable branch
/// executes atomically. Returns [`TryOutcome::Blocked`] when no branch can
/// fire (the caller queues the AGS).
pub fn try_execute(
    stables: &mut BTreeMap<TsId, IndexedStore>,
    ags: &Ags,
    self_host: u32,
    request_seq: u64,
) -> TryOutcome {
    for (bi, branch) in ags.branches.iter().enumerate() {
        match probe_guard(stables, &branch.guard, self_host, request_seq) {
            Ok(None) => continue, // guard not satisfiable now
            Ok(Some(_)) => {
                return execute_branch(stables, ags, bi, self_host, request_seq);
            }
            Err(e) => {
                // Guard references an unknown space or has a broken
                // expression: deterministic failure, no state touched.
                return TryOutcome::Failed(e);
            }
        }
    }
    TryOutcome::Blocked
}

/// Check whether a guard could fire *right now* without mutating state.
/// `Ok(Some(()))` = satisfiable, `Ok(None)` = must wait.
pub fn probe_guard(
    stables: &BTreeMap<TsId, IndexedStore>,
    guard: &Guard,
    self_host: u32,
    request_seq: u64,
) -> Result<Option<()>, ExecError> {
    match guard {
        Guard::True => Ok(Some(())),
        Guard::In { ts, pattern } | Guard::Rd { ts, pattern } => {
            let id = stable_id(*ts);
            let store = stables.get(&id).ok_or(ExecError::UnknownTs(id))?;
            let ctx = EvalCtx {
                bindings: &[],
                self_host,
                request_seq,
            };
            let pat = resolve_pattern(pattern, &ctx)?;
            Ok(linda_space::Store::contains(store, &pat).then_some(()))
        }
    }
}

fn stable_id(s: SpaceRef) -> TsId {
    match s {
        SpaceRef::Stable(id) => id,
        // Validated away at build/decode time.
        SpaceRef::Scratch(_) => unreachable!("scratch ref in stable-only position"),
    }
}

fn execute_branch(
    stables: &mut BTreeMap<TsId, IndexedStore>,
    ags: &Ags,
    branch_index: usize,
    self_host: u32,
    request_seq: u64,
) -> TryOutcome {
    let branch = &ags.branches[branch_index];
    let mut bindings: Vec<Value> = Vec::with_capacity(branch.formal_types.len());
    let mut undo: Vec<Undo> = Vec::new();
    let mut scratch_outs: Vec<(ScratchId, Tuple)> = Vec::new();

    let result = (|| -> Result<(), ExecError> {
        // Guard execution (bindings + withdrawal for In).
        match &branch.guard {
            Guard::True => {}
            Guard::In { ts, pattern } | Guard::Rd { ts, pattern } => {
                let is_in = matches!(branch.guard, Guard::In { .. });
                let id = stable_id(*ts);
                let ctx = EvalCtx {
                    bindings: &[],
                    self_host,
                    request_seq,
                };
                let pat = resolve_pattern(pattern, &ctx)?;
                let store = stables.get_mut(&id).ok_or(ExecError::UnknownTs(id))?;
                if is_in {
                    let (seq, tuple) = store
                        .take_tracked(&pat)
                        .expect("guard probed satisfiable under the same lock");
                    bindings.extend(pat.bind(&tuple).expect("matched"));
                    undo.push(Undo::RestoreTaken { ts: id, seq, tuple });
                } else {
                    let tuple =
                        linda_space::Store::read(store, &pat).expect("guard probed satisfiable");
                    bindings.extend(pat.bind(&tuple).expect("matched"));
                }
            }
        }

        // Body execution.
        for (oi, op) in branch.body.iter().enumerate() {
            let ctx = EvalCtx {
                bindings: &bindings,
                self_host,
                request_seq,
            };
            match op {
                BodyOp::Out { ts, template } => {
                    let fields = resolve_template(template, &ctx)?;
                    let tuple = Tuple::new(fields);
                    match ts {
                        SpaceRef::Stable(id) => {
                            let store = stables.get_mut(id).ok_or(ExecError::UnknownTs(*id))?;
                            let sig = tuple.signature().stable_hash();
                            let seq = store.insert_tracked(tuple);
                            undo.push(Undo::RemoveInserted { ts: *id, seq, sig });
                        }
                        SpaceRef::Scratch(sid) => scratch_outs.push((*sid, tuple)),
                    }
                }
                BodyOp::In { ts, pattern } => {
                    let id = stable_id(*ts);
                    let pat = resolve_pattern(pattern, &ctx)?;
                    let store = stables.get_mut(&id).ok_or(ExecError::UnknownTs(id))?;
                    match store.take_tracked(&pat) {
                        Some((seq, tuple)) => {
                            bindings.extend(pat.bind(&tuple).expect("matched"));
                            undo.push(Undo::RestoreTaken { ts: id, seq, tuple });
                        }
                        None => return Err(ExecError::BodyUnmatched { op_index: oi }),
                    }
                }
                BodyOp::Rd { ts, pattern } => {
                    let id = stable_id(*ts);
                    let pat = resolve_pattern(pattern, &ctx)?;
                    let store = stables.get(&id).ok_or(ExecError::UnknownTs(id))?;
                    match linda_space::Store::read(store, &pat) {
                        Some(tuple) => bindings.extend(pat.bind(&tuple).expect("matched")),
                        None => return Err(ExecError::BodyUnmatched { op_index: oi }),
                    }
                }
                BodyOp::Move { from, to, pattern } => {
                    let from_id = stable_id(*from);
                    let pat = wildcard_pattern(pattern, &ctx)?;
                    let store = stables
                        .get_mut(&from_id)
                        .ok_or(ExecError::UnknownTs(from_id))?;
                    let taken = store.take_all_tracked(&pat);
                    for (seq, tuple) in &taken {
                        undo.push(Undo::RestoreTaken {
                            ts: from_id,
                            seq: *seq,
                            tuple: tuple.clone(),
                        });
                    }
                    deposit_all(
                        stables,
                        *to,
                        taken.into_iter().map(|(_, t)| t),
                        &mut undo,
                        &mut scratch_outs,
                    )?;
                }
                BodyOp::Copy { from, to, pattern } => {
                    let from_id = stable_id(*from);
                    let pat = wildcard_pattern(pattern, &ctx)?;
                    let store = stables.get(&from_id).ok_or(ExecError::UnknownTs(from_id))?;
                    let copies = linda_space::Store::read_all(store, &pat);
                    deposit_all(
                        stables,
                        *to,
                        copies.into_iter(),
                        &mut undo,
                        &mut scratch_outs,
                    )?;
                }
            }
        }
        Ok(())
    })();

    match result {
        Ok(()) => {
            // Every stable-space insert left a RemoveInserted entry with
            // the tuple's signature hash; on commit that is exactly the
            // set of deposits that could wake a blocked guard.
            let deposited = undo
                .iter()
                .filter_map(|u| match u {
                    Undo::RemoveInserted { ts, sig, .. } => Some((*ts, *sig)),
                    Undo::RestoreTaken { .. } => None,
                })
                .collect();
            TryOutcome::Fired {
                outcome: AgsOutcome {
                    branch: branch_index,
                    bindings,
                },
                scratch_outs,
                deposited,
            }
        }
        Err(e) => {
            rollback(stables, undo);
            TryOutcome::Failed(e)
        }
    }
}

/// The `(space, signature-hash)` keys under which a *blocked* AGS waits:
/// one per `in`/`rd` guard branch. An `IndexedStore` only matches a
/// pattern against tuples of the identical signature, so a deposit can
/// satisfy a blocked guard only if its `(space, signature)` key is equal
/// — which makes this index exact, not heuristic. Guards of a blocked
/// AGS always resolve (probing them succeeded), and resolution uses no
/// bindings and only deterministic inputs, so every replica computes the
/// same keys.
pub fn guard_keys(ags: &Ags, self_host: u32, request_seq: u64) -> Vec<(TsId, u64)> {
    let ctx = EvalCtx {
        bindings: &[],
        self_host,
        request_seq,
    };
    let mut keys = Vec::new();
    for branch in &ags.branches {
        if let Guard::In { ts, pattern } | Guard::Rd { ts, pattern } = &branch.guard {
            if let SpaceRef::Stable(id) = *ts {
                if let Ok(pat) = resolve_pattern(pattern, &ctx) {
                    keys.push((id, pat.signature().stable_hash()));
                }
            }
        }
    }
    keys
}

/// A human/metric-label rendering of the same guards `guard_keys` indexes:
/// `"ts0:<str,int>"`, multiple branches joined by `|`, `"true"` for an
/// AGS with only a `true` guard. Deterministic for the same reasons as
/// `guard_keys`, so it is safe to use as a metric label across replicas.
pub fn guard_labels(ags: &Ags, self_host: u32, request_seq: u64) -> String {
    let ctx = EvalCtx {
        bindings: &[],
        self_host,
        request_seq,
    };
    let mut out = String::new();
    for branch in &ags.branches {
        if let Guard::In { ts, pattern } | Guard::Rd { ts, pattern } = &branch.guard {
            if let SpaceRef::Stable(id) = *ts {
                if let Ok(pat) = resolve_pattern(pattern, &ctx) {
                    if !out.is_empty() {
                        out.push('|');
                    }
                    out.push_str("ts");
                    out.push_str(&id.0.to_string());
                    out.push(':');
                    out.push_str(&pat.signature().to_string());
                }
            }
        }
    }
    if out.is_empty() {
        out.push_str("true");
    }
    out
}

/// `move`/`copy` patterns treat `Bind` fields as wildcards (they bind
/// nothing); expression fields still evaluate against current bindings.
fn wildcard_pattern(
    fields: &[MatchField],
    ctx: &EvalCtx<'_>,
) -> Result<linda_tuple::Pattern, ExecError> {
    Ok(resolve_pattern(fields, ctx)?)
}

fn deposit_all(
    stables: &mut BTreeMap<TsId, IndexedStore>,
    to: SpaceRef,
    tuples: impl Iterator<Item = Tuple>,
    undo: &mut Vec<Undo>,
    scratch_outs: &mut Vec<(ScratchId, Tuple)>,
) -> Result<(), ExecError> {
    match to {
        SpaceRef::Stable(id) => {
            // Existence check before inserting anything.
            if !stables.contains_key(&id) {
                return Err(ExecError::UnknownTs(id));
            }
            for t in tuples {
                let sig = t.signature().stable_hash();
                let store = stables.get_mut(&id).expect("checked");
                let seq = store.insert_tracked(t);
                undo.push(Undo::RemoveInserted { ts: id, seq, sig });
            }
        }
        SpaceRef::Scratch(sid) => {
            for t in tuples {
                scratch_outs.push((sid, t));
            }
        }
    }
    Ok(())
}

fn rollback(stables: &mut BTreeMap<TsId, IndexedStore>, undo: Vec<Undo>) {
    for entry in undo.into_iter().rev() {
        match entry {
            Undo::RemoveInserted { ts, seq, sig } => {
                if let Some(store) = stables.get_mut(&ts) {
                    store.remove_at(seq, sig);
                }
            }
            Undo::RestoreTaken { ts, seq, tuple } => {
                if let Some(store) = stables.get_mut(&ts) {
                    store.restore_at(seq, tuple);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftlinda_ags::{MatchField as MF, Operand};
    use linda_space::Store;
    use linda_tuple::TypeTag::*;
    use linda_tuple::{pat, tuple};

    fn one_space() -> BTreeMap<TsId, IndexedStore> {
        let mut m = BTreeMap::new();
        m.insert(TsId(0), IndexedStore::new());
        m
    }

    fn two_spaces() -> BTreeMap<TsId, IndexedStore> {
        let mut m = one_space();
        m.insert(TsId(1), IndexedStore::new());
        m
    }

    #[test]
    fn true_guard_out_executes() {
        let mut s = one_space();
        let ags = Ags::out_one(TsId(0), vec![Operand::cst("x"), Operand::cst(1)]);
        match try_execute(&mut s, &ags, 0, 1) {
            TryOutcome::Fired { outcome, .. } => {
                assert_eq!(outcome.branch, 0);
                assert!(outcome.bindings.is_empty());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s[&TsId(0)].read(&pat!("x", 1)), Some(tuple!("x", 1)));
    }

    #[test]
    fn counter_increment() {
        let mut s = one_space();
        s.get_mut(&TsId(0)).unwrap().insert(tuple!("count", 41));
        let ags = Ags::builder()
            .guard_in(TsId(0), vec![MF::actual("count"), MF::bind(Int)])
            .out(
                TsId(0),
                vec![Operand::cst("count"), Operand::formal(0).add(1)],
            )
            .build()
            .unwrap();
        match try_execute(&mut s, &ags, 0, 1) {
            TryOutcome::Fired { outcome, .. } => {
                assert_eq!(outcome.bindings, vec![Value::Int(41)]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            s[&TsId(0)].read(&pat!("count", ?int)),
            Some(tuple!("count", 42))
        );
        assert_eq!(s[&TsId(0)].len(), 1);
    }

    #[test]
    fn unsatisfiable_guard_blocks() {
        let mut s = one_space();
        let ags = Ags::in_one(TsId(0), vec![MF::actual("missing")]).unwrap();
        assert_eq!(try_execute(&mut s, &ags, 0, 1), TryOutcome::Blocked);
    }

    #[test]
    fn disjunction_prefers_first_satisfiable() {
        let mut s = one_space();
        s.get_mut(&TsId(0)).unwrap().insert(tuple!("b"));
        let ags = Ags::builder()
            .guard_in(TsId(0), vec![MF::actual("a")])
            .out(TsId(0), vec![Operand::cst("got-a")])
            .or()
            .guard_in(TsId(0), vec![MF::actual("b")])
            .out(TsId(0), vec![Operand::cst("got-b")])
            .build()
            .unwrap();
        match try_execute(&mut s, &ags, 0, 1) {
            TryOutcome::Fired { outcome, .. } => assert_eq!(outcome.branch, 1),
            other => panic!("{other:?}"),
        }
        assert!(s[&TsId(0)].contains(&pat!("got-b")));
    }

    #[test]
    fn strong_inp_semantics_via_true_branch() {
        let mut s = one_space();
        let ags = Ags::inp_one(TsId(0), vec![MF::actual("absent"), MF::bind(Int)]).unwrap();
        match try_execute(&mut s, &ags, 0, 1) {
            TryOutcome::Fired { outcome, .. } => {
                assert_eq!(outcome.branch, 1, "true branch = definitive absence");
                assert!(outcome.bindings.is_empty());
            }
            other => panic!("{other:?}"),
        }
        s.get_mut(&TsId(0)).unwrap().insert(tuple!("absent", 7));
        match try_execute(&mut s, &ags, 0, 2) {
            TryOutcome::Fired { outcome, .. } => {
                assert_eq!(outcome.branch, 0);
                assert_eq!(outcome.bindings, vec![Value::Int(7)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn body_in_failure_rolls_back_exactly() {
        let mut s = one_space();
        let store = s.get_mut(&TsId(0)).unwrap();
        store.insert(tuple!("t", 1));
        store.insert(tuple!("t", 2));
        let before = store.snapshot();
        // Guard takes ("t",1); body outs a marker; body in on a missing
        // tuple fails → everything must roll back, ages intact.
        let ags = Ags::builder()
            .guard_in(TsId(0), vec![MF::actual("t"), MF::bind(Int)])
            .out(TsId(0), vec![Operand::cst("marker")])
            .in_(TsId(0), vec![MF::actual("missing")])
            .build()
            .unwrap();
        match try_execute(&mut s, &ags, 0, 1) {
            TryOutcome::Failed(ExecError::BodyUnmatched { op_index }) => {
                assert_eq!(op_index, 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s[&TsId(0)].snapshot(), before, "exact rollback");
        // Age order preserved: oldest still comes out first.
        assert_eq!(
            s.get_mut(&TsId(0)).unwrap().take(&pat!("t", ?int)),
            Some(tuple!("t", 1))
        );
    }

    #[test]
    fn eval_error_rolls_back() {
        let mut s = one_space();
        s.get_mut(&TsId(0)).unwrap().insert(tuple!("n", 0));
        let ags = Ags::builder()
            .guard_in(TsId(0), vec![MF::actual("n"), MF::bind(Int)])
            .out(TsId(0), vec![Operand::cst(1).div(Operand::formal(0))])
            .build()
            .unwrap();
        match try_execute(&mut s, &ags, 0, 1) {
            TryOutcome::Failed(ExecError::Eval(EvalError::DivideByZero)) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(s[&TsId(0)].read(&pat!("n", ?int)), Some(tuple!("n", 0)));
    }

    #[test]
    fn body_in_can_consume_body_out() {
        let mut s = one_space();
        let ags = Ags::builder()
            .guard_true()
            .out(TsId(0), vec![Operand::cst("tmp"), Operand::cst(5)])
            .in_(TsId(0), vec![MF::actual("tmp"), MF::bind(Int)])
            .out(
                TsId(0),
                vec![Operand::cst("final"), Operand::formal(0).mul(2)],
            )
            .build()
            .unwrap();
        match try_execute(&mut s, &ags, 0, 1) {
            TryOutcome::Fired { outcome, .. } => {
                assert_eq!(outcome.bindings, vec![Value::Int(5)]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s[&TsId(0)].len(), 1);
        assert!(s[&TsId(0)].contains(&pat!("final", 10)));
    }

    #[test]
    fn move_transfers_all_matches() {
        let mut s = two_spaces();
        for i in 0..3 {
            s.get_mut(&TsId(0)).unwrap().insert(tuple!("job", i));
        }
        s.get_mut(&TsId(0)).unwrap().insert(tuple!("keep"));
        let ags = Ags::builder()
            .guard_true()
            .move_(TsId(0), TsId(1), vec![MF::actual("job"), MF::bind(Int)])
            .build()
            .unwrap();
        assert!(matches!(
            try_execute(&mut s, &ags, 0, 1),
            TryOutcome::Fired { .. }
        ));
        assert_eq!(s[&TsId(0)].len(), 1);
        assert_eq!(s[&TsId(1)].len(), 3);
        assert_eq!(
            s.get_mut(&TsId(1)).unwrap().take(&pat!("job", ?int)),
            Some(tuple!("job", 0)),
            "move preserves age order"
        );
    }

    #[test]
    fn copy_leaves_source() {
        let mut s = two_spaces();
        s.get_mut(&TsId(0)).unwrap().insert(tuple!("r", 1));
        let ags = Ags::builder()
            .guard_true()
            .copy(TsId(0), TsId(1), vec![MF::actual("r"), MF::bind(Int)])
            .build()
            .unwrap();
        assert!(matches!(
            try_execute(&mut s, &ags, 0, 1),
            TryOutcome::Fired { .. }
        ));
        assert_eq!(s[&TsId(0)].len(), 1);
        assert_eq!(s[&TsId(1)].len(), 1);
    }

    #[test]
    fn scratch_outs_are_deferred_not_applied() {
        let mut s = one_space();
        let ags = Ags::builder()
            .guard_true()
            .out(ScratchId(7), vec![Operand::cst("local"), Operand::SelfHost])
            .build()
            .unwrap();
        match try_execute(&mut s, &ags, 3, 1) {
            TryOutcome::Fired { scratch_outs, .. } => {
                assert_eq!(scratch_outs, vec![(ScratchId(7), tuple!("local", 3))]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s[&TsId(0)].len(), 0);
    }

    #[test]
    fn move_to_scratch_defers_deposit_but_removes_source() {
        let mut s = one_space();
        s.get_mut(&TsId(0)).unwrap().insert(tuple!("w", 1));
        let ags = Ags::builder()
            .guard_true()
            .move_(TsId(0), ScratchId(0), vec![MF::actual("w"), MF::bind(Int)])
            .build()
            .unwrap();
        match try_execute(&mut s, &ags, 0, 1) {
            TryOutcome::Fired { scratch_outs, .. } => {
                assert_eq!(scratch_outs, vec![(ScratchId(0), tuple!("w", 1))]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s[&TsId(0)].len(), 0);
    }

    #[test]
    fn unknown_ts_fails_deterministically() {
        let mut s = one_space();
        let ags = Ags::out_one(TsId(9), vec![Operand::cst(1)]);
        assert_eq!(
            try_execute(&mut s, &ags, 0, 1),
            TryOutcome::Failed(ExecError::UnknownTs(TsId(9)))
        );
    }

    #[test]
    fn unknown_ts_in_guard_fails_not_blocks() {
        let mut s = one_space();
        let ags = Ags::in_one(TsId(9), vec![MF::bind(Int)]).unwrap();
        assert_eq!(
            try_execute(&mut s, &ags, 0, 1),
            TryOutcome::Failed(ExecError::UnknownTs(TsId(9)))
        );
    }

    #[test]
    fn self_host_and_seq_operands() {
        let mut s = one_space();
        let ags = Ags::out_one(TsId(0), vec![Operand::SelfHost, Operand::RequestSeq]);
        assert!(matches!(
            try_execute(&mut s, &ags, 5, 99),
            TryOutcome::Fired { .. }
        ));
        assert!(s[&TsId(0)].contains(&pat!(5, 99)));
    }

    #[test]
    fn rd_guard_binds_without_removal() {
        let mut s = one_space();
        s.get_mut(&TsId(0)).unwrap().insert(tuple!("cfg", 10));
        let ags = Ags::builder()
            .guard_rd(TsId(0), vec![MF::actual("cfg"), MF::bind(Int)])
            .out(
                TsId(0),
                vec![Operand::cst("derived"), Operand::formal(0).mul(3)],
            )
            .build()
            .unwrap();
        assert!(matches!(
            try_execute(&mut s, &ags, 0, 1),
            TryOutcome::Fired { .. }
        ));
        assert!(s[&TsId(0)].contains(&pat!("cfg", 10)));
        assert!(s[&TsId(0)].contains(&pat!("derived", 30)));
    }

    #[test]
    fn error_display() {
        assert!(ExecError::BodyUnmatched { op_index: 2 }
            .to_string()
            .contains("#2"));
        assert!(ExecError::UnknownTs(TsId(3)).to_string().contains("ts#3"));
    }
}

//! Tuple signatures and the signature catalog.
//!
//! The FT-lcc precompiler "analyzes and catalogs the signatures of all
//! patterns used in TS operations within the program. This information
//! consists of an ordered list of the types for each distinct pattern, and
//! is used primarily for matching purposes" (§5.2). We reproduce both
//! pieces: [`Signature`] is the ordered type list, and [`SignatureCatalog`]
//! interns signatures to dense ids so the runtime can bucket tuples by
//! signature instead of scanning the whole space (ablation A2).

use crate::value::TypeTag;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The ordered list of field types of a tuple or pattern.
///
/// Matching in Linda is type-safe: a pattern can only match a tuple with an
/// identical signature, so signatures partition tuple space into disjoint
/// buckets.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature {
    tags: Vec<TypeTag>,
}

impl Signature {
    /// Build a signature from an ordered type list.
    pub fn new(tags: Vec<TypeTag>) -> Self {
        Signature { tags }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.tags.len()
    }

    /// The ordered type tags.
    pub fn tags(&self) -> &[TypeTag] {
        &self.tags
    }

    /// A stable 64-bit hash of the signature, usable as a cheap bucket key
    /// that is identical across processes and replicas (FxHash-style FNV-1a
    /// over the tag bytes; `DefaultHasher` is *not* guaranteed stable across
    /// Rust releases, and replica determinism forbids per-process seeds).
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h ^= self.tags.len() as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        for t in &self.tags {
            h ^= *t as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("<")?;
        for (i, t) in self.tags.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(">")
    }
}

impl FromIterator<TypeTag> for Signature {
    fn from_iter<I: IntoIterator<Item = TypeTag>>(iter: I) -> Self {
        Signature::new(iter.into_iter().collect())
    }
}

/// Dense id for an interned signature; assigned in first-seen order by a
/// [`SignatureCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SigId(pub u32);

impl fmt::Display for SigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig#{}", self.0)
    }
}

/// Interning table mapping signatures to dense [`SigId`]s, mirroring the
/// per-program signature catalog FT-lcc builds at compile time.
#[derive(Debug, Default, Clone)]
pub struct SignatureCatalog {
    by_sig: HashMap<Signature, SigId>,
    by_id: Vec<Signature>,
}

impl SignatureCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `sig`, returning its dense id (stable for the catalog's life).
    pub fn intern(&mut self, sig: Signature) -> SigId {
        if let Some(&id) = self.by_sig.get(&sig) {
            return id;
        }
        let id = SigId(self.by_id.len() as u32);
        self.by_id.push(sig.clone());
        self.by_sig.insert(sig, id);
        id
    }

    /// Look up a signature without interning.
    pub fn get(&self, sig: &Signature) -> Option<SigId> {
        self.by_sig.get(sig).copied()
    }

    /// Resolve an id back to its signature.
    pub fn resolve(&self, id: SigId) -> Option<&Signature> {
        self.by_id.get(id.0 as usize)
    }

    /// Number of distinct signatures seen.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterate over `(id, signature)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SigId, &Signature)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (SigId(i as u32), s))
    }
}

/// Helper so `Signature` can feed `std` hash maps cheaply via its stable
/// hash (identity hasher over `stable_hash()` output).
#[derive(Default, Clone, Copy)]
pub struct StableHasher(u64);

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a over the raw bytes; only used with small keys.
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
}

/// `BuildHasher` for [`StableHasher`].
#[derive(Default, Clone, Copy)]
pub struct StableBuildHasher;

impl std::hash::BuildHasher for StableBuildHasher {
    type Hasher = StableHasher;
    fn build_hasher(&self) -> StableHasher {
        StableHasher::default()
    }
}

/// A `HashMap` keyed deterministically (no per-process random seed), for use
/// inside replicated state machines where iteration-independent behaviour
/// matters and hashing must agree across replicas.
pub type StableMap<K, V> = HashMap<K, V, StableBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::TypeTag::*;

    #[test]
    fn stable_hash_is_deterministic_and_discriminating() {
        let a = Signature::new(vec![Str, Int]);
        let b = Signature::new(vec![Str, Int]);
        let c = Signature::new(vec![Int, Str]);
        assert_eq!(a.stable_hash(), b.stable_hash());
        assert_ne!(a.stable_hash(), c.stable_hash());
        // arity matters even with no tags vs one tag
        assert_ne!(
            Signature::new(vec![]).stable_hash(),
            Signature::new(vec![Int]).stable_hash()
        );
    }

    #[test]
    fn display() {
        assert_eq!(Signature::new(vec![Str, Int]).to_string(), "<str,int>");
        assert_eq!(Signature::new(vec![]).to_string(), "<>");
    }

    #[test]
    fn catalog_interns_once() {
        let mut cat = SignatureCatalog::new();
        let s1 = Signature::new(vec![Str, Int]);
        let s2 = Signature::new(vec![Str, Float]);
        let id1 = cat.intern(s1.clone());
        let id2 = cat.intern(s2.clone());
        let id1b = cat.intern(s1.clone());
        assert_eq!(id1, id1b);
        assert_ne!(id1, id2);
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.resolve(id1), Some(&s1));
        assert_eq!(cat.resolve(id2), Some(&s2));
        assert_eq!(cat.get(&s1), Some(id1));
        assert_eq!(cat.get(&Signature::new(vec![Bool])), None);
        assert_eq!(cat.resolve(SigId(99)), None);
    }

    #[test]
    fn catalog_iteration_in_id_order() {
        let mut cat = SignatureCatalog::new();
        cat.intern(Signature::new(vec![Int]));
        cat.intern(Signature::new(vec![Str]));
        let ids: Vec<u32> = cat.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn stable_map_usable() {
        let mut m: StableMap<u64, i32> = StableMap::default();
        m.insert(7, 1);
        assert_eq!(m.get(&7), Some(&1));
    }

    #[test]
    fn from_iterator() {
        let s: Signature = [Int, Bool].into_iter().collect();
        assert_eq!(s.tags(), &[Int, Bool]);
    }
}

/root/repo/target/debug/deps/proptest_roundtrip-eb0e33a3ffe84ca5.d: crates/lcc/tests/proptest_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_roundtrip-eb0e33a3ffe84ca5.rmeta: crates/lcc/tests/proptest_roundtrip.rs Cargo.toml

crates/lcc/tests/proptest_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Tuple stores: the data structure behind a tuple space.
//!
//! Two implementations of the [`Store`] trait are provided:
//!
//! * [`IndexedStore`] — the production store. Tuples are bucketed by the
//!   stable hash of their signature (arity + ordered field types), and
//!   within a bucket a secondary index keyed by the *first field value*
//!   accelerates the overwhelmingly common Linda idiom of patterns whose
//!   head is a string constant (`("subtask", ?int, ?bytes)`).
//! * [`LinearStore`] — a straight `Vec` scan, kept as the baseline for
//!   ablation experiment A2.
//!
//! Both stores implement **oldest-match semantics**: `take`/`read` return
//! the matching tuple that was inserted earliest. This determinism is not
//! just a nicety — the replicated state machine (crate `ftlinda-kernel`)
//! requires every replica to withdraw the *same* tuple for the same
//! operation stream, and oldest-match also preserves causality for
//! FIFO-producer/consumer patterns.
//!
//! **Zero-clone withdraw contract:** `take`/`take_all` (and the tracked
//! variants) move the stored tuple out by removing it first — they never
//! clone payload bytes. Only the read-side operations (`read`,
//! `read_all`, `snapshot`) copy, because the original stays in the
//! store. AGS `move` over large tuple sets therefore costs O(matches)
//! pointer moves, not O(bytes).

use linda_tuple::{Pattern, StableMap, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Minimal interface of a tuple store (single-threaded; the concurrent
/// wrapper lives in [`crate::LocalSpace`]).
pub trait Store {
    /// Deposit a tuple.
    fn insert(&mut self, t: Tuple);
    /// Withdraw the oldest tuple matching `p`, if any.
    fn take(&mut self, p: &Pattern) -> Option<Tuple>;
    /// Read (copy) the oldest tuple matching `p`, if any.
    fn read(&self, p: &Pattern) -> Option<Tuple>;
    /// Whether any tuple matches `p`.
    fn contains(&self, p: &Pattern) -> bool {
        self.read(p).is_some()
    }
    /// Number of tuples matching `p`.
    fn count(&self, p: &Pattern) -> usize;
    /// Withdraw *all* tuples matching `p`, oldest first (the `move` AGS op).
    fn take_all(&mut self, p: &Pattern) -> Vec<Tuple>;
    /// Copy all tuples matching `p`, oldest first (the `copy` AGS op).
    fn read_all(&self, p: &Pattern) -> Vec<Tuple>;
    /// Total number of stored tuples.
    fn len(&self) -> usize;
    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Remove everything.
    fn clear(&mut self);
    /// Snapshot of all tuples in insertion order (for checkpointing and
    /// state transfer to recovering replicas).
    fn snapshot(&self) -> Vec<Tuple>;
}

/// One signature bucket of the [`IndexedStore`].
#[derive(Debug, Default, Clone)]
struct Bucket {
    /// Insertion-ordered entries (key = global insertion sequence).
    entries: BTreeMap<u64, Tuple>,
    /// Secondary index: first-field value → insertion seqs with that head.
    by_head: HashMap<Value, BTreeSet<u64>>,
}

impl Bucket {
    /// Insert under `seq`. Returns `true` if the sequence number was
    /// fresh. A duplicate seq would silently shadow the older tuple in
    /// `entries` while leaving a stale `by_head` entry behind, so callers
    /// must treat `false` as a contract violation (see `insert_tracked`
    /// / `restore_at`).
    fn insert(&mut self, seq: u64, t: Tuple) -> bool {
        if self.entries.contains_key(&seq) {
            return false;
        }
        if let Some(head) = t.get(0) {
            self.by_head.entry(head.clone()).or_default().insert(seq);
        }
        self.entries.insert(seq, t);
        true
    }

    fn remove(&mut self, seq: u64) -> Option<Tuple> {
        let t = self.entries.remove(&seq)?;
        if let Some(head) = t.get(0) {
            if let Some(set) = self.by_head.get_mut(head) {
                set.remove(&seq);
                if set.is_empty() {
                    self.by_head.remove(head);
                }
            }
        }
        Some(t)
    }

    /// Sequence numbers of candidate tuples for `p`, oldest first.
    fn candidates<'a>(&'a self, p: &Pattern) -> Box<dyn Iterator<Item = u64> + 'a> {
        match p.head_actual() {
            Some(head) => match self.by_head.get(head) {
                Some(set) => Box::new(set.iter().copied()),
                None => Box::new(std::iter::empty()),
            },
            None => Box::new(self.entries.keys().copied()),
        }
    }

    fn find_first(&self, p: &Pattern) -> Option<u64> {
        self.candidates(p).find(|seq| p.matches(&self.entries[seq]))
    }

    fn find_all(&self, p: &Pattern) -> Vec<u64> {
        self.candidates(p)
            .filter(|seq| p.matches(&self.entries[seq]))
            .collect()
    }
}

/// Signature-indexed tuple store with a first-field secondary index.
#[derive(Debug, Default, Clone)]
pub struct IndexedStore {
    buckets: StableMap<u64, Bucket>,
    next_seq: u64,
    len: usize,
}

impl IndexedStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_for_pattern(&self, p: &Pattern) -> Option<&Bucket> {
        self.buckets.get(&p.signature().stable_hash())
    }

    // ----- tracked operations -------------------------------------------
    //
    // The AGS execution engine needs *exact* rollback: an aborted atomic
    // guarded statement must leave the store bit-identical (including
    // tuple age/insertion order) at every replica. These inherent methods
    // expose the internal sequence number so an undo log can restore a
    // withdrawn tuple at its original position.

    /// Insert and return the internal insertion sequence (for undo).
    pub fn insert_tracked(&mut self, t: Tuple) -> u64 {
        let key = t.signature().stable_hash();
        let seq = self.next_seq;
        self.next_seq += 1;
        let fresh = self.buckets.entry(key).or_default().insert(seq, t);
        debug_assert!(fresh, "insert_tracked allocated a duplicate seq {seq}");
        if fresh {
            self.len += 1;
        }
        seq
    }

    /// Withdraw the oldest match together with its sequence number.
    pub fn take_tracked(&mut self, p: &Pattern) -> Option<(u64, Tuple)> {
        let key = p.signature().stable_hash();
        let bucket = self.buckets.get_mut(&key)?;
        let seq = bucket.find_first(p)?;
        let t = bucket.remove(seq)?;
        self.len -= 1;
        if bucket.entries.is_empty() {
            self.buckets.remove(&key);
        }
        Some((seq, t))
    }

    /// Withdraw all matches together with their sequence numbers.
    pub fn take_all_tracked(&mut self, p: &Pattern) -> Vec<(u64, Tuple)> {
        let key = p.signature().stable_hash();
        let Some(bucket) = self.buckets.get_mut(&key) else {
            return Vec::new();
        };
        let seqs = bucket.find_all(p);
        let out: Vec<(u64, Tuple)> = seqs
            .into_iter()
            .filter_map(|seq| bucket.remove(seq).map(|t| (seq, t)))
            .collect();
        self.len -= out.len();
        if bucket.entries.is_empty() {
            self.buckets.remove(&key);
        }
        out
    }

    /// Remove the tuple inserted under `seq` (undo of `insert_tracked`).
    pub fn remove_at(&mut self, seq: u64, sig_hash: u64) -> Option<Tuple> {
        let bucket = self.buckets.get_mut(&sig_hash)?;
        let t = bucket.remove(seq)?;
        self.len -= 1;
        if bucket.entries.is_empty() {
            self.buckets.remove(&sig_hash);
        }
        Some(t)
    }

    /// Re-insert a tuple at its original sequence position (undo of
    /// `take_tracked`), restoring its age exactly.
    ///
    /// # Contract
    ///
    /// `seq` must not currently be occupied — it must come from a
    /// preceding `take_tracked`/`take_all_tracked` on this store. A
    /// duplicate seq used to *silently overwrite* the resident tuple
    /// (corrupting `len` and leaving a stale head-index entry); it is now
    /// rejected: the store is left unchanged, `false` is returned, and
    /// debug builds panic.
    pub fn restore_at(&mut self, seq: u64, t: Tuple) -> bool {
        let key = t.signature().stable_hash();
        let fresh = self.buckets.entry(key).or_default().insert(seq, t);
        debug_assert!(fresh, "restore_at seq {seq} is already occupied");
        if fresh {
            self.len += 1;
        }
        fresh
    }
}

impl Store for IndexedStore {
    fn insert(&mut self, t: Tuple) {
        let key = t.signature().stable_hash();
        let seq = self.next_seq;
        self.next_seq += 1;
        let fresh = self.buckets.entry(key).or_default().insert(seq, t);
        debug_assert!(fresh, "insert allocated a duplicate seq {seq}");
        if fresh {
            self.len += 1;
        }
    }

    fn take(&mut self, p: &Pattern) -> Option<Tuple> {
        self.take_tracked(p).map(|(_, t)| t)
    }

    fn read(&self, p: &Pattern) -> Option<Tuple> {
        let bucket = self.bucket_for_pattern(p)?;
        bucket.find_first(p).map(|seq| bucket.entries[&seq].clone())
    }

    fn count(&self, p: &Pattern) -> usize {
        self.bucket_for_pattern(p)
            .map_or(0, |b| b.find_all(p).len())
    }

    fn take_all(&mut self, p: &Pattern) -> Vec<Tuple> {
        self.take_all_tracked(p)
            .into_iter()
            .map(|(_, t)| t)
            .collect()
    }

    fn read_all(&self, p: &Pattern) -> Vec<Tuple> {
        self.bucket_for_pattern(p).map_or_else(Vec::new, |b| {
            b.find_all(p)
                .into_iter()
                .map(|seq| b.entries[&seq].clone())
                .collect()
        })
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.buckets.clear();
        self.len = 0;
    }

    fn snapshot(&self) -> Vec<Tuple> {
        let mut all: Vec<(u64, Tuple)> = self
            .buckets
            .values()
            .flat_map(|b| b.entries.iter().map(|(s, t)| (*s, t.clone())))
            .collect();
        all.sort_by_key(|(s, _)| *s);
        all.into_iter().map(|(_, t)| t).collect()
    }
}

/// Baseline store: a flat insertion-ordered vector with linear scans.
/// Exists to quantify what signature indexing buys (ablation A2).
#[derive(Debug, Default, Clone)]
pub struct LinearStore {
    entries: Vec<(u64, Tuple)>,
    next_seq: u64,
}

impl LinearStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Store for LinearStore {
    fn insert(&mut self, t: Tuple) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((seq, t));
    }

    fn take(&mut self, p: &Pattern) -> Option<Tuple> {
        let idx = self.entries.iter().position(|(_, t)| p.matches(t))?;
        Some(self.entries.remove(idx).1)
    }

    fn read(&self, p: &Pattern) -> Option<Tuple> {
        self.entries
            .iter()
            .find(|(_, t)| p.matches(t))
            .map(|(_, t)| t.clone())
    }

    fn count(&self, p: &Pattern) -> usize {
        self.entries.iter().filter(|(_, t)| p.matches(t)).count()
    }

    fn take_all(&mut self, p: &Pattern) -> Vec<Tuple> {
        // Drain-partition: matches are moved out, non-matches moved back.
        // No tuple payload is ever cloned on this withdraw path.
        let mut out = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        for (seq, t) in self.entries.drain(..) {
            if p.matches(&t) {
                out.push(t);
            } else {
                kept.push((seq, t));
            }
        }
        self.entries = kept;
        out
    }

    fn read_all(&self, p: &Pattern) -> Vec<Tuple> {
        self.entries
            .iter()
            .filter(|(_, t)| p.matches(t))
            .map(|(_, t)| t.clone())
            .collect()
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    fn snapshot(&self) -> Vec<Tuple> {
        self.entries.iter().map(|(_, t)| t.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linda_tuple::{pat, tuple};

    fn stores() -> Vec<Box<dyn Store>> {
        vec![Box::new(IndexedStore::new()), Box::new(LinearStore::new())]
    }

    #[test]
    fn insert_take_roundtrip() {
        for mut s in stores() {
            s.insert(tuple!("a", 1));
            assert_eq!(s.len(), 1);
            assert_eq!(s.take(&pat!("a", ?int)), Some(tuple!("a", 1)));
            assert_eq!(s.len(), 0);
            assert!(s.is_empty());
            assert_eq!(s.take(&pat!("a", ?int)), None);
        }
    }

    #[test]
    fn oldest_match_fifo() {
        for mut s in stores() {
            s.insert(tuple!("t", 1));
            s.insert(tuple!("t", 2));
            s.insert(tuple!("t", 3));
            assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 1)));
            assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 2)));
            assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 3)));
        }
    }

    #[test]
    fn oldest_match_skips_nonmatching_newer_head() {
        for mut s in stores() {
            s.insert(tuple!("x", 1));
            s.insert(tuple!("y", 2));
            s.insert(tuple!("x", 3));
            // Head-indexed path: pattern with head actual "y".
            assert_eq!(s.take(&pat!("y", ?int)), Some(tuple!("y", 2)));
            // Generic path: all-formal pattern sees oldest overall.
            assert_eq!(s.take(&pat!(?str, ?int)), Some(tuple!("x", 1)));
            assert_eq!(s.take(&pat!(?str, ?int)), Some(tuple!("x", 3)));
        }
    }

    #[test]
    fn read_does_not_remove() {
        for mut s in stores() {
            s.insert(tuple!("a", 1));
            assert_eq!(s.read(&pat!("a", ?int)), Some(tuple!("a", 1)));
            assert_eq!(s.len(), 1);
            assert!(s.contains(&pat!("a", ?int)));
            assert!(!s.contains(&pat!("b", ?int)));
        }
    }

    #[test]
    fn count_and_read_all() {
        for mut s in stores() {
            for i in 0..5 {
                s.insert(tuple!("n", i));
            }
            s.insert(tuple!("other", 1.0));
            assert_eq!(s.count(&pat!("n", ?int)), 5);
            assert_eq!(s.count(&pat!("n", 3)), 1);
            assert_eq!(s.count(&pat!("zzz", ?int)), 0);
            let all = s.read_all(&pat!("n", ?int));
            assert_eq!(all.len(), 5);
            assert_eq!(all[0], tuple!("n", 0));
            assert_eq!(all[4], tuple!("n", 4));
            assert_eq!(s.len(), 6);
        }
    }

    #[test]
    fn take_all_removes_only_matches() {
        for mut s in stores() {
            for i in 0..4 {
                s.insert(tuple!("job", i));
            }
            s.insert(tuple!("done", 0));
            let taken = s.take_all(&pat!("job", ?int));
            assert_eq!(taken.len(), 4);
            assert_eq!(taken[0], tuple!("job", 0));
            assert_eq!(s.len(), 1);
            assert_eq!(s.take(&pat!("done", ?int)), Some(tuple!("done", 0)));
        }
    }

    #[test]
    fn signatures_do_not_cross_match() {
        for mut s in stores() {
            s.insert(tuple!("a", 1));
            s.insert(tuple!("a", 1.0));
            s.insert(tuple!("a", 1, 2));
            assert_eq!(s.take(&pat!("a", ?float)), Some(tuple!("a", 1.0)));
            assert_eq!(s.take(&pat!("a", ?int, ?int)), Some(tuple!("a", 1, 2)));
            assert_eq!(s.take(&pat!("a", ?int)), Some(tuple!("a", 1)));
        }
    }

    #[test]
    fn duplicate_tuples_are_a_multiset() {
        for mut s in stores() {
            s.insert(tuple!("dup"));
            s.insert(tuple!("dup"));
            assert_eq!(s.count(&pat!("dup")), 2);
            assert_eq!(s.take(&pat!("dup")), Some(tuple!("dup")));
            assert_eq!(s.count(&pat!("dup")), 1);
        }
    }

    #[test]
    fn empty_tuple_storage() {
        for mut s in stores() {
            s.insert(tuple!());
            assert_eq!(s.take(&pat!()), Some(tuple!()));
        }
    }

    #[test]
    fn snapshot_preserves_insertion_order() {
        for mut s in stores() {
            s.insert(tuple!("b", 2));
            s.insert(tuple!("a", 1));
            s.insert(tuple!("c", 3.0));
            assert_eq!(
                s.snapshot(),
                vec![tuple!("b", 2), tuple!("a", 1), tuple!("c", 3.0)]
            );
        }
    }

    #[test]
    fn clear_empties() {
        for mut s in stores() {
            s.insert(tuple!(1));
            s.insert(tuple!(2));
            s.clear();
            assert_eq!(s.len(), 0);
            assert_eq!(s.take(&pat!(?int)), None);
        }
    }

    #[test]
    fn head_index_cleanup_after_removal() {
        let mut s = IndexedStore::new();
        s.insert(tuple!("k", 1));
        assert_eq!(s.take(&pat!("k", ?int)), Some(tuple!("k", 1)));
        // Bucket is gone; reinsert works and matches again.
        s.insert(tuple!("k", 2));
        assert_eq!(s.read(&pat!("k", ?int)), Some(tuple!("k", 2)));
    }

    #[test]
    fn mid_pattern_actuals_filter() {
        for mut s in stores() {
            s.insert(tuple!("p", 1, "x"));
            s.insert(tuple!("p", 2, "y"));
            assert_eq!(s.take(&pat!("p", ?int, "y")), Some(tuple!("p", 2, "y")));
        }
    }

    #[test]
    fn indexed_and_linear_agree_on_random_workload() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut idx = IndexedStore::new();
        let mut lin = LinearStore::new();
        let heads = ["a", "b", "c"];
        for _ in 0..2000 {
            let op: u8 = rng.gen_range(0..4);
            let head = heads[rng.gen_range(0..heads.len())];
            let v: i64 = rng.gen_range(0..5);
            match op {
                0 => {
                    let t = tuple!(head, v);
                    idx.insert(t.clone());
                    lin.insert(t);
                }
                1 => {
                    let p = pat!(head, ?int);
                    assert_eq!(idx.take(&p), lin.take(&p));
                }
                2 => {
                    let p = pat!(head, v);
                    assert_eq!(idx.read(&p), lin.read(&p));
                }
                _ => {
                    let p = pat!(?str, v);
                    assert_eq!(idx.count(&p), lin.count(&p));
                }
            }
            assert_eq!(idx.len(), lin.len());
        }
        assert_eq!(idx.snapshot(), lin.snapshot());
    }
}

#[cfg(test)]
mod tracked_tests {
    use super::*;
    use linda_tuple::{pat, tuple};

    #[test]
    fn tracked_roundtrip_preserves_age() {
        let mut s = IndexedStore::new();
        s.insert(tuple!("t", 1));
        s.insert(tuple!("t", 2));
        s.insert(tuple!("t", 3));
        // Withdraw the middle one by value, then restore it.
        let (seq, t) = s.take_tracked(&pat!("t", 2)).unwrap();
        assert_eq!(t, tuple!("t", 2));
        s.restore_at(seq, t);
        // Age order must be exactly as before the withdrawal.
        assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 1)));
        assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 2)));
        assert_eq!(s.take(&pat!("t", ?int)), Some(tuple!("t", 3)));
    }

    #[test]
    fn remove_at_undoes_insert() {
        let mut s = IndexedStore::new();
        let t = tuple!("x", 9);
        let sig = t.signature().stable_hash();
        let seq = s.insert_tracked(t);
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove_at(seq, sig), Some(tuple!("x", 9)));
        assert_eq!(s.len(), 0);
        assert_eq!(s.remove_at(seq, sig), None);
    }

    #[test]
    fn restore_at_rejects_occupied_seq() {
        let mut s = IndexedStore::new();
        s.insert(tuple!("t", 1));
        let (seq, t) = s.take_tracked(&pat!("t", 1)).unwrap();
        assert!(s.restore_at(seq, t));
        // The slot is occupied again: a second restore at the same seq
        // must not overwrite it or corrupt `len`.
        let dup = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.restore_at(seq, tuple!("t", 99))
        }));
        if cfg!(debug_assertions) {
            assert!(dup.is_err(), "debug builds panic on duplicate seq");
        } else {
            assert!(!dup.unwrap(), "release builds report the rejection");
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.read(&pat!("t", ?int)), Some(tuple!("t", 1)));
        assert_eq!(s.count(&pat!("t", 99)), 0, "duplicate must not land");
    }

    #[test]
    fn take_all_tracked_restores() {
        let mut s = IndexedStore::new();
        for i in 0..4 {
            s.insert(tuple!("job", i));
        }
        s.insert(tuple!("other"));
        let taken = s.take_all_tracked(&pat!("job", ?int));
        assert_eq!(taken.len(), 4);
        assert_eq!(s.len(), 1);
        for (seq, t) in taken {
            s.restore_at(seq, t);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.take(&pat!("job", ?int)), Some(tuple!("job", 0)));
    }
}

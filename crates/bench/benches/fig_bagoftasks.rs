//! E5 / Figures 4–5 — bag-of-tasks throughput: FT vs plain workers, and
//! completion under crash + recovery.
//!
//! Shape expected from the paper: the FT worker pays a constant overhead
//! per task (the in-progress marker makes take and commit two-op AGSs
//! instead of bare in/out) but completes *all* tasks under crashes, which
//! the plain version cannot. Throughput scales with workers until the
//! sequencer saturates.

use criterion::{criterion_group, criterion_main, Criterion};
use ftlinda::{Cluster, HostId, Value};
use linda_paradigms::BagOfTasks;
use std::time::Duration;

fn work(v: &Value) -> Value {
    // A small but real computation: sum of divisors.
    let n = v.as_int().unwrap();
    let s: i64 = (1..=n).filter(|d| n % d == 0).sum();
    Value::Int(s)
}

fn run_once(workers: usize, tasks: i64, ft: bool) {
    let hosts = workers as u32 + 1;
    let (cluster, rts) = Cluster::new(hosts);
    let bag = BagOfTasks::create(&rts[0], "bag").unwrap();
    let ids = bag
        .seed(&rts[0], 0, (0..tasks).map(|i| Value::Int(500 + i % 7)))
        .unwrap();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let rt = rts[w + 1].clone();
            if ft {
                bag.spawn_worker(rt, work)
            } else {
                bag.spawn_worker_unsafe(rt, work)
            }
        })
        .collect();
    bag.collect(&rts[0], &ids).unwrap();
    bag.poison(&rts[0]).unwrap();
    for h in handles {
        h.join().unwrap();
    }
    cluster.shutdown();
}

/// One instrumented run: complete `tasks` with `workers`, then print the
/// per-stage latency attribution merged across the worker runtimes'
/// `ftlinda_ags_*_seconds` histograms — the same instruments `/metrics`
/// exports, so the bench's cost story and the scrape's agree.
fn run_attributed(workers: usize, tasks: i64, ft: bool) {
    let hosts = workers as u32 + 1;
    let (cluster, rts) = Cluster::new(hosts);
    let bag = BagOfTasks::create(&rts[0], "bag").unwrap();
    let ids = bag
        .seed(&rts[0], 0, (0..tasks).map(|i| Value::Int(500 + i % 7)))
        .unwrap();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let rt = rts[w + 1].clone();
            if ft {
                bag.spawn_worker(rt, work)
            } else {
                bag.spawn_worker_unsafe(rt, work)
            }
        })
        .collect();
    bag.collect(&rts[0], &ids).unwrap();
    bag.poison(&rts[0]).unwrap();
    for h in handles {
        h.join().unwrap();
    }
    let regs: Vec<_> = rts.iter().skip(1).map(|rt| rt.obs()).collect();
    println!(
        "  {} workers ({}) — pipeline stage attribution over all worker AGSs:",
        workers,
        if ft { "FT" } else { "plain" }
    );
    linda_bench::print_stage_attribution(&regs);
    cluster.shutdown();
}

fn bench(c: &mut Criterion) {
    println!("\nE5 — bag-of-tasks: per-stage latency attribution (40 tasks):");
    run_attributed(2, 40, true);
    run_attributed(2, 40, false);

    println!("\nE5 — bag-of-tasks: 40 tasks, completion time:");
    let mut g = c.benchmark_group("fig_bagoftasks");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for workers in [1usize, 2, 4] {
        g.bench_function(format!("ft_workers_{workers}"), |b| {
            b.iter(|| run_once(workers, 40, true))
        });
        g.bench_function(format!("plain_workers_{workers}"), |b| {
            b.iter(|| run_once(workers, 40, false))
        });
    }
    g.finish();

    // Crash-recovery completion time: 2 FT workers, one crashes mid-run,
    // monitor reassigns — measured end to end. (The plain version would
    // hang forever here, which is the paper's point; we only measure the
    // variant that terminates.)
    let mut g = c.benchmark_group("fig_bagoftasks_crash");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function("ft_2workers_1crash", |b| {
        b.iter(|| {
            let (cluster, rts) = Cluster::new(3);
            let bag = BagOfTasks::create(&rts[0], "bag").unwrap();
            let ids = bag
                .seed(&rts[0], 0, (0..24).map(|i| Value::Int(300 + i)))
                .unwrap();
            let monitor = bag.spawn_monitor(rts[0].clone());
            let slow = |v: &Value| {
                std::thread::sleep(Duration::from_micros(500));
                work(v)
            };
            let _w1 = bag.spawn_worker(rts[1].clone(), slow);
            let _w2 = bag.spawn_worker(rts[2].clone(), slow);
            std::thread::sleep(Duration::from_millis(3));
            cluster.crash(HostId(2));
            bag.collect(&rts[0], &ids).unwrap();
            bag.stop_monitor(&rts[0]).unwrap();
            monitor.join().unwrap();
            bag.poison(&rts[0]).unwrap();
            cluster.shutdown();
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! # linda-paradigms
//!
//! The fault-tolerant parallel-programming paradigms from the FT-Linda
//! paper (§2.3, §4), implemented on the `ftlinda` runtime:
//!
//! * [`DistVar`] — the distributed shared variable, with both the atomic
//!   AGS update (Figure 3) and the deliberately lossy plain-Linda
//!   two-step update (Figure 2) for comparison.
//! * [`BagOfTasks`] — the fault-tolerant replicated-worker paradigm:
//!   in-progress tuples, result commit with reassignment tolerance, and
//!   the failure-tuple monitor that returns a dead host's work to the bag.
//! * [`DivideConquer`] — adaptive task splitting with an
//!   `("outstanding", n)` counter maintained inside the same AGSs, giving
//!   a crash-safe termination barrier (demonstrated as adaptive
//!   quadrature).
//! * [`TsBarrier`] / [`TsSemaphore`] — synchronization in tuple space.
//! * [`Checkpoint`] — atomic versioned checkpoint cells (§2.2's stable-
//!   storage use case).
//! * [`consensus`] — one-shot distributed consensus via AGS disjunction,
//!   the paper's flagship "impossible with single-op atomicity" example.

#![warn(missing_docs)]

mod barrier;
mod bot;
mod checkpoint;
pub mod consensus;
mod distvar;
mod dnc;
mod pool;

pub use barrier::{TsBarrier, TsSemaphore};
pub use bot::{BagOfTasks, MONITOR_STOP, POISON_ID};
pub use checkpoint::Checkpoint;
pub use distvar::DistVar;
pub use dnc::DivideConquer;
pub use pool::{AdaptivePool, Departure};

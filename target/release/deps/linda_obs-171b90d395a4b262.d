/root/repo/target/release/deps/linda_obs-171b90d395a4b262.d: crates/obs/src/lib.rs

/root/repo/target/release/deps/liblinda_obs-171b90d395a4b262.rlib: crates/obs/src/lib.rs

/root/repo/target/release/deps/liblinda_obs-171b90d395a4b262.rmeta: crates/obs/src/lib.rs

crates/obs/src/lib.rs:

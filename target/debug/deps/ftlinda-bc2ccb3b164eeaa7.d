/root/repo/target/debug/deps/ftlinda-bc2ccb3b164eeaa7.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

/root/repo/target/debug/deps/ftlinda-bc2ccb3b164eeaa7: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/error.rs:
crates/core/src/runtime.rs:
crates/core/src/server.rs:

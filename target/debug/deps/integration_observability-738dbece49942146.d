/root/repo/target/debug/deps/integration_observability-738dbece49942146.d: tests/integration_observability.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_observability-738dbece49942146.rmeta: tests/integration_observability.rs Cargo.toml

tests/integration_observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

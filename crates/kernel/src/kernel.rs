//! The per-host tuple-space state machine.
//!
//! One [`Kernel`] runs on every host, fed the identical totally-ordered
//! [`Delivery`] stream by the Consul layer. It holds the replicas of all
//! stable tuple spaces, the deterministic blocked-AGS queue, and the
//! owner-local scratch spaces.
//!
//! Determinism contract: given the same delivery stream, every kernel
//! reaches the same stable-space state and the same blocked queue —
//! verified by the `digest()`-based convergence tests and proptests. The
//! only per-host divergence is *scratch* output (applied only where
//! `origin == self`) and client notifications (only the origin host
//! resolves its client's waiting call).

use crate::checkpoint::{
    decode_image, encode_image, BlockedImage, CheckpointError, KernelCheckpoint, KernelImage,
};
use crate::exec::{guard_keys, guard_labels, try_execute, ExecError, TryOutcome};
use crate::proto::{decode_request, Request, SigBucket};
use consul_sim::{Delivery, HostId, LocalId};
use ftlinda_ags::{shard_of, Ags, AgsOutcome, ScratchId, TsId};
use linda_space::{
    IndexReport, IndexedStore, LocalSpace, MatchStats, SignatureOccupancy, Store, StoreConfig,
};
use linda_tuple::{tuple, Tuple};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// This kernel's position in a sharded deployment: stable spaces are
/// partitioned by `(TsId, signature stable-hash)` across `count` replica
/// groups, and this kernel applies the stream of shard `index`. The
/// default `(0, 1)` is the unsharded configuration and changes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's id, `0 <= index < count`.
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec { index: 0, count: 1 }
    }
}

impl ShardSpec {
    /// Whether this shard owns the `(ts, signature)` bucket.
    pub fn owns(&self, ts: TsId, sig_hash: u64) -> bool {
        shard_of(ts, sig_hash, self.count) == self.index
    }
}

/// Outcome of the home-shard leg of a cross-shard commit (`XExec`).
#[derive(Debug, Clone, PartialEq)]
pub enum XStageResult {
    /// The AGS fired. Effects on home-owned keys are committed; effects
    /// on foreign keys are in the writebacks.
    Fired(AgsOutcome),
    /// No branch guard was satisfiable. Nothing committed anywhere; the
    /// origin releases the participants unchanged and retries later
    /// (cross-shard AGSs are never queued in a blocked table).
    Blocked,
    /// The chosen branch's body failed; all state rolled back.
    Failed(ExecError),
}

/// Notification from the kernel to the local FT-Linda runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelNote {
    /// An AGS submitted by *this* host completed (fired or failed).
    Completed {
        /// Global sequence at which it executed.
        seq: u64,
        /// The submitter's local id.
        local: LocalId,
        /// Execution result.
        result: Result<AgsOutcome, ExecError>,
    },
    /// A `CreateTs` submitted by this host resolved.
    TsCreated {
        /// Global sequence of the create.
        seq: u64,
        /// The submitter's local id.
        local: LocalId,
        /// The (possibly pre-existing) space id.
        id: TsId,
        /// Space name.
        name: String,
    },
    /// A failure tuple was deposited for `host` (every host is notified;
    /// monitors usually watch TS instead).
    HostFailed {
        /// Global sequence of the view change.
        seq: u64,
        /// The failed host.
        host: HostId,
    },
    /// A host rejoined.
    HostJoined {
        /// Global sequence of the view change.
        seq: u64,
        /// The joined host.
        host: HostId,
    },
    /// A delivered payload could not be decoded (corrupt message). The
    /// record is skipped identically at every replica.
    Malformed {
        /// Global sequence of the bad record.
        seq: u64,
        /// Origin of the bad record.
        origin: HostId,
    },
    /// The kernel replaced its entire state with a checkpoint image
    /// (rejoin, or catch-up after falling behind the coordinator's
    /// compaction watermark). Any local call submitted before the
    /// restore is indeterminate — the runtime fails its waiters.
    Restored {
        /// Sequence number the image captures.
        seq: u64,
    },
    /// The ordering layer evicted this member (a false failure
    /// suspicion: the coordinator ordered a `Fail` for us while we were
    /// alive). In-flight local calls are indeterminate across the
    /// re-admission — the runtime fails their waiters. State is kept;
    /// the rejoin's `Restore` or replayed tail brings it back in step.
    Evicted {
        /// The member's contiguous prefix at the moment of eviction.
        seq: u64,
    },
    /// A checkpoint image failed to decode or verify; the kernel kept
    /// its previous state. The replica is now behind and will stay so —
    /// surfaced to the operator rather than silently diverging.
    RestoreFailed {
        /// Sequence number of the rejected image.
        seq: u64,
        /// Why the restore was refused.
        error: CheckpointError,
    },
    /// An `XLock` this host submitted was applied: the shard froze and
    /// its buckets were checked out. Carries the bucket contents the
    /// origin forwards to the home shard's `XExec`.
    XCheckedOut {
        /// Global sequence of the lock on the participant shard.
        seq: u64,
        /// The submitter's local id.
        local: LocalId,
        /// Transaction id.
        xid: u64,
        /// The checked-out buckets, oldest-first per bucket.
        buckets: Vec<SigBucket>,
    },
    /// An `XExec` this host submitted was applied on the home shard.
    XStaged {
        /// Global sequence of the exec on the home shard.
        seq: u64,
        /// The submitter's local id.
        local: LocalId,
        /// Transaction id.
        xid: u64,
        /// What the execution did.
        result: XStageResult,
        /// The foreign buckets after execution, to be carried back to
        /// their participant shards via `XRelease`.
        writebacks: Vec<SigBucket>,
    },
    /// An `XRelease` this host submitted was applied: the participant
    /// shard reinstated its buckets and unfroze.
    XReleased {
        /// Global sequence of the release on the participant shard.
        seq: u64,
        /// The submitter's local id.
        local: LocalId,
        /// Transaction id.
        xid: u64,
    },
}

/// A blocked AGS waiting for some guard to become satisfiable.
#[derive(Debug, Clone)]
struct BlockedAgs {
    seq: u64,
    origin: HostId,
    local: LocalId,
    ags: Ags,
    /// The `(space, guard-signature)` keys this AGS is indexed under.
    keys: Vec<(TsId, u64)>,
    /// Wall-clock instant the AGS blocked at *this* replica (re-stamped
    /// on checkpoint restore). Observability only — never serialized,
    /// never digested, so replicas stay byte-identical on the wire.
    since: Instant,
    /// Guard rendering used as the starvation/retry metric label
    /// (see [`guard_labels`]).
    labels: String,
    /// Starvation-threshold crossings already reported, so the watchdog
    /// emits exactly one `ags_starving` event per crossing.
    starve_reported: u32,
}

/// The name of the distinguished failure tuple's head field (paper §2.3:
/// the runtime converts fail-silent crashes into fail-stop by depositing
/// a failure tuple into TS).
pub const FAILURE_TUPLE_HEAD: &str = "failure";

/// A live cross-shard hold on this (participant) shard: its buckets are
/// checked out and in flight to the home shard, so the shard is frozen —
/// deliveries are buffered, to be replayed when the `XRelease` arrives.
/// Every replica of the shard freezes at the same sequence number, so
/// the buffer contents and replay order are identical everywhere.
struct Hold {
    xid: u64,
    origin: HostId,
    /// The buckets as checked out, kept so a failure of the origin
    /// mid-protocol can abort the hold by reinstating them.
    checked_out: Vec<SigBucket>,
    /// Deliveries deferred while frozen, in arrival order, each stamped
    /// with its wall-clock arrival so lock-wait queueing is attributable
    /// at replay. Stamps are observability only — replay order and
    /// contents stay identical at every replica.
    buffer: Vec<(Delivery, Instant)>,
    /// When the freeze began at this replica (observability only, never
    /// replicated).
    since: Instant,
}

/// Observability handles resolved once at attach time so the apply path
/// pays only atomic stores (absent when no registry is attached, e.g. in
/// bare state-machine tests).
struct KernelObs {
    exec_hist: Arc<linda_obs::Histogram>,
    blocked_depth: Arc<linda_obs::Gauge>,
    stable_size: Arc<linda_obs::Gauge>,
    applied_seq: Arc<linda_obs::Gauge>,
    applied_total: Arc<linda_obs::Counter>,
    /// Causal-trace ring: "apply"/"block" per applied AGS, "wake" when a
    /// blocked guard later fires.
    spans: Arc<linda_obs::SpanLog>,
    ckpt_hist: Arc<linda_obs::Histogram>,
    ckpt_bytes: Arc<linda_obs::Gauge>,
    ckpt_seq: Arc<linda_obs::Gauge>,
    /// Structured events (the starvation watchdog emits `ags_starving`
    /// here).
    events: Arc<linda_obs::EventSink>,
    /// Whether the per-signature workload families below are kept
    /// current (disabled by `no_introspection()`).
    deep: bool,
    /// `ftlinda_ts_tuples{space,signature}` — current occupancy.
    ts_tuples: Arc<linda_obs::GaugeFamily>,
    /// `ftlinda_ts_tuples_high_water{space,signature}`.
    ts_tuples_hw: Arc<linda_obs::GaugeFamily>,
    /// `ftlinda_match_attempts_total{space}` / `_probes_total{space}` —
    /// delta-fed from the stores' cumulative [`MatchStats`].
    match_attempts: Arc<linda_obs::CounterFamily>,
    match_probes: Arc<linda_obs::CounterFamily>,
    /// `ftlinda_match_probe_efficiency_bp{space}` — basis points of
    /// probes that matched (integer gauge, 0–10000). Integer percent
    /// floored sub-1% workloads (the 100k-miss case) to 0,
    /// indistinguishable from idle.
    match_efficiency: Arc<linda_obs::GaugeFamily>,
    /// `ftlinda_miss_cache_hits_total{space}` — attempts answered by the
    /// antituple (miss) cache with zero probes.
    miss_cache_hits: Arc<linda_obs::CounterFamily>,
    /// `ftlinda_index_builds_total{space}` — lazy value-index promotions
    /// performed by the store.
    index_builds: Arc<linda_obs::CounterFamily>,
    /// `ftlinda_index_demotions_total{space}` — value indexes dropped
    /// because maintenance cost dwarfed the probes they saved.
    index_demotions: Arc<linda_obs::CounterFamily>,
    /// `ftlinda_value_indexes{space}` — promoted value indexes currently
    /// live (beyond the eager first-field index).
    value_indexes: Arc<linda_obs::GaugeFamily>,
    /// `ftlinda_blocked_retries_total{signature,outcome}` — every
    /// re-probe of a blocked guard: `wasted` (still blocked), `fired`,
    /// or `failed`. The `wasted` series is the cost `retry_blocked_full`
    /// pays on view changes.
    retries: Arc<linda_obs::CounterFamily>,
    /// Last-seen per-space match stats, for delta-feeding the counters.
    prev_match: HashMap<TsId, MatchStats>,
    /// Last-seen per-space index-build totals, same delta scheme.
    prev_builds: HashMap<TsId, u64>,
    /// Last-seen per-space index-demotion totals, same delta scheme.
    prev_demotions: HashMap<TsId, u64>,
    starving_total: Arc<linda_obs::Counter>,
    starving_now: Arc<linda_obs::Gauge>,
    /// `ftlinda_shard_tuples{shard}` — this kernel's stable-tuple total
    /// under its shard label: the per-shard load census. A level, like
    /// `ftlinda_stable_tuples`: summing across a shard's replicas
    /// multiplies by the replication factor.
    shard_tuples: Arc<linda_obs::GaugeFamily>,
    /// `ftlinda_shard_ags_total{shard}` — AGS executions this shard's
    /// order stream applied (single-shard applies plus cross-shard
    /// `XExec` legs).
    shard_ags: Arc<linda_obs::CounterFamily>,
    /// `ftlinda_xcommit_aborts_total{cause,shard}` — cross-shard commit
    /// attempts rolled back on this shard, by cause (`blocked_retry`,
    /// `body_failure`, `lock_expiry`). Counted on **every** replica, so
    /// each participant host's registry shows the abort.
    xcommit_aborts: Arc<linda_obs::CounterFamily>,
    /// `ftlinda_xlock_buffered_total{shard}` — deliveries that queued
    /// behind a cross-shard lock on this shard: the lock-contention
    /// counter.
    xlock_buffered: Arc<linda_obs::CounterFamily>,
    /// `ftlinda_xlock_held_seconds` — how long this shard stayed frozen
    /// per cross-shard hold (release or abort).
    xlock_held: Arc<linda_obs::Histogram>,
}

/// One starvation-watchdog report: a blocked AGS crossed the threshold
/// (again). Also emitted as an `ags_starving` event when a registry is
/// attached.
#[derive(Debug, Clone)]
pub struct StarvationReport {
    /// Global sequence at which the AGS blocked.
    pub seq: u64,
    /// Submitting host.
    pub origin: HostId,
    /// Submitter's local id.
    pub local: LocalId,
    /// How long the AGS has been blocked at this replica.
    pub age: Duration,
    /// Guard rendering, e.g. `ts0:<str,int>`.
    pub guards: String,
    /// Tuples currently stored under the guard's `(space, signature)`
    /// keys: tuples of the right shape that still don't satisfy the
    /// guard — the "nearest miss" count.
    pub nearest_miss: usize,
    /// How many thresholds the age has crossed so far (1 = first report).
    pub crossings: u32,
    /// Shard lane the AGS is queued on (the kernel that reported it).
    pub shard: u32,
}

/// Introspection row for one stable space.
#[derive(Debug, Clone)]
pub struct SpaceReport {
    /// Space id.
    pub id: TsId,
    /// Space name (or `ts<id>` if unnamed).
    pub name: String,
    /// Total tuples stored.
    pub tuples: usize,
    /// Per-signature occupancy with high-water marks.
    pub signatures: Vec<SignatureOccupancy>,
    /// Cumulative matching-cost totals for this space's store.
    pub match_stats: MatchStats,
    /// Derived-state inventory: live value indexes, index builds, cached
    /// misses.
    pub index: IndexReport,
}

/// Introspection row for one blocked AGS.
#[derive(Debug, Clone)]
pub struct BlockedReport {
    /// Global sequence at which the AGS blocked.
    pub seq: u64,
    /// Submitting host.
    pub origin: HostId,
    /// Submitter's local id.
    pub local: LocalId,
    /// How long the AGS has been blocked at this replica.
    pub age: Duration,
    /// Guard rendering, e.g. `ts0:<str,int>`.
    pub guards: String,
    /// Tuples currently stored under the guard's signature keys.
    pub nearest_miss: usize,
    /// Whether the starvation watchdog has reported this AGS.
    pub starving: bool,
}

/// Full kernel introspection snapshot — the `/introspect` payload.
#[derive(Debug, Clone)]
pub struct IntrospectReport {
    /// Reporting replica.
    pub host: HostId,
    /// Sequence number of the last applied record.
    pub applied: u64,
    /// Per-space rows, ascending space id.
    pub spaces: Vec<SpaceReport>,
    /// Blocked-AGS table, arrival order (oldest first).
    pub blocked: Vec<BlockedReport>,
}

/// The replicated tuple-space state machine for one host.
pub struct Kernel {
    host: HostId,
    stables: BTreeMap<TsId, IndexedStore>,
    names: BTreeMap<String, TsId>,
    next_ts: u32,
    scratches: HashMap<ScratchId, LocalSpace>,
    /// Blocked AGSs keyed by arrival id (ascending id = arrival order,
    /// preserving FIFO-fair wakeup).
    blocked: BTreeMap<u64, BlockedAgs>,
    next_blocked_id: u64,
    /// Inverted index: `(space, guard-signature-hash)` → blocked ids.
    /// A deposit can only wake guards under its own key, so retries
    /// after an AGS fires touch matching guards instead of rescanning
    /// the whole queue (`Fail` records still trigger a full pass).
    guard_index: HashMap<(TsId, u64), BTreeSet<u64>>,
    notes: crossbeam::channel::Sender<KernelNote>,
    applied: u64,
    /// Image produced by the last `Delivery::Checkpoint` boundary, held
    /// until the runtime hands it to the ordering layer for compaction.
    pending_checkpoint: Option<KernelCheckpoint>,
    obs: Option<KernelObs>,
    /// Matching-engine knobs applied to newly created stable stores
    /// (pure derived state — see [`Kernel::set_store_config`]).
    store_cfg: StoreConfig,
    /// Per-signature knob overrides, applied on top of `store_cfg` to
    /// every store (existing and future). Derived state, like the base
    /// config.
    store_overrides: Vec<(u64, StoreConfig)>,
    /// This kernel's shard position; `(0, 1)` when unsharded.
    shard: ShardSpec,
    /// Live cross-shard hold, if this shard is currently frozen.
    hold: Option<Hold>,
}

impl Kernel {
    /// Create a kernel for `host`; notifications go to `notes`.
    pub fn new(host: HostId, notes: crossbeam::channel::Sender<KernelNote>) -> Self {
        Kernel {
            host,
            stables: BTreeMap::new(),
            names: BTreeMap::new(),
            next_ts: 0,
            scratches: HashMap::new(),
            blocked: BTreeMap::new(),
            next_blocked_id: 0,
            guard_index: HashMap::new(),
            notes,
            applied: 0,
            pending_checkpoint: None,
            obs: None,
            store_cfg: StoreConfig::default(),
            store_overrides: Vec::new(),
            shard: ShardSpec::default(),
            hold: None,
        }
    }

    /// Set the matching-engine knobs used for every stable store this
    /// kernel creates from now on (`CreateTs` and checkpoint restore).
    /// Purely derived state: replicas running different configs still
    /// withdraw identical tuples, so this never needs to be agreed on.
    pub fn set_store_config(&mut self, cfg: StoreConfig) {
        self.store_cfg = cfg;
    }

    /// Override the matching-engine knobs for one signature (by stable
    /// hash) in every stable space, current and future. Like the base
    /// config this is pure derived state — it changes probe costs, never
    /// match results.
    pub fn set_store_config_override(&mut self, sig_hash: u64, cfg: StoreConfig) {
        self.store_overrides.retain(|(s, _)| *s != sig_hash);
        self.store_overrides.push((sig_hash, cfg));
        for store in self.stables.values_mut() {
            store.set_config_override(sig_hash, cfg);
        }
    }

    /// Declare this kernel's shard position. Must be set before any
    /// delivery is applied and be identical on every replica of the
    /// shard; it scopes failure-tuple deposits to owned buckets.
    pub fn set_shard(&mut self, shard: ShardSpec) {
        self.shard = shard;
    }

    /// A stable store with the base config plus all signature overrides.
    fn new_store(&self) -> IndexedStore {
        let mut s = IndexedStore::with_config(self.store_cfg);
        for (sig, cfg) in &self.store_overrides {
            s.set_config_override(*sig, *cfg);
        }
        s
    }

    /// Register an owner-local scratch space so AGS bodies can `out`/
    /// `move` into it. Only this host materializes those writes.
    pub fn register_scratch(&mut self, id: ScratchId, space: LocalSpace) {
        self.scratches.insert(id, space);
    }

    /// Attach an observability registry: each applied record is timed
    /// into `ftlinda_ags_execute_seconds`, and the blocked-queue depth,
    /// total stable-space size, and applied sequence gauges are kept
    /// current after every apply. Per-signature workload families
    /// (`ftlinda_ts_tuples{space,signature}`, match-probe accounting,
    /// retry counters) are flushed too; see [`Kernel::attach_obs_with`]
    /// to opt out of those.
    pub fn attach_obs(&mut self, reg: &linda_obs::Registry) {
        self.attach_obs_with(reg, true);
    }

    /// [`Kernel::attach_obs`] with explicit control over the `deep`
    /// per-signature families (`false` = scalar gauges and spans only,
    /// the `no_introspection()` mode).
    pub fn attach_obs_with(&mut self, reg: &linda_obs::Registry, deep: bool) {
        self.obs = Some(KernelObs {
            exec_hist: reg.histogram(
                "ftlinda_ags_execute_seconds",
                "Kernel execute duration per delivered record",
            ),
            blocked_depth: reg.gauge(
                "ftlinda_blocked_ags",
                "AGSs currently blocked at this replica",
            ),
            stable_size: reg.gauge(
                "ftlinda_stable_tuples",
                "Total tuples across all stable spaces at this replica",
            ),
            applied_seq: reg.gauge(
                "ftlinda_applied_seq",
                "Sequence number of the last applied record",
            ),
            applied_total: reg.counter(
                "ftlinda_applied_records_total",
                "Totally-ordered records applied by this kernel",
            ),
            spans: reg.spans_handle(),
            ckpt_hist: reg.histogram(
                "ftlinda_checkpoint_seconds",
                "Time to serialize a kernel checkpoint image",
            ),
            ckpt_bytes: reg.gauge(
                "ftlinda_checkpoint_bytes",
                "Size of the last kernel checkpoint image",
            ),
            ckpt_seq: reg.gauge(
                "ftlinda_checkpoint_seq",
                "Sequence number of the last kernel checkpoint",
            ),
            events: reg.events_handle(),
            deep,
            ts_tuples: reg.gauge_family(
                "ftlinda_ts_tuples",
                "Tuples currently stored, by stable space and signature",
            ),
            ts_tuples_hw: reg.gauge_family(
                "ftlinda_ts_tuples_high_water",
                "Most tuples ever stored at once, by stable space and signature",
            ),
            match_attempts: reg.counter_family(
                "ftlinda_match_attempts_total",
                "in/rd-shaped match operations attempted, by stable space",
            ),
            match_probes: reg.counter_family(
                "ftlinda_match_probes_total",
                "Tuples examined by match operations, by stable space",
            ),
            match_efficiency: reg.gauge_family(
                "ftlinda_match_probe_efficiency_bp",
                "Basis points of match probes that hit (0-10000), by stable space",
            ),
            miss_cache_hits: reg.counter_family(
                "ftlinda_miss_cache_hits_total",
                "Match attempts answered by the miss cache with zero probes, by stable space",
            ),
            index_builds: reg.counter_family(
                "ftlinda_index_builds_total",
                "Lazy value-index promotions performed, by stable space",
            ),
            index_demotions: reg.counter_family(
                "ftlinda_index_demotions_total",
                "Value indexes demoted for excess maintenance cost, by stable space",
            ),
            value_indexes: reg.gauge_family(
                "ftlinda_value_indexes",
                "Promoted value indexes currently live (beyond the head index), by stable space",
            ),
            retries: reg.counter_family(
                "ftlinda_blocked_retries_total",
                "Blocked-guard re-probes by guard signature and outcome (wasted/fired/failed)",
            ),
            prev_match: HashMap::new(),
            prev_builds: HashMap::new(),
            prev_demotions: HashMap::new(),
            starving_total: reg.counter(
                "ftlinda_ags_starving_total",
                "ags_starving events emitted by the starvation watchdog",
            ),
            starving_now: reg.gauge(
                "ftlinda_ags_starving",
                "Blocked AGSs currently past the starvation threshold",
            ),
            shard_tuples: reg.gauge_family(
                "ftlinda_shard_tuples",
                "Tuples stored at this replica, by owning shard",
            ),
            shard_ags: reg.counter_family(
                "ftlinda_shard_ags_total",
                "AGS executions applied, by shard order stream",
            ),
            xcommit_aborts: reg.counter_family(
                "ftlinda_xcommit_aborts_total",
                "Cross-shard commit attempts rolled back, by cause and shard",
            ),
            xlock_buffered: reg.counter_family(
                "ftlinda_xlock_buffered_total",
                "Deliveries deferred behind a cross-shard lock, by shard",
            ),
            xlock_held: reg.histogram(
                "ftlinda_xlock_held_seconds",
                "Time a shard stayed frozen per cross-shard hold",
            ),
        });
    }

    /// Metric label for a stable space: its name when known, else
    /// `ts<id>`.
    fn space_label(&self, id: TsId) -> String {
        self.names
            .iter()
            .find(|(_, v)| **v == id)
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| format!("ts{}", id.0))
    }

    /// Record a causal-trace span for the AGS `(origin, local)` at this
    /// replica. No-op when no registry is attached.
    fn span(&self, origin: HostId, local: LocalId, stage: &str, fields: Vec<(String, String)>) {
        if let Some(obs) = &self.obs {
            obs.spans.record(
                linda_obs::TraceId::new(origin.0, local),
                stage,
                self.host.0,
                fields,
            );
        }
    }

    /// Record a span on the **transaction trace** of cross-shard commit
    /// `xid` ([`linda_obs::TraceId::for_xid`]), tagged with this kernel's
    /// shard id so the assembled tree splits into per-shard lanes. No-op
    /// when no registry is attached.
    fn xspan(&self, xid: u64, stage: &str, mut fields: Vec<(String, String)>) {
        if let Some(obs) = &self.obs {
            fields.push(("xid".into(), xid.to_string()));
            fields.push(("shard".into(), self.shard.index.to_string()));
            obs.spans
                .record(linda_obs::TraceId::for_xid(xid), stage, self.host.0, fields);
        }
    }

    /// Count one cross-shard commit abort on this shard, by cause.
    /// Unconditional (not origin-gated): every participant replica's
    /// registry shows the rollback.
    fn count_xabort(&self, cause: &str) {
        if let Some(obs) = &self.obs {
            obs.xcommit_aborts
                .with(&[("cause", cause), ("shard", &self.shard.index.to_string())])
                .inc();
        }
    }

    /// Count one AGS execution against this shard's order stream.
    fn count_shard_ags(&self) {
        if let Some(obs) = &self.obs {
            obs.shard_ags
                .with(&[("shard", &self.shard.index.to_string())])
                .inc();
        }
    }

    /// Apply the next totally-ordered delivery. Must be called in
    /// delivery order.
    pub fn apply(&mut self, d: &Delivery) {
        let t0 = Instant::now();
        self.apply_inner(d);
        if let Some(obs) = &self.obs {
            obs.exec_hist.observe(t0.elapsed());
            obs.applied_total.inc();
        }
        self.flush_gauges();
    }

    /// Apply a contiguous run of deliveries (e.g. an exploded batch or a
    /// replayed snapshot) in order. Equivalent to calling [`Kernel::apply`]
    /// per delivery, but the gauge updates are amortized over the run —
    /// the caller holds the kernel lock once for the whole run.
    pub fn apply_all(&mut self, ds: &[Delivery]) {
        for d in ds {
            let t0 = Instant::now();
            self.apply_inner(d);
            if let Some(obs) = &self.obs {
                obs.exec_hist.observe(t0.elapsed());
                obs.applied_total.inc();
            }
        }
        self.flush_gauges();
    }

    fn flush_gauges(&mut self) {
        let Some(obs) = &mut self.obs else { return };
        obs.blocked_depth.set(self.blocked.len() as i64);
        let stable_total = self.stables.values().map(Store::len).sum::<usize>() as i64;
        obs.stable_size.set(stable_total);
        // The per-shard census child: this kernel's whole stable-tuple
        // total under its shard label (every bucket a shard's stores
        // hold is a bucket it owns).
        obs.shard_tuples
            .with(&[("shard", &self.shard.index.to_string())])
            .set(stable_total);
        obs.applied_seq.set(self.applied as i64);
        if !obs.deep {
            return;
        }
        // Occupancy gauges are re-stated from scratch each flush (zeroing
        // first), so label sets that vanished — e.g. after a checkpoint
        // restore rebuilt the stores — read 0 rather than going stale.
        obs.ts_tuples.zero_all();
        obs.ts_tuples_hw.zero_all();
        for (id, store) in &self.stables {
            let space = self
                .names
                .iter()
                .find(|(_, v)| **v == *id)
                .map(|(n, _)| n.clone())
                .unwrap_or_else(|| format!("ts{}", id.0));
            let stats = store.match_stats();
            let prev = obs.prev_match.entry(*id).or_default();
            let delta = stats.since(prev);
            *prev = stats;
            if delta.attempts > 0 {
                obs.match_attempts
                    .with(&[("space", &space)])
                    .add(delta.attempts);
                obs.match_probes
                    .with(&[("space", &space)])
                    .add(delta.probes);
                obs.miss_cache_hits
                    .with(&[("space", &space)])
                    .add(delta.cache_hits);
            }
            obs.match_efficiency
                .with(&[("space", &space)])
                .set(stats.efficiency_bp());
            let report = store.index_report();
            let prev_builds = obs.prev_builds.entry(*id).or_default();
            let build_delta = report.index_builds.saturating_sub(*prev_builds);
            *prev_builds = report.index_builds;
            if build_delta > 0 {
                obs.index_builds.with(&[("space", &space)]).add(build_delta);
            }
            let prev_demotions = obs.prev_demotions.entry(*id).or_default();
            let demote_delta = report.index_demotions.saturating_sub(*prev_demotions);
            *prev_demotions = report.index_demotions;
            if demote_delta > 0 {
                obs.index_demotions
                    .with(&[("space", &space)])
                    .add(demote_delta);
            }
            obs.value_indexes
                .with(&[("space", &space)])
                .set(report.value_indexes as i64);
            for occ in store.signature_census() {
                let sig = occ.signature.to_string();
                obs.ts_tuples
                    .with(&[("space", &space), ("signature", &sig)])
                    .set(occ.count as i64);
                obs.ts_tuples_hw
                    .with(&[("space", &space), ("signature", &sig)])
                    .set(occ.high_water as i64);
            }
        }
    }

    fn apply_inner(&mut self, d: &Delivery) {
        if let Delivery::Restore { image } = d {
            // Handled before the `applied` bump: a refused image must
            // leave the kernel exactly where it was.
            match self.restore(image) {
                Ok(()) => self.note(KernelNote::Restored { seq: image.seq }),
                Err(error) => self.note(KernelNote::RestoreFailed {
                    seq: image.seq,
                    error,
                }),
            }
            return;
        }
        if let Delivery::Evicted { seq } = d {
            // Also before the `applied` bump: eviction is a protocol
            // event, not part of the ordered stream. The kernel's state
            // is still a valid prefix; only in-flight waiters die.
            self.note(KernelNote::Evicted { seq: *seq });
            return;
        }
        if self.hold.is_some() && self.hold_intercept(d) {
            return;
        }
        self.applied = d.seq();
        match d {
            Delivery::App {
                seq,
                origin,
                local,
                payload,
            } => match decode_request(payload) {
                Ok(Request::CreateTs { name }) => self.apply_create(*seq, *origin, *local, name),
                Ok(Request::Ags(ags)) => self.apply_ags(*seq, *origin, *local, ags),
                Ok(Request::RegisterTs { id, name }) => {
                    self.apply_register(*seq, *origin, *local, id, name)
                }
                Ok(Request::XLock { xid, keys }) => {
                    self.apply_xlock(*seq, *origin, *local, xid, keys)
                }
                Ok(Request::XExec { xid, ags, foreign }) => {
                    self.apply_xexec(*seq, *origin, *local, xid, ags, foreign)
                }
                Ok(Request::XRelease { xid, buckets }) => {
                    self.apply_xrelease(*seq, *origin, *local, xid, buckets)
                }
                Err(_) => {
                    self.span(
                        *origin,
                        *local,
                        "apply",
                        vec![
                            ("seq".into(), seq.to_string()),
                            ("outcome".into(), "malformed".into()),
                        ],
                    );
                    self.note(KernelNote::Malformed {
                        seq: *seq,
                        origin: *origin,
                    });
                }
            },
            Delivery::Fail { seq, host } => {
                // Deposit the distinguished failure tuple, then retry
                // blocked guards (a monitor may be blocked on exactly
                // this tuple). Under sharding only the shard that owns a
                // space's failure-signature bucket deposits there, so
                // the union across shards still shows exactly one tuple
                // per space.
                let t = tuple!(FAILURE_TUPLE_HEAD, host.0 as i64);
                let fail_sig = t.signature().stable_hash();
                for (id, store) in self.stables.iter_mut() {
                    if self.shard.owns(*id, fail_sig) {
                        store.insert(t.clone());
                    }
                }
                self.note(KernelNote::HostFailed {
                    seq: *seq,
                    host: *host,
                });
                // View changes touch every space at once — fall back to
                // the full-queue pass rather than seeding per-signature.
                self.retry_blocked_full();
            }
            Delivery::Join { seq, host } => {
                self.note(KernelNote::HostJoined {
                    seq: *seq,
                    host: *host,
                });
            }
            Delivery::Checkpoint { .. } => {
                // The boundary is ordered like any record, so every
                // replica snapshots the identical state here. The image
                // is parked for the runtime to hand to the ordering
                // layer, which truncates its log behind it.
                let t0 = Instant::now();
                let image = self.checkpoint();
                if let Some(obs) = &self.obs {
                    obs.ckpt_hist.observe(t0.elapsed());
                    obs.ckpt_bytes.set(image.bytes.len() as i64);
                    obs.ckpt_seq.set(image.seq as i64);
                }
                self.pending_checkpoint = Some(image);
            }
            Delivery::Restore { .. } | Delivery::Evicted { .. } => unreachable!("handled above"),
        }
    }

    fn apply_create(&mut self, seq: u64, origin: HostId, local: LocalId, name: String) {
        let id = match self.names.get(&name) {
            Some(&id) => id,
            None => {
                let id = TsId(self.next_ts);
                self.next_ts += 1;
                self.names.insert(name.clone(), id);
                self.stables.insert(id, self.new_store());
                id
            }
        };
        self.span(
            origin,
            local,
            "apply",
            vec![
                ("seq".into(), seq.to_string()),
                ("outcome".into(), "create".into()),
            ],
        );
        if origin == self.host {
            self.note(KernelNote::TsCreated {
                seq,
                local,
                id,
                name,
            });
        }
    }

    /// Install a space id assigned by shard 0 (`RegisterTs`). Idempotent.
    fn apply_register(&mut self, seq: u64, origin: HostId, local: LocalId, id: u32, name: String) {
        let tsid = TsId(id);
        if !self.stables.contains_key(&tsid) {
            self.stables.insert(tsid, self.new_store());
        }
        self.names.entry(name.clone()).or_insert(tsid);
        self.next_ts = self.next_ts.max(id + 1);
        self.span(
            origin,
            local,
            "apply",
            vec![
                ("seq".into(), seq.to_string()),
                ("outcome".into(), "register".into()),
            ],
        );
        if origin == self.host {
            self.note(KernelNote::TsCreated {
                seq,
                local,
                id: tsid,
                name,
            });
        }
    }

    /// While a cross-shard hold freezes this shard, route the next
    /// delivery. Returns `true` if it was consumed here (buffered,
    /// dropped, or handled by the abort path); `false` lets the normal
    /// apply path run (only the live transaction's own `XRelease`).
    fn hold_intercept(&mut self, d: &Delivery) -> bool {
        let hold = self.hold.as_ref().expect("hold present");
        match d {
            // The live transaction's own legs proceed normally: its
            // `XExec` (the origin locks every participating shard, the
            // home one included, before staging) and its `XRelease`.
            Delivery::App { payload, .. } => match decode_request(payload) {
                Ok(Request::XRelease { xid, .. }) | Ok(Request::XExec { xid, .. })
                    if xid == hold.xid =>
                {
                    return false;
                }
                _ => {}
            },
            // The origin failing mid-protocol aborts the hold: the
            // checked-out buckets are reinstated exactly as they left,
            // the deferred deliveries replay, then the failure itself
            // applies. (If the home shard had already fired the exec,
            // cross-shard atomicity is broken — see DESIGN.md §13 for
            // this documented window.)
            Delivery::Fail { host, .. } if *host == hold.origin => {
                let h = self.hold.take().expect("hold present");
                let held = h.since.elapsed();
                self.count_xabort("lock_expiry");
                self.xspan(
                    h.xid,
                    "xabort",
                    vec![
                        ("cause".into(), "lock_expiry".into()),
                        ("buffered".into(), h.buffer.len().to_string()),
                        ("held_us".into(), held.as_micros().to_string()),
                    ],
                );
                if let Some(obs) = &self.obs {
                    obs.xlock_held.observe(held);
                }
                let keys = self.reinstall_buckets(h.checked_out);
                self.retry_blocked_matching(keys);
                self.replay_buffer(h.xid, h.buffer);
                self.apply_inner(d);
                return true;
            }
            // Checkpoint boundaries are DROPPED, not deferred: an image
            // captured now would silently miss the checked-out buckets.
            // Every replica of the shard drops the same markers; the log
            // is simply retained a little longer.
            Delivery::Checkpoint { .. } => return true,
            _ => {}
        }
        if let Some(obs) = &self.obs {
            obs.xlock_buffered
                .with(&[("shard", &self.shard.index.to_string())])
                .inc();
        }
        self.hold
            .as_mut()
            .expect("hold present")
            .buffer
            .push((d.clone(), Instant::now()));
        true
    }

    /// Replay deliveries deferred behind a hold, stamping a `lock_wait`
    /// span (queued time, shard, blocking xid) on each buffered AGS's
    /// own trace before it applies.
    fn replay_buffer(&mut self, xid: u64, buffer: Vec<(Delivery, Instant)>) {
        for (bd, queued_at) in &buffer {
            if let Delivery::App {
                seq, origin, local, ..
            } = bd
            {
                self.span(
                    *origin,
                    *local,
                    "lock_wait",
                    vec![
                        ("seq".into(), seq.to_string()),
                        (
                            "queued_us".into(),
                            queued_at.elapsed().as_micros().to_string(),
                        ),
                        ("shard".into(), self.shard.index.to_string()),
                        ("xid".into(), xid.to_string()),
                    ],
                );
            }
            self.apply_inner(bd);
        }
    }

    /// Reinstall signature buckets (oldest-first per bucket) and return
    /// their keys for seeding blocked-guard retries.
    fn reinstall_buckets(&mut self, buckets: Vec<SigBucket>) -> Vec<(TsId, u64)> {
        let mut keys = Vec::with_capacity(buckets.len());
        for (ts, sig, tuples) in buckets {
            let id = TsId(ts);
            keys.push((id, sig));
            if let Some(store) = self.stables.get_mut(&id) {
                for t in tuples {
                    store.insert(t);
                }
            }
        }
        keys
    }

    /// Cross-shard leg 1 on a participant shard: check the listed
    /// buckets out of the stores and freeze until the release.
    fn apply_xlock(
        &mut self,
        seq: u64,
        origin: HostId,
        local: LocalId,
        xid: u64,
        keys: Vec<(u32, u64)>,
    ) {
        let mut buckets: Vec<SigBucket> = Vec::with_capacity(keys.len());
        for (ts, sig) in keys {
            let tuples = self
                .stables
                .get_mut(&TsId(ts))
                .map(|s| s.checkout_signature(sig))
                .unwrap_or_default();
            buckets.push((ts, sig, tuples));
        }
        self.hold = Some(Hold {
            xid,
            origin,
            checked_out: buckets.clone(),
            buffer: Vec::new(),
            since: Instant::now(),
        });
        let frozen_tuples: usize = buckets.iter().map(|(_, _, t)| t.len()).sum();
        self.xspan(
            xid,
            "xlock",
            vec![
                ("seq".into(), seq.to_string()),
                ("buckets".into(), buckets.len().to_string()),
                ("tuples".into(), frozen_tuples.to_string()),
            ],
        );
        self.span(
            origin,
            local,
            "apply",
            vec![
                ("seq".into(), seq.to_string()),
                ("outcome".into(), "xlock".into()),
                ("xid".into(), xid.to_string()),
            ],
        );
        if origin == self.host {
            self.note(KernelNote::XCheckedOut {
                seq,
                local,
                xid,
                buckets,
            });
        }
    }

    /// Cross-shard leg 2 on the home shard: install the foreign buckets,
    /// execute, extract the foreign buckets back out as writebacks.
    fn apply_xexec(
        &mut self,
        seq: u64,
        origin: HostId,
        local: LocalId,
        xid: u64,
        ags: Ags,
        foreign: Vec<SigBucket>,
    ) {
        let outcome_label: &str;
        // All spaces must exist here (the runtime registers every space
        // on every shard before use); refuse wholesale otherwise so no
        // foreign tuple can be stranded in a half-installed state.
        let (result, writebacks) = if foreign
            .iter()
            .any(|(ts, _, _)| !self.stables.contains_key(&TsId(*ts)))
        {
            let missing = foreign
                .iter()
                .find(|(ts, _, _)| !self.stables.contains_key(&TsId(*ts)))
                .map(|(ts, _, _)| TsId(*ts))
                .expect("checked");
            outcome_label = "xexec-failed";
            (XStageResult::Failed(ExecError::UnknownTs(missing)), foreign)
        } else {
            let foreign_keys: Vec<(TsId, u64)> = foreign
                .iter()
                .map(|(ts, sig, _)| (TsId(*ts), *sig))
                .collect();
            for (ts, _, tuples) in foreign {
                let store = self.stables.get_mut(&TsId(ts)).expect("checked");
                for t in tuples {
                    store.insert(t);
                }
            }
            let exec = try_execute(&mut self.stables, &ags, origin.0, seq);
            let writebacks: Vec<SigBucket> = foreign_keys
                .iter()
                .map(|(ts, sig)| {
                    let tuples = self
                        .stables
                        .get_mut(ts)
                        .map(|s| s.checkout_signature(*sig))
                        .unwrap_or_default();
                    (ts.0, *sig, tuples)
                })
                .collect();
            let result = match exec {
                TryOutcome::Fired {
                    outcome,
                    scratch_outs,
                    deposited,
                } => {
                    outcome_label = "xexec-fired";
                    self.commit_scratch(origin, scratch_outs);
                    // Only deposits into keys this shard owns can wake
                    // local blocked guards; foreign-key deposits ride
                    // home inside the writebacks and wake guards on
                    // their own shard at release time.
                    let owned: Vec<(TsId, u64)> = deposited
                        .into_iter()
                        .filter(|k| !foreign_keys.contains(k))
                        .collect();
                    self.retry_blocked_matching(owned);
                    XStageResult::Fired(outcome)
                }
                TryOutcome::Blocked => {
                    outcome_label = "xexec-blocked";
                    XStageResult::Blocked
                }
                TryOutcome::Failed(e) => {
                    outcome_label = "xexec-failed";
                    XStageResult::Failed(e)
                }
            };
            (result, writebacks)
        };
        self.count_shard_ags();
        match &result {
            XStageResult::Blocked => self.count_xabort("blocked_retry"),
            XStageResult::Failed(_) => self.count_xabort("body_failure"),
            XStageResult::Fired(_) => {}
        }
        self.xspan(
            xid,
            "xexec",
            vec![
                ("seq".into(), seq.to_string()),
                ("outcome".into(), outcome_label.into()),
            ],
        );
        self.span(
            origin,
            local,
            "apply",
            vec![
                ("seq".into(), seq.to_string()),
                ("outcome".into(), outcome_label.into()),
                ("xid".into(), xid.to_string()),
            ],
        );
        if origin == self.host {
            self.note(KernelNote::XStaged {
                seq,
                local,
                xid,
                result,
                writebacks,
            });
        }
    }

    /// Cross-shard leg 3 on a participant shard: reinstall the buckets,
    /// unfreeze, replay deferred deliveries.
    fn apply_xrelease(
        &mut self,
        seq: u64,
        origin: HostId,
        local: LocalId,
        xid: u64,
        buckets: Vec<SigBucket>,
    ) {
        let matches = self.hold.as_ref().is_some_and(|h| h.xid == xid);
        if matches {
            let h = self.hold.take().expect("hold present");
            let held = h.since.elapsed();
            if let Some(obs) = &self.obs {
                obs.xlock_held.observe(held);
            }
            self.xspan(
                xid,
                "xrelease",
                vec![
                    ("seq".into(), seq.to_string()),
                    ("buffered".into(), h.buffer.len().to_string()),
                    ("held_us".into(), held.as_micros().to_string()),
                ],
            );
            let keys = self.reinstall_buckets(buckets);
            self.retry_blocked_matching(keys);
            self.replay_buffer(h.xid, h.buffer);
            // Replayed deliveries carry lower sequence numbers; the
            // release itself is the newest applied record.
            self.applied = self.applied.max(seq);
        }
        // Without a matching hold (protocol misuse or a duplicate) the
        // buckets are NOT reinstalled — doing so would duplicate tuples
        // identically at every replica, which is worse than dropping.
        self.span(
            origin,
            local,
            "apply",
            vec![
                ("seq".into(), seq.to_string()),
                ("outcome".into(), "xrelease".into()),
                ("xid".into(), xid.to_string()),
            ],
        );
        if origin == self.host {
            self.note(KernelNote::XReleased { seq, local, xid });
        }
    }

    fn apply_ags(&mut self, seq: u64, origin: HostId, local: LocalId, ags: Ags) {
        self.count_shard_ags();
        match try_execute(&mut self.stables, &ags, origin.0, seq) {
            TryOutcome::Fired {
                outcome,
                scratch_outs,
                deposited,
            } => {
                self.span(
                    origin,
                    local,
                    "apply",
                    vec![
                        ("seq".into(), seq.to_string()),
                        ("outcome".into(), "fired".into()),
                    ],
                );
                self.commit_scratch(origin, scratch_outs);
                if origin == self.host {
                    self.note(KernelNote::Completed {
                        seq,
                        local,
                        result: Ok(outcome),
                    });
                }
                self.retry_blocked_matching(deposited);
            }
            TryOutcome::Blocked => {
                self.span(
                    origin,
                    local,
                    "apply",
                    vec![
                        ("seq".into(), seq.to_string()),
                        ("outcome".into(), "blocked".into()),
                    ],
                );
                self.span(
                    origin,
                    local,
                    "block",
                    vec![("seq".into(), seq.to_string())],
                );
                let keys = guard_keys(&ags, origin.0, seq);
                let labels = guard_labels(&ags, origin.0, seq);
                let id = self.next_blocked_id;
                self.next_blocked_id += 1;
                for k in &keys {
                    self.guard_index.entry(*k).or_default().insert(id);
                }
                self.blocked.insert(
                    id,
                    BlockedAgs {
                        seq,
                        origin,
                        local,
                        ags,
                        keys,
                        since: Instant::now(),
                        labels,
                        starve_reported: 0,
                    },
                );
            }
            TryOutcome::Failed(e) => {
                self.span(
                    origin,
                    local,
                    "apply",
                    vec![
                        ("seq".into(), seq.to_string()),
                        ("outcome".into(), "failed".into()),
                    ],
                );
                if origin == self.host {
                    self.note(KernelNote::Completed {
                        seq,
                        local,
                        result: Err(e),
                    });
                }
            }
        }
    }

    /// Record a "wake" span: the blocked AGS `b` left the queue because a
    /// later record (the one at `self.applied`) made its guard decidable.
    fn wake_span(&self, b: &BlockedAgs, outcome: &str) {
        self.span(
            b.origin,
            b.local,
            "wake",
            vec![
                ("seq".into(), b.seq.to_string()),
                ("at_seq".into(), self.applied.to_string()),
                ("outcome".into(), outcome.into()),
            ],
        );
    }

    /// Count one re-probe of a blocked guard in
    /// `ftlinda_blocked_retries_total{signature,outcome}`.
    fn count_retry(&self, labels: &str, outcome: &str) {
        if let Some(obs) = &self.obs {
            if obs.deep {
                obs.retries
                    .with(&[("signature", labels), ("outcome", outcome)])
                    .inc();
            }
        }
    }

    /// Remove a blocked AGS from the queue and the guard index.
    fn unblock(&mut self, id: u64) -> BlockedAgs {
        let b = self.blocked.remove(&id).expect("blocked id present");
        for k in &b.keys {
            if let Some(set) = self.guard_index.get_mut(k) {
                set.remove(&id);
                if set.is_empty() {
                    self.guard_index.remove(k);
                }
            }
        }
        b
    }

    /// Retry only the blocked AGSs whose guard signature matches one of
    /// the just-deposited tuples, oldest first, chasing cascades through
    /// the deposits each firing produces. An `IndexedStore` matches a
    /// pattern only against equal-signature tuples, so any AGS outside
    /// these index buckets provably cannot have become satisfiable —
    /// every replica prunes identically and determinism is preserved.
    fn retry_blocked_matching(&mut self, mut seeds: Vec<(TsId, u64)>) {
        while !seeds.is_empty() {
            let mut candidates: BTreeSet<u64> = BTreeSet::new();
            for key in &seeds {
                if let Some(ids) = self.guard_index.get(key) {
                    candidates.extend(ids.iter().copied());
                }
            }
            seeds.clear();
            for id in candidates {
                if !self.blocked.contains_key(&id) {
                    continue;
                }
                let candidate = &self.blocked[&id];
                match try_execute(
                    &mut self.stables,
                    &candidate.ags,
                    candidate.origin.0,
                    candidate.seq,
                ) {
                    TryOutcome::Blocked => {
                        self.count_retry(&self.blocked[&id].labels, "wasted");
                    }
                    TryOutcome::Fired {
                        outcome,
                        scratch_outs,
                        deposited,
                    } => {
                        let b = self.unblock(id);
                        self.count_retry(&b.labels, "fired");
                        self.wake_span(&b, "fired");
                        self.commit_scratch(b.origin, scratch_outs);
                        if b.origin == self.host {
                            self.note(KernelNote::Completed {
                                seq: b.seq,
                                local: b.local,
                                result: Ok(outcome),
                            });
                        }
                        seeds.extend(deposited);
                    }
                    TryOutcome::Failed(e) => {
                        let b = self.unblock(id);
                        self.count_retry(&b.labels, "failed");
                        self.wake_span(&b, "failed");
                        if b.origin == self.host {
                            self.note(KernelNote::Completed {
                                seq: b.seq,
                                local: b.local,
                                result: Err(e),
                            });
                        }
                    }
                }
            }
        }
    }

    /// Retry every blocked AGS in arrival order until a full pass fires
    /// nothing — the fallback for view changes, which deposit failure
    /// tuples into all spaces at once. Every replica runs the identical
    /// loop, so blocked-queue evolution is deterministic.
    fn retry_blocked_full(&mut self) {
        loop {
            let mut fired_any = false;
            let ids: Vec<u64> = self.blocked.keys().copied().collect();
            for id in ids {
                if !self.blocked.contains_key(&id) {
                    continue;
                }
                let candidate = &self.blocked[&id];
                match try_execute(
                    &mut self.stables,
                    &candidate.ags,
                    candidate.origin.0,
                    candidate.seq,
                ) {
                    TryOutcome::Blocked => {
                        self.count_retry(&self.blocked[&id].labels, "wasted");
                    }
                    TryOutcome::Fired {
                        outcome,
                        scratch_outs,
                        ..
                    } => {
                        let b = self.unblock(id);
                        self.count_retry(&b.labels, "fired");
                        self.wake_span(&b, "fired");
                        self.commit_scratch(b.origin, scratch_outs);
                        if b.origin == self.host {
                            self.note(KernelNote::Completed {
                                seq: b.seq,
                                local: b.local,
                                result: Ok(outcome),
                            });
                        }
                        fired_any = true;
                    }
                    TryOutcome::Failed(e) => {
                        let b = self.unblock(id);
                        self.count_retry(&b.labels, "failed");
                        self.wake_span(&b, "failed");
                        if b.origin == self.host {
                            self.note(KernelNote::Completed {
                                seq: b.seq,
                                local: b.local,
                                result: Err(e),
                            });
                        }
                    }
                }
            }
            if !fired_any {
                return;
            }
        }
    }

    fn commit_scratch(&mut self, origin: HostId, outs: Vec<(ScratchId, Tuple)>) {
        if origin != self.host {
            return;
        }
        for (sid, t) in outs {
            if let Some(space) = self.scratches.get(&sid) {
                space.out(t);
            }
            // An unregistered scratch id is an owner-side programming
            // error; the stable-space effects are already committed, so
            // the write is dropped (documented in DESIGN.md).
        }
    }

    fn note(&self, n: KernelNote) {
        let _ = self.notes.send(n);
    }

    // ----- introspection -------------------------------------------------

    /// Fault-injection hook: deposit a tuple into a stable space *locally
    /// only*, bypassing the total order. This deliberately diverges this
    /// replica from its peers; it exists so the digest-divergence
    /// detector can be exercised under test. Returns `false` if the
    /// space does not exist. Never call this from application code.
    #[doc(hidden)]
    pub fn fault_inject(&mut self, ts: TsId, t: Tuple) -> bool {
        match self.stables.get_mut(&ts) {
            Some(s) => {
                s.insert(t);
                true
            }
            None => false,
        }
    }

    /// This kernel's host id.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Sequence number of the last applied delivery.
    pub fn applied_seq(&self) -> u64 {
        self.applied
    }

    /// Number of AGSs currently blocked.
    pub fn blocked_len(&self) -> usize {
        self.blocked.len()
    }

    /// Resolve a stable space by name, if created.
    pub fn lookup(&self, name: &str) -> Option<TsId> {
        self.names.get(name).copied()
    }

    /// Snapshot the contents of a stable space (insertion order).
    pub fn snapshot(&self, id: TsId) -> Option<Vec<Tuple>> {
        self.stables.get(&id).map(|s| s.snapshot())
    }

    /// Tuples in a stable space.
    pub fn stable_len(&self, id: TsId) -> Option<usize> {
        self.stables.get(&id).map(Store::len)
    }

    /// Tuples currently stored under a blocked AGS's guard keys: tuples
    /// of the right signature that still don't satisfy the guard. Keys
    /// owned by this shard read the local store; keys owned elsewhere
    /// are resolved through `peer(owner_shard, ts, sig)` — under K>1 the
    /// local store legitimately holds nothing for a foreign bucket, and
    /// counting it as zero would misreport the miss.
    fn nearest_miss_with(
        stables: &BTreeMap<TsId, IndexedStore>,
        shard: ShardSpec,
        keys: &[(TsId, u64)],
        peer: &dyn Fn(u32, TsId, u64) -> usize,
    ) -> usize {
        keys.iter()
            .map(|(ts, sig)| {
                let owner = shard_of(*ts, *sig, shard.count);
                if owner == shard.index {
                    stables.get(ts).map_or(0, |s| s.signature_len(*sig))
                } else {
                    peer(owner, *ts, *sig)
                }
            })
            .sum()
    }

    /// Tuples stored under one `(space, signature)` bucket at this
    /// replica. The runtime watchdog uses this to answer nearest-miss
    /// queries for buckets this shard owns on behalf of other lanes.
    pub fn signature_len(&self, ts: TsId, sig: u64) -> usize {
        self.stables.get(&ts).map_or(0, |s| s.signature_len(sig))
    }

    /// Guard keys of blocked AGSs that some *other* shard owns, as
    /// `(owner_shard, ts, sig)`, deduplicated. The watchdog resolves
    /// these against the owning lanes before sweeping so nearest-miss
    /// counts are attributed to the shard that actually stores the
    /// bucket. (Under the current router cross-shard AGSs are never
    /// queued, so this is normally empty — it guards the invariant
    /// rather than assuming it.)
    pub fn blocked_foreign_keys(&self) -> Vec<(u32, TsId, u64)> {
        let mut out: Vec<(u32, TsId, u64)> = self
            .blocked
            .values()
            .flat_map(|b| b.keys.iter())
            .filter_map(|(ts, sig)| {
                let owner = shard_of(*ts, *sig, self.shard.count);
                (owner != self.shard.index).then_some((owner, *ts, *sig))
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Starvation watchdog pass: report every blocked AGS whose age has
    /// crossed a new multiple of `threshold` since it was last reported
    /// — exactly one report per crossing, however often the sweep runs.
    /// Each report is also emitted as an `ags_starving` event (fields:
    /// seq, origin, guards, age_ms, nearest_miss, crossings) when a
    /// registry is attached, and `ftlinda_ags_starving` tracks how many
    /// blocked AGSs are currently past the threshold.
    ///
    /// Wall-clock only — never part of the replicated state, so replicas
    /// may report at different times without diverging.
    pub fn starvation_sweep(&mut self, threshold: Duration) -> Vec<StarvationReport> {
        self.starvation_sweep_with(threshold, &|_, _, _| 0)
    }

    /// [`Kernel::starvation_sweep`] with foreign guard-key occupancy
    /// resolved through `peer(owner_shard, ts, sig)`. The runtime's
    /// watchdog collects [`Kernel::blocked_foreign_keys`] first, answers
    /// them against the owning lanes' [`Kernel::signature_len`], and
    /// passes the resolved map here — so no two kernel locks are ever
    /// held at once.
    pub fn starvation_sweep_with(
        &mut self,
        threshold: Duration,
        peer: &dyn Fn(u32, TsId, u64) -> usize,
    ) -> Vec<StarvationReport> {
        if threshold.is_zero() {
            return Vec::new();
        }
        let now = Instant::now();
        let mut out = Vec::new();
        let stables = &self.stables;
        let shard = self.shard;
        for b in self.blocked.values_mut() {
            let age = now.saturating_duration_since(b.since);
            let crossings = (age.as_nanos() / threshold.as_nanos()) as u32;
            if crossings > b.starve_reported {
                b.starve_reported = crossings;
                out.push(StarvationReport {
                    seq: b.seq,
                    origin: b.origin,
                    local: b.local,
                    age,
                    guards: b.labels.clone(),
                    nearest_miss: Self::nearest_miss_with(stables, shard, &b.keys, peer),
                    crossings,
                    shard: shard.index,
                });
            }
        }
        if let Some(obs) = &self.obs {
            for r in &out {
                obs.events.emit(linda_obs::Event::new(
                    "ags_starving",
                    vec![
                        ("seq".into(), r.seq.to_string()),
                        ("origin".into(), r.origin.0.to_string()),
                        ("local".into(), r.local.to_string()),
                        ("guards".into(), r.guards.clone()),
                        ("age_ms".into(), r.age.as_millis().to_string()),
                        ("nearest_miss".into(), r.nearest_miss.to_string()),
                        ("crossings".into(), r.crossings.to_string()),
                        ("shard".into(), r.shard.to_string()),
                    ],
                ));
                obs.starving_total.inc();
            }
            obs.starving_now.set(
                self.blocked
                    .values()
                    .filter(|b| b.starve_reported > 0)
                    .count() as i64,
            );
        }
        out
    }

    /// A point-in-time introspection snapshot: per-space signature
    /// census, matching-cost totals, and the blocked-AGS table with
    /// ages. Read-only (pure observability; the replicated state is
    /// untouched).
    pub fn introspect(&self) -> IntrospectReport {
        let now = Instant::now();
        IntrospectReport {
            host: self.host,
            applied: self.applied,
            spaces: self
                .stables
                .iter()
                .map(|(id, store)| SpaceReport {
                    id: *id,
                    name: self.space_label(*id),
                    tuples: store.len(),
                    signatures: store.signature_census(),
                    match_stats: store.match_stats(),
                    index: store.index_report(),
                })
                .collect(),
            blocked: self
                .blocked
                .values()
                .map(|b| BlockedReport {
                    seq: b.seq,
                    origin: b.origin,
                    local: b.local,
                    age: now.saturating_duration_since(b.since),
                    guards: b.labels.clone(),
                    nearest_miss: Self::nearest_miss_with(
                        &self.stables,
                        self.shard,
                        &b.keys,
                        &|_, _, _| 0,
                    ),
                    starving: b.starve_reported > 0,
                })
                .collect(),
        }
    }

    /// A deterministic digest of all stable-space contents and the
    /// blocked queue — equal digests ⇒ converged replicas. Used heavily
    /// by the replica-consistency tests.
    pub fn digest(&self) -> u64 {
        Self::digest_of(&self.stables, &self.blocked)
    }

    /// Signature-bucket-scoped digest of one stable space: XOR of
    /// per-bucket hashes, each hashing the signature key, the bucket's
    /// tuples oldest-first, and the bucket size. Unlike [`Kernel::digest`]
    /// this is insensitive to the *global* interleaving of insertions
    /// across signatures — which cross-shard checkout/reinstall permutes
    /// — while still pinning the withdraw order within every bucket. The
    /// XOR over all shards of a sharded deployment therefore equals the
    /// unsharded kernel's value (buckets are disjoint across shards),
    /// which is exactly the equivalence the sharded-vs-unsharded
    /// proptests check. An absent or empty space digests to 0.
    pub fn canonical_space_digest(&self, id: TsId) -> u64 {
        let Some(store) = self.stables.get(&id) else {
            return 0;
        };
        let mut buckets: BTreeMap<u64, (linda_tuple::StableHasher, u64)> = BTreeMap::new();
        for t in store.snapshot() {
            let sig = t.signature().stable_hash();
            let entry = buckets.entry(sig).or_insert_with(|| {
                let mut h = linda_tuple::StableHasher::default();
                h.write_u64(sig);
                (h, 0)
            });
            t.hash(&mut entry.0);
            entry.1 += 1;
        }
        let mut acc = 0u64;
        for (mut h, count) in buckets.into_values() {
            h.write_u64(0x5eed ^ count);
            acc ^= h.finish();
        }
        acc
    }

    /// The digest computation proper, over explicit state. Restore uses
    /// this to verify a rebuilt candidate *before* committing it.
    fn digest_of(
        stables: &BTreeMap<TsId, IndexedStore>,
        blocked: &BTreeMap<u64, BlockedAgs>,
    ) -> u64 {
        let mut h = linda_tuple::StableHasher::default();
        for (id, store) in stables {
            h.write_u64(id.0 as u64 + 0x9e37);
            for t in store.snapshot() {
                t.hash(&mut h);
            }
        }
        h.write_u64(0xb10c * (blocked.len() as u64 + 1));
        for b in blocked.values() {
            h.write_u64(b.seq);
        }
        h.finish()
    }

    // ----- checkpoint / restore ------------------------------------------

    /// Serialize the replicated state — every stable space, the blocked
    /// queue, the name table, and the applied sequence number — into a
    /// self-verifying image. Scratch spaces are owner-local and excluded.
    pub fn checkpoint(&self) -> KernelCheckpoint {
        let digest = self.digest();
        let img = KernelImage {
            applied: self.applied,
            digest,
            next_ts: self.next_ts,
            names: self.names.iter().map(|(n, id)| (n.clone(), id.0)).collect(),
            spaces: self
                .stables
                .iter()
                .map(|(id, s)| (id.0, s.snapshot()))
                .collect(),
            blocked: self
                .blocked
                .values()
                .map(|b| BlockedImage {
                    seq: b.seq,
                    origin: b.origin.0,
                    local: b.local,
                    ags: b.ags.clone(),
                })
                .collect(),
        };
        KernelCheckpoint {
            seq: self.applied,
            digest,
            bytes: encode_image(&img),
        }
    }

    /// Replace the replicated state with a checkpoint image. The rebuilt
    /// state is digest-verified against the digest recorded at capture
    /// time before anything is committed: on any error the kernel is
    /// untouched. Blocked-queue ids are renumbered densely; arrival
    /// order (and therefore wakeup fairness and the digest) is preserved.
    pub fn restore(&mut self, image: &KernelCheckpoint) -> Result<(), CheckpointError> {
        let img = decode_image(&image.bytes)?;
        // The wrapper's digest must agree with the one sealed inside the
        // image bytes — a mismatch means the envelope and payload were
        // separated or tampered with in transit.
        if image.digest != img.digest {
            return Err(CheckpointError::DigestMismatch {
                expected: image.digest,
                actual: img.digest,
            });
        }
        let mut stables = BTreeMap::new();
        for (id, tuples) in img.spaces {
            // Fresh stores: indexes and the miss cache are derived state
            // and deliberately absent from the image; they rebuild from
            // live traffic.
            let mut store = self.new_store();
            for t in tuples {
                store.insert(t);
            }
            stables.insert(TsId(id), store);
        }
        let mut blocked = BTreeMap::new();
        let mut guard_index: HashMap<(TsId, u64), BTreeSet<u64>> = HashMap::new();
        for (id, b) in img.blocked.into_iter().enumerate() {
            let keys = guard_keys(&b.ags, b.origin, b.seq);
            let labels = guard_labels(&b.ags, b.origin, b.seq);
            for k in &keys {
                guard_index.entry(*k).or_default().insert(id as u64);
            }
            blocked.insert(
                id as u64,
                BlockedAgs {
                    seq: b.seq,
                    origin: HostId(b.origin),
                    local: b.local,
                    ags: b.ags,
                    keys,
                    // Block times are wall-clock and host-local, so a
                    // checkpoint cannot carry them: restored guards are
                    // re-stamped, and their starvation ages restart.
                    since: Instant::now(),
                    labels,
                    starve_reported: 0,
                },
            );
        }
        let actual = Self::digest_of(&stables, &blocked);
        if actual != img.digest {
            return Err(CheckpointError::DigestMismatch {
                expected: img.digest,
                actual,
            });
        }
        self.stables = stables;
        self.blocked = blocked;
        self.guard_index = guard_index;
        self.next_blocked_id = self.blocked.len() as u64;
        self.names = img.names.into_iter().map(|(n, id)| (n, TsId(id))).collect();
        self.next_ts = img.next_ts;
        self.applied = img.applied;
        self.pending_checkpoint = None;
        // A restore supersedes any in-flight cross-shard hold: the image
        // predates the freeze (checkpoint boundaries are dropped while
        // frozen) and replaying the log from it re-applies the lock.
        self.hold = None;
        if let Some(obs) = &mut self.obs {
            // The rebuilt stores start their match counters and index
            // builds at zero; forget the old totals so the next delta is
            // not negative.
            obs.prev_match.clear();
            obs.prev_builds.clear();
            obs.prev_demotions.clear();
        }
        Ok(())
    }

    /// Take the image produced by the last applied checkpoint boundary,
    /// if any. The runtime calls this after `apply_all` and installs the
    /// image into the ordering layer, which compacts its log behind it.
    pub fn take_pending_checkpoint(&mut self) -> Option<KernelCheckpoint> {
        self.pending_checkpoint.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::encode_request;
    use bytes::Bytes;
    use ftlinda_ags::{MatchField as MF, Operand};
    use linda_tuple::TypeTag::*;
    use linda_tuple::Value;

    fn kernel() -> (Kernel, crossbeam::channel::Receiver<KernelNote>) {
        let (tx, rx) = crossbeam::channel::unbounded();
        (Kernel::new(HostId(0), tx), rx)
    }

    fn app(seq: u64, origin: u32, local: u64, req: &Request) -> Delivery {
        Delivery::App {
            seq,
            origin: HostId(origin),
            local,
            payload: Bytes::from(encode_request(req)),
        }
    }

    #[test]
    fn create_ts_assigns_ids_in_order_and_dedups() {
        let (mut k, rx) = kernel();
        k.apply(&app(1, 0, 1, &Request::CreateTs { name: "a".into() }));
        k.apply(&app(2, 0, 2, &Request::CreateTs { name: "b".into() }));
        k.apply(&app(3, 0, 3, &Request::CreateTs { name: "a".into() }));
        assert_eq!(k.lookup("a"), Some(TsId(0)));
        assert_eq!(k.lookup("b"), Some(TsId(1)));
        let notes: Vec<KernelNote> = rx.try_iter().collect();
        assert_eq!(notes.len(), 3);
        assert!(matches!(
            &notes[2],
            KernelNote::TsCreated { id: TsId(0), .. }
        ));
    }

    #[test]
    fn foreign_create_not_notified() {
        let (mut k, rx) = kernel();
        k.apply(&app(1, 7, 1, &Request::CreateTs { name: "x".into() }));
        assert_eq!(k.lookup("x"), Some(TsId(0)));
        assert!(rx.try_iter().next().is_none());
    }

    #[test]
    fn out_then_blocked_in_unblocks() {
        let (mut k, rx) = kernel();
        k.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        let in_ags = Ags::in_one(TsId(0), vec![MF::actual("job"), MF::bind(Int)]).unwrap();
        k.apply(&app(2, 0, 2, &Request::Ags(in_ags)));
        assert_eq!(k.blocked_len(), 1);
        let out_ags = Ags::out_one(TsId(0), vec![Operand::cst("job"), Operand::cst(5)]);
        k.apply(&app(3, 0, 3, &Request::Ags(out_ags)));
        assert_eq!(k.blocked_len(), 0);
        let notes: Vec<KernelNote> = rx.try_iter().collect();
        let completed: Vec<_> = notes
            .iter()
            .filter_map(|n| match n {
                KernelNote::Completed { local, result, .. } => Some((*local, result.clone())),
                _ => None,
            })
            .collect();
        // local 3 (the out) completes, then local 2 (the unblocked in).
        assert_eq!(completed.len(), 2);
        assert!(completed
            .iter()
            .any(|(l, r)| *l == 2 && matches!(r, Ok(o) if o.bindings == vec![Value::Int(5)])));
    }

    #[test]
    fn blocked_queue_is_fifo_fair() {
        let (mut k, rx) = kernel();
        k.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        // Two blocked ins on the same pattern; one out should wake the
        // OLDER one.
        let in_ags = Ags::in_one(TsId(0), vec![MF::actual("t"), MF::bind(Int)]).unwrap();
        k.apply(&app(2, 0, 2, &Request::Ags(in_ags.clone())));
        k.apply(&app(3, 0, 3, &Request::Ags(in_ags)));
        assert_eq!(k.blocked_len(), 2);
        k.apply(&app(
            4,
            0,
            4,
            &Request::Ags(Ags::out_one(
                TsId(0),
                vec![Operand::cst("t"), Operand::cst(1)],
            )),
        ));
        assert_eq!(k.blocked_len(), 1);
        let woken: Vec<u64> = rx
            .try_iter()
            .filter_map(|n| match n {
                KernelNote::Completed {
                    local,
                    result: Ok(_),
                    ..
                } if local != 4 => Some(local),
                _ => None,
            })
            .collect();
        assert_eq!(woken, vec![2], "oldest blocked AGS wins");
    }

    #[test]
    fn cascading_unblock() {
        let (mut k, _rx) = kernel();
        k.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        // A blocked: in(a) then out(b). B blocked: in(b) then out(c).
        let a = Ags::builder()
            .guard_in(TsId(0), vec![MF::actual("a")])
            .out(TsId(0), vec![Operand::cst("b")])
            .build()
            .unwrap();
        let b = Ags::builder()
            .guard_in(TsId(0), vec![MF::actual("b")])
            .out(TsId(0), vec![Operand::cst("c")])
            .build()
            .unwrap();
        k.apply(&app(2, 0, 2, &Request::Ags(b)));
        k.apply(&app(3, 0, 3, &Request::Ags(a)));
        assert_eq!(k.blocked_len(), 2);
        // Dropping "a" fires A, whose out of "b" must cascade into B.
        k.apply(&app(
            4,
            0,
            4,
            &Request::Ags(Ags::out_one(TsId(0), vec![Operand::cst("a")])),
        ));
        assert_eq!(k.blocked_len(), 0);
        assert_eq!(k.stable_len(TsId(0)), Some(1));
        assert_eq!(k.snapshot(TsId(0)).unwrap()[0], tuple!("c"));
    }

    #[test]
    fn failure_tuple_deposited_into_every_space_and_wakes_monitors() {
        let (mut k, rx) = kernel();
        k.apply(&app(1, 0, 1, &Request::CreateTs { name: "a".into() }));
        k.apply(&app(2, 0, 2, &Request::CreateTs { name: "b".into() }));
        // A monitor blocked on the failure tuple.
        let monitor =
            Ags::in_one(TsId(0), vec![MF::actual(FAILURE_TUPLE_HEAD), MF::bind(Int)]).unwrap();
        k.apply(&app(3, 0, 3, &Request::Ags(monitor)));
        assert_eq!(k.blocked_len(), 1);
        k.apply(&Delivery::Fail {
            seq: 4,
            host: HostId(2),
        });
        assert_eq!(k.blocked_len(), 0, "monitor woken by failure tuple");
        // Space b still holds its copy.
        assert_eq!(
            k.snapshot(TsId(1)).unwrap(),
            vec![tuple!(FAILURE_TUPLE_HEAD, 2)]
        );
        let woke: Vec<KernelNote> = rx.try_iter().collect();
        assert!(woke.iter().any(|n| matches!(
            n,
            KernelNote::Completed { local: 3, result: Ok(o), .. } if o.bindings == vec![Value::Int(2)]
        )));
        assert!(woke.iter().any(|n| matches!(
            n,
            KernelNote::HostFailed {
                host: HostId(2),
                ..
            }
        )));
    }

    #[test]
    fn scratch_outs_applied_only_for_own_origin() {
        let (mut k, _rx) = kernel();
        let scratch = LocalSpace::new();
        k.register_scratch(ScratchId(0), scratch.clone());
        k.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        let ags = Ags::builder()
            .guard_true()
            .out(ScratchId(0), vec![Operand::cst("mine")])
            .build()
            .unwrap();
        // Own origin → materialized.
        k.apply(&app(2, 0, 2, &Request::Ags(ags.clone())));
        assert_eq!(scratch.len(), 1);
        // Foreign origin → not materialized here.
        k.apply(&app(3, 5, 1, &Request::Ags(ags)));
        assert_eq!(scratch.len(), 1);
    }

    #[test]
    fn blocked_retry_hits_miss_cache() {
        let (mut k, rx) = kernel();
        k.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        // A guard that can only match ("job", 0) blocks; its first probe
        // misses and seeds the antituple cache.
        let in_ags = Ags::in_one(TsId(0), vec![MF::actual("job"), MF::actual(0)]).unwrap();
        k.apply(&app(2, 0, 2, &Request::Ags(in_ags)));
        assert_eq!(k.blocked_len(), 1);
        let before = k.introspect().spaces[0].match_stats;
        // Near misses — same signature and head, wrong value — cannot
        // satisfy the cached pattern. Each deposit still triggers a
        // blocked-guard retry, which the miss cache answers with zero
        // probes.
        for i in 1..=3u64 {
            k.apply(&app(
                2 + i,
                0,
                2 + i,
                &Request::Ags(Ags::out_one(
                    TsId(0),
                    vec![Operand::cst("job"), Operand::cst(i as i64)],
                )),
            ));
        }
        assert_eq!(k.blocked_len(), 1);
        let report = k.introspect();
        let delta = report.spaces[0].match_stats.since(&before);
        assert_eq!(delta.probes, 0, "retries answered from the miss cache");
        assert_eq!(delta.cache_hits, 3);
        assert!(report.spaces[0].index.miss_cached >= 1);
        // The genuinely matching deposit invalidates the entry and fires
        // the guard.
        k.apply(&app(
            6,
            0,
            6,
            &Request::Ags(Ags::out_one(
                TsId(0),
                vec![Operand::cst("job"), Operand::cst(0)],
            )),
        ));
        assert_eq!(k.blocked_len(), 0);
        assert!(rx.try_iter().any(|n| matches!(
            n,
            KernelNote::Completed {
                local: 2,
                result: Ok(_),
                ..
            }
        )));
    }

    #[test]
    fn restore_rebuilds_stores_without_derived_state() {
        let (mut k, _rx) = kernel();
        k.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        k.apply(&app(
            2,
            0,
            2,
            &Request::Ags(Ags::out_one(
                TsId(0),
                vec![Operand::cst("job"), Operand::cst(1)],
            )),
        ));
        // Seed the miss cache with a blocked guard.
        let in_ags = Ags::in_one(TsId(0), vec![MF::actual("job"), MF::actual(9)]).unwrap();
        k.apply(&app(3, 0, 3, &Request::Ags(in_ags)));
        assert!(k.introspect().spaces[0].index.miss_cached > 0);
        let image = k.checkpoint();
        let (mut k2, _rx2) = kernel();
        k2.apply(&Delivery::Restore { image });
        let sp = &k2.introspect().spaces[0];
        assert_eq!(
            sp.index,
            IndexReport::default(),
            "indexes and miss cache are derived, never checkpointed"
        );
        assert_eq!(sp.match_stats, MatchStats::default());
        assert_eq!(k2.digest(), k.digest(), "replicated state identical");
        assert_eq!(k2.blocked_len(), 1);
    }

    #[test]
    fn malformed_payload_noted_and_skipped() {
        let (mut k, rx) = kernel();
        k.apply(&Delivery::App {
            seq: 1,
            origin: HostId(4),
            local: 1,
            payload: Bytes::from_static(&[0xff, 0x00]),
        });
        assert!(matches!(
            rx.try_recv().unwrap(),
            KernelNote::Malformed {
                origin: HostId(4),
                ..
            }
        ));
        assert_eq!(k.applied_seq(), 1);
    }

    #[test]
    fn failed_ags_notifies_error() {
        let (mut k, rx) = kernel();
        k.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        let bad = Ags::builder()
            .guard_true()
            .in_(TsId(0), vec![MF::actual("nope")])
            .build()
            .unwrap();
        k.apply(&app(2, 0, 2, &Request::Ags(bad)));
        let notes: Vec<KernelNote> = rx.try_iter().collect();
        assert!(notes.iter().any(|n| matches!(
            n,
            KernelNote::Completed {
                local: 2,
                result: Err(ExecError::BodyUnmatched { .. }),
                ..
            }
        )));
    }

    #[test]
    fn two_kernels_converge_on_same_stream() {
        let (tx1, _r1) = crossbeam::channel::unbounded();
        let (tx2, _r2) = crossbeam::channel::unbounded();
        let mut k1 = Kernel::new(HostId(0), tx1);
        let mut k2 = Kernel::new(HostId(1), tx2);
        let stream = vec![
            app(1, 0, 1, &Request::CreateTs { name: "m".into() }),
            app(
                2,
                0,
                2,
                &Request::Ags(Ags::out_one(
                    TsId(0),
                    vec![Operand::cst("count"), Operand::cst(0)],
                )),
            ),
            app(
                3,
                1,
                1,
                &Request::Ags(
                    Ags::builder()
                        .guard_in(TsId(0), vec![MF::actual("count"), MF::bind(Int)])
                        .out(
                            TsId(0),
                            vec![Operand::cst("count"), Operand::formal(0).add(1)],
                        )
                        .build()
                        .unwrap(),
                ),
            ),
            Delivery::Fail {
                seq: 4,
                host: HostId(3),
            },
            app(
                5,
                1,
                2,
                &Request::Ags(
                    Ags::in_one(TsId(0), vec![MF::actual("nothing"), MF::bind(Str)]).unwrap(),
                ),
            ),
        ];
        for d in &stream {
            k1.apply(d);
            k2.apply(d);
        }
        assert_eq!(k1.digest(), k2.digest());
        assert_eq!(k1.snapshot(TsId(0)), k2.snapshot(TsId(0)));
        assert_eq!(k1.blocked_len(), 1);
        assert_eq!(k2.blocked_len(), 1);
    }

    #[test]
    fn digest_differs_on_diverged_state() {
        let (tx1, _r1) = crossbeam::channel::unbounded();
        let (tx2, _r2) = crossbeam::channel::unbounded();
        let mut k1 = Kernel::new(HostId(0), tx1);
        let mut k2 = Kernel::new(HostId(1), tx2);
        let create = app(1, 0, 1, &Request::CreateTs { name: "m".into() });
        k1.apply(&create);
        k2.apply(&create);
        k1.apply(&app(
            2,
            0,
            2,
            &Request::Ags(Ags::out_one(TsId(0), vec![Operand::cst(1)])),
        ));
        assert_ne!(k1.digest(), k2.digest());
    }

    #[test]
    fn starvation_sweep_reports_once_per_crossing() {
        let reg = linda_obs::Registry::new();
        let (mut k, _rx) = kernel();
        k.attach_obs(&reg);
        k.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        // A near-miss tuple: right signature, wrong value.
        k.apply(&app(
            2,
            0,
            2,
            &Request::Ags(Ags::out_one(
                TsId(0),
                vec![Operand::cst("job"), Operand::cst(99)],
            )),
        ));
        // A guard that can never fire: in("job", 0) with only ("job", 99)
        // in the space.
        let never = Ags::in_one(TsId(0), vec![MF::actual("job"), MF::actual(0)]).unwrap();
        k.apply(&app(3, 0, 3, &Request::Ags(never)));
        assert_eq!(k.blocked_len(), 1);

        // Below threshold → nothing reported.
        assert!(k.starvation_sweep(Duration::from_secs(3600)).is_empty());
        assert!(k.starvation_sweep(Duration::ZERO).is_empty(), "disabled");

        std::thread::sleep(Duration::from_millis(10));
        let first = k.starvation_sweep(Duration::from_millis(5));
        assert_eq!(first.len(), 1, "one report per blocked AGS per crossing");
        let r = &first[0];
        assert_eq!(r.seq, 3);
        assert!(r.crossings >= 1);
        assert!(r.age >= Duration::from_millis(5));
        assert_eq!(r.nearest_miss, 1, "one same-signature tuple in store");
        assert!(
            r.guards.contains("ts0:"),
            "labels name the space: {}",
            r.guards
        );

        // Same crossing, swept again with a long threshold → silent.
        assert!(k.starvation_sweep(Duration::from_secs(3600)).is_empty());

        // Wait out another crossing → exactly one more report.
        std::thread::sleep(Duration::from_millis(10));
        let second = k.starvation_sweep(Duration::from_millis(5));
        assert_eq!(second.len(), 1);
        assert!(second[0].crossings > first[0].crossings);

        // Events and metrics line up with the two reports.
        assert_eq!(reg.events().recent_of("ags_starving").len(), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("ftlinda_ags_starving_total"), Some(2));
        assert_eq!(snap.gauge("ftlinda_ags_starving"), Some(1));

        // Waking the starving AGS clears the gauge on the next sweep.
        k.apply(&app(
            4,
            0,
            4,
            &Request::Ags(Ags::out_one(
                TsId(0),
                vec![Operand::cst("job"), Operand::cst(0)],
            )),
        ));
        assert_eq!(k.blocked_len(), 0);
        assert!(k.starvation_sweep(Duration::from_millis(5)).is_empty());
        assert_eq!(reg.snapshot().gauge("ftlinda_ags_starving"), Some(0));
    }

    #[test]
    fn mixed_signature_wakeups_stay_fifo_fair() {
        let (mut k, rx) = kernel();
        k.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        // Interleave blocked ins on two signatures: <str,int> and <str>.
        let sig_a = Ags::in_one(TsId(0), vec![MF::actual("a"), MF::bind(Int)]).unwrap();
        let sig_b = Ags::in_one(TsId(0), vec![MF::actual("b")]).unwrap();
        k.apply(&app(2, 0, 2, &Request::Ags(sig_a.clone())));
        k.apply(&app(3, 0, 3, &Request::Ags(sig_b.clone())));
        k.apply(&app(4, 0, 4, &Request::Ags(sig_a)));
        k.apply(&app(5, 0, 5, &Request::Ags(sig_b)));
        assert_eq!(k.blocked_len(), 4);
        // An out for signature B must wake the OLDEST B-waiter (local 3),
        // skipping the older A-waiter (local 2) that doesn't match.
        k.apply(&app(
            6,
            0,
            6,
            &Request::Ags(Ags::out_one(TsId(0), vec![Operand::cst("b")])),
        ));
        // Then an out for A wakes local 2, the overall oldest.
        k.apply(&app(
            7,
            0,
            7,
            &Request::Ags(Ags::out_one(
                TsId(0),
                vec![Operand::cst("a"), Operand::cst(1)],
            )),
        ));
        let woken: Vec<u64> = rx
            .try_iter()
            .filter_map(|n| match n {
                KernelNote::Completed {
                    local,
                    result: Ok(_),
                    ..
                } if local < 6 => Some(local),
                _ => None,
            })
            .collect();
        assert_eq!(woken, vec![3, 2], "per-signature FIFO, oldest first");
        assert_eq!(k.blocked_len(), 2);
    }

    #[test]
    fn register_ts_installs_explicit_id_idempotently() {
        let (mut k, rx) = kernel();
        k.apply(&app(
            1,
            0,
            1,
            &Request::RegisterTs {
                id: 5,
                name: "m".into(),
            },
        ));
        assert_eq!(k.lookup("m"), Some(TsId(5)));
        // Re-registering changes nothing.
        k.apply(&app(
            2,
            0,
            2,
            &Request::RegisterTs {
                id: 5,
                name: "m".into(),
            },
        ));
        assert_eq!(k.lookup("m"), Some(TsId(5)));
        // A later CreateTs allocates past the registered id.
        k.apply(&app(3, 0, 3, &Request::CreateTs { name: "n".into() }));
        assert_eq!(k.lookup("n"), Some(TsId(6)));
        let created: Vec<TsId> = rx
            .try_iter()
            .filter_map(|n| match n {
                KernelNote::TsCreated { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(created, vec![TsId(5), TsId(5), TsId(6)]);
    }

    /// Full cross-shard commit between a participant and a home kernel:
    /// lock checks buckets out and freezes, exec runs against the
    /// combined state, release reinstates writebacks and replays the
    /// deferred deliveries.
    #[test]
    fn cross_shard_lock_exec_release_roundtrip() {
        let (mut home, home_rx) = kernel();
        let (mut part, part_rx) = kernel();
        home.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        part.apply(&app(
            1,
            0,
            1,
            &Request::RegisterTs {
                id: 0,
                name: "m".into(),
            },
        ));
        // The participant owns the <str,int> bucket with two tuples.
        for (i, v) in [1i64, 2].iter().enumerate() {
            part.apply(&app(
                2 + i as u64,
                0,
                2 + i as u64,
                &Request::Ags(Ags::out_one(
                    TsId(0),
                    vec![Operand::cst("x"), Operand::cst(*v)],
                )),
            ));
        }
        let sig = tuple!("x", 1).signature().stable_hash();
        // A waiter on the participant for a tuple the exec will deposit.
        let waiter = Ags::in_one(TsId(0), vec![MF::actual("sum"), MF::bind(Int)]).unwrap();
        part.apply(&app(4, 0, 4, &Request::Ags(waiter)));
        assert_eq!(part.blocked_len(), 1);

        // Leg 1: lock.
        part.apply(&app(
            5,
            0,
            5,
            &Request::XLock {
                xid: 99,
                keys: vec![(0, sig)],
            },
        ));
        let buckets = match part_rx.try_iter().last().unwrap() {
            KernelNote::XCheckedOut {
                xid: 99, buckets, ..
            } => buckets,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            buckets,
            vec![(0, sig, vec![tuple!("x", 1), tuple!("x", 2)])]
        );
        assert_eq!(part.stable_len(TsId(0)), Some(0), "bucket checked out");

        // While frozen, deliveries are deferred.
        part.apply(&app(
            6,
            0,
            6,
            &Request::Ags(Ags::out_one(
                TsId(0),
                vec![Operand::cst("x"), Operand::cst(9)],
            )),
        ));
        assert_eq!(part.stable_len(TsId(0)), Some(0), "frozen: out deferred");
        // Checkpoint markers are dropped, not deferred.
        part.apply(&Delivery::Checkpoint { seq: 7 });
        assert!(part.take_pending_checkpoint().is_none());

        // Leg 2: exec at home. Guard takes the oldest foreign ("x", 1);
        // body deposits ("sum", 11) into the same foreign bucket.
        let ags = Ags::builder()
            .guard_in(TsId(0), vec![MF::actual("x"), MF::bind(Int)])
            .out(
                TsId(0),
                vec![Operand::cst("sum"), Operand::formal(0).add(10)],
            )
            .build()
            .unwrap();
        home.apply(&app(
            2,
            0,
            2,
            &Request::XExec {
                xid: 99,
                ags,
                foreign: buckets,
            },
        ));
        let (result, writebacks) = match home_rx.try_iter().last().unwrap() {
            KernelNote::XStaged {
                xid: 99,
                result,
                writebacks,
                ..
            } => (result, writebacks),
            other => panic!("{other:?}"),
        };
        match result {
            XStageResult::Fired(o) => assert_eq!(o.bindings, vec![Value::Int(1)]),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            writebacks,
            vec![(0, sig, vec![tuple!("x", 2), tuple!("sum", 11)])],
            "guarded take consumed the oldest; the deposit rides back"
        );
        assert_eq!(
            home.stable_len(TsId(0)),
            Some(0),
            "nothing stranded at home"
        );

        // Leg 3: release. Buckets reinstated, waiter wakes on the
        // deposited ("sum", 11), deferred out replays after.
        part.apply(&app(
            8,
            0,
            8,
            &Request::XRelease {
                xid: 99,
                buckets: writebacks,
            },
        ));
        assert_eq!(part.blocked_len(), 0, "waiter woken by the writeback");
        assert_eq!(
            part.snapshot(TsId(0)).unwrap(),
            vec![tuple!("x", 2), tuple!("x", 9)],
            "writeback order then deferred deliveries"
        );
        let notes: Vec<KernelNote> = part_rx.try_iter().collect();
        assert!(notes
            .iter()
            .any(|n| matches!(n, KernelNote::XReleased { xid: 99, .. })));
        assert!(notes.iter().any(|n| matches!(
            n,
            KernelNote::Completed { local: 4, result: Ok(o), .. } if o.bindings == vec![Value::Int(11)]
        )));
    }

    /// The home shard is itself locked before the exec (the origin
    /// acquires every participating shard in ascending order, home
    /// included, for deadlock freedom), so its own `XExec` must pass
    /// through the freeze while foreign transactions stay deferred.
    #[test]
    fn own_xexec_passes_through_home_freeze() {
        let (mut home, rx) = kernel();
        home.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        home.apply(&app(
            2,
            0,
            2,
            &Request::Ags(Ags::out_one(
                TsId(0),
                vec![Operand::cst("x"), Operand::cst(5)],
            )),
        ));
        let sig = tuple!("x", 1).signature().stable_hash();
        home.apply(&app(
            3,
            0,
            3,
            &Request::XLock {
                xid: 42,
                keys: vec![(0, sig)],
            },
        ));
        let buckets = match rx.try_iter().last().unwrap() {
            KernelNote::XCheckedOut { buckets, .. } => buckets,
            other => panic!("{other:?}"),
        };
        let ags = Ags::builder()
            .guard_in(TsId(0), vec![MF::actual("x"), MF::bind(Int)])
            .build()
            .unwrap();
        home.apply(&app(
            4,
            0,
            4,
            &Request::XExec {
                xid: 42,
                ags,
                foreign: buckets,
            },
        ));
        let writebacks = match rx.try_iter().last().unwrap() {
            KernelNote::XStaged {
                result: XStageResult::Fired(_),
                writebacks,
                ..
            } => writebacks,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            writebacks,
            vec![(0, sig, vec![])],
            "the one tuple was taken"
        );
        home.apply(&app(
            5,
            0,
            5,
            &Request::XRelease {
                xid: 42,
                buckets: writebacks,
            },
        ));
        assert_eq!(home.stable_len(TsId(0)), Some(0));
        // Unfrozen: a plain out applies immediately again.
        home.apply(&app(
            6,
            0,
            6,
            &Request::Ags(Ags::out_one(TsId(0), vec![Operand::cst("done")])),
        ));
        assert_eq!(home.stable_len(TsId(0)), Some(1));
    }

    #[test]
    fn origin_failure_aborts_hold_and_reinstates_buckets() {
        let (mut part, _rx) = kernel();
        part.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        part.apply(&app(
            2,
            0,
            2,
            &Request::Ags(Ags::out_one(
                TsId(0),
                vec![Operand::cst("x"), Operand::cst(1)],
            )),
        ));
        let sig = tuple!("x", 1).signature().stable_hash();
        // Lock submitted by host 7, which then fails mid-protocol.
        part.apply(&app(
            3,
            7,
            1,
            &Request::XLock {
                xid: 5,
                keys: vec![(0, sig)],
            },
        ));
        assert_eq!(part.stable_len(TsId(0)), Some(0));
        // Deferred while frozen.
        part.apply(&app(
            4,
            0,
            4,
            &Request::Ags(Ags::out_one(TsId(0), vec![Operand::cst("later")])),
        ));
        part.apply(&Delivery::Fail {
            seq: 5,
            host: HostId(7),
        });
        let snap = part.snapshot(TsId(0)).unwrap();
        assert!(
            snap.contains(&tuple!("x", 1)),
            "bucket reinstated: {snap:?}"
        );
        assert!(snap.contains(&tuple!("later")), "deferred out replayed");
        assert!(
            snap.contains(&tuple!(FAILURE_TUPLE_HEAD, 7)),
            "failure tuple deposited after the abort"
        );
        // Unfrozen again: new deliveries apply immediately.
        part.apply(&app(
            6,
            0,
            6,
            &Request::Ags(Ags::out_one(TsId(0), vec![Operand::cst("after")])),
        ));
        assert!(part.snapshot(TsId(0)).unwrap().contains(&tuple!("after")));
    }

    #[test]
    fn lock_expiry_abort_is_counted_and_traced_per_shard() {
        let (mut part, _rx) = kernel();
        part.set_shard(ShardSpec { index: 1, count: 2 });
        let reg = linda_obs::Registry::new();
        part.attach_obs_with(&reg, true);
        part.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        part.apply(&app(
            2,
            0,
            2,
            &Request::Ags(Ags::out_one(
                TsId(0),
                vec![Operand::cst("x"), Operand::cst(1)],
            )),
        ));
        let sig = tuple!("x", 1).signature().stable_hash();
        part.apply(&app(
            3,
            7,
            1,
            &Request::XLock {
                xid: 5,
                keys: vec![(0, sig)],
            },
        ));
        // One delivery buffered behind the hold, then the origin dies.
        part.apply(&app(
            4,
            0,
            4,
            &Request::Ags(Ags::out_one(TsId(0), vec![Operand::cst("later")])),
        ));
        part.apply(&Delivery::Fail {
            seq: 5,
            host: HostId(7),
        });
        let snap = reg.snapshot();
        let aborts = snap
            .counter_family("ftlinda_xcommit_aborts_total")
            .expect("abort family registered");
        assert_eq!(
            aborts.get("cause=\"lock_expiry\",shard=\"1\""),
            Some(&1),
            "aborts: {aborts:?}"
        );
        let buffered = snap
            .counter_family("ftlinda_xlock_buffered_total")
            .expect("buffered family registered");
        assert_eq!(buffered.get("shard=\"1\""), Some(&1));
        // The transaction trace carries xlock + xabort on this shard's
        // lane, and the buffered AGS's own trace shows its lock_wait.
        let spans = reg.spans().spans_of(linda_obs::TraceId::for_xid(5));
        let tree = linda_obs::TraceTree::assemble(linda_obs::TraceId::for_xid(5), spans);
        assert_eq!(tree.shards(), vec![1]);
        assert!(tree.first_at_on_shard("xlock", 1).is_some());
        let lane = tree.shard_lane(1);
        let abort = lane
            .iter()
            .find(|s| s.stage == "xabort")
            .expect("xabort span");
        assert!(abort
            .fields
            .iter()
            .any(|(k, v)| k == "cause" && v == "lock_expiry"));
        let waiter_spans = reg.spans().spans_of(linda_obs::TraceId::new(0, 4));
        assert!(
            waiter_spans.iter().any(|s| s.stage == "lock_wait"),
            "buffered delivery stamped with its queue time: {waiter_spans:?}"
        );
    }

    #[test]
    fn sharded_fail_tuples_partition_without_overlap() {
        let mk = |index| {
            let (tx, _rx) = crossbeam::channel::unbounded();
            let mut k = Kernel::new(HostId(0), tx);
            k.set_shard(ShardSpec { index, count: 2 });
            for (seq, name) in [(1, "a"), (2, "b"), (3, "c")] {
                k.apply(&app(seq, 0, seq, &Request::CreateTs { name: name.into() }));
            }
            k
        };
        let mut k0 = mk(0);
        let mut k1 = mk(1);
        let fail = Delivery::Fail {
            seq: 4,
            host: HostId(9),
        };
        k0.apply(&fail);
        k1.apply(&fail);
        for ts in [TsId(0), TsId(1), TsId(2)] {
            let total = k0.stable_len(ts).unwrap() + k1.stable_len(ts).unwrap();
            assert_eq!(
                total, 1,
                "exactly one failure tuple per space across shards"
            );
        }
    }

    #[test]
    fn canonical_digest_is_global_order_insensitive_but_bucket_order_sensitive() {
        let (mut u, _r1) = kernel();
        let (mut a, _r2) = kernel();
        let (mut b, _r3) = kernel();
        for k in [&mut u, &mut a, &mut b] {
            k.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        }
        let out = |v: Vec<Operand>| Request::Ags(Ags::out_one(TsId(0), v));
        // Unsharded: interleaved insertion across two signatures.
        u.apply(&app(
            2,
            0,
            2,
            &out(vec![Operand::cst("p"), Operand::cst(1)]),
        ));
        u.apply(&app(3, 0, 3, &out(vec![Operand::cst("q")])));
        u.apply(&app(
            4,
            0,
            4,
            &out(vec![Operand::cst("p"), Operand::cst(2)]),
        ));
        // Sharded: each bucket on its own kernel, different global order.
        a.apply(&app(
            2,
            0,
            2,
            &out(vec![Operand::cst("p"), Operand::cst(1)]),
        ));
        a.apply(&app(
            3,
            0,
            3,
            &out(vec![Operand::cst("p"), Operand::cst(2)]),
        ));
        b.apply(&app(2, 0, 2, &out(vec![Operand::cst("q")])));
        assert_eq!(
            u.canonical_space_digest(TsId(0)),
            a.canonical_space_digest(TsId(0)) ^ b.canonical_space_digest(TsId(0)),
            "XOR over shards equals the unsharded digest"
        );
        // Swapping the order WITHIN a bucket must change the digest.
        let (mut a2, _r4) = kernel();
        a2.apply(&app(1, 0, 1, &Request::CreateTs { name: "m".into() }));
        a2.apply(&app(
            2,
            0,
            2,
            &out(vec![Operand::cst("p"), Operand::cst(2)]),
        ));
        a2.apply(&app(
            3,
            0,
            3,
            &out(vec![Operand::cst("p"), Operand::cst(1)]),
        ));
        assert_ne!(
            a.canonical_space_digest(TsId(0)),
            a2.canonical_space_digest(TsId(0)),
            "within-bucket (withdraw) order is pinned"
        );
        // Empty and missing spaces digest to 0.
        assert_eq!(u.canonical_space_digest(TsId(9)), 0);
    }

    #[test]
    fn per_signature_store_override_reaches_existing_and_future_stores() {
        let (mut k, _rx) = kernel();
        k.apply(&app(1, 0, 1, &Request::CreateTs { name: "a".into() }));
        let sig = tuple!("x", 1).signature().stable_hash();
        // Disable the miss cache for <str,int> everywhere.
        k.set_store_config_override(
            sig,
            StoreConfig {
                miss_cache_cap: 0,
                ..StoreConfig::default()
            },
        );
        k.apply(&app(2, 0, 2, &Request::CreateTs { name: "b".into() }));
        // Probe both spaces with a missing <str,int> pattern twice: with
        // the cache disabled nothing is cached.
        for ts in [TsId(0), TsId(1)] {
            let probe = Ags::inp_one(ts, vec![MF::actual("x"), MF::actual(1)]).unwrap();
            k.apply(&app(
                10 + ts.0 as u64,
                0,
                10 + ts.0 as u64,
                &Request::Ags(probe),
            ));
        }
        for sp in &k.introspect().spaces {
            assert_eq!(sp.index.miss_cached, 0, "override disabled the cache");
        }
    }

    #[test]
    fn introspect_reports_spaces_and_blocked_table() {
        let (mut k, _rx) = kernel();
        k.apply(&app(
            1,
            0,
            1,
            &Request::CreateTs {
                name: "jobs".into(),
            },
        ));
        k.apply(&app(
            2,
            0,
            2,
            &Request::CreateTs {
                name: "acks".into(),
            },
        ));
        for (i, seq) in (0..3).zip(3..) {
            k.apply(&app(
                seq,
                0,
                seq,
                &Request::Ags(Ags::out_one(
                    TsId(0),
                    vec![Operand::cst("job"), Operand::cst(i)],
                )),
            ));
        }
        let waiter = Ags::in_one(TsId(0), vec![MF::actual("done"), MF::bind(Int)]).unwrap();
        k.apply(&app(10, 1, 1, &Request::Ags(waiter)));

        let report = k.introspect();
        assert_eq!(report.applied, 10);
        assert_eq!(report.spaces.len(), 2);
        let jobs = &report.spaces[0];
        assert_eq!(jobs.name, "jobs");
        assert_eq!(jobs.tuples, 3);
        assert_eq!(jobs.signatures.len(), 1);
        assert_eq!(jobs.signatures[0].count, 3);
        assert_eq!(jobs.signatures[0].high_water, 3);
        assert_eq!(jobs.signatures[0].signature.to_string(), "<str,int>");
        assert!(jobs.match_stats.attempts >= 1, "the blocked in probed");
        assert_eq!(report.spaces[1].tuples, 0);

        assert_eq!(report.blocked.len(), 1);
        let b = &report.blocked[0];
        assert_eq!(b.seq, 10);
        assert_eq!(b.origin, HostId(1));
        assert_eq!(b.nearest_miss, 3, "three same-signature tuples miss");
        assert!(!b.starving);
        assert!(b.guards.contains("<str,int>"), "guards: {}", b.guards);
    }
}

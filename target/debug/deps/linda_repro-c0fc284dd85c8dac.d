/root/repo/target/debug/deps/linda_repro-c0fc284dd85c8dac.d: src/lib.rs

/root/repo/target/debug/deps/liblinda_repro-c0fc284dd85c8dac.rlib: src/lib.rs

/root/repo/target/debug/deps/liblinda_repro-c0fc284dd85c8dac.rmeta: src/lib.rs

src/lib.rs:

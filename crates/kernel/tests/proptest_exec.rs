//! Property tests for the AGS execution engine: the all-or-nothing
//! guarantee. A failed AGS must leave the stores *bit-identical*
//! (including tuple insertion-order), and a blocked AGS must not touch
//! them at all.

use ftlinda_ags::{Ags, AgsBuilder, MatchField as MF, Operand, TsId};
use ftlinda_kernel::{try_execute, TryOutcome};
use linda_space::{IndexedStore, Store};
use linda_tuple::{Tuple, TypeTag, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_store_contents() -> impl Strategy<Value = Vec<Tuple>> {
    proptest::collection::vec(
        (0usize..3, 0i64..5).prop_map(|(h, v)| {
            Tuple::new(vec![Value::Str(["a", "b", "c"][h].into()), Value::Int(v)])
        }),
        0..12,
    )
}

/// AGSs that may succeed, fail mid-body, or block — chosen to exercise
/// all three paths against random store contents.
fn arb_ags() -> impl Strategy<Value = Ags> {
    (0usize..3, 0i64..6, any::<bool>(), 0usize..3).prop_map(|(h, v, fail_late, h2)| {
        let head = ["a", "b", "c"][h];
        let head2 = ["a", "b", "c"][h2];
        let mut b = AgsBuilder::new()
            .guard_in(TsId(0), vec![MF::actual(head), MF::bind(TypeTag::Int)])
            .out(
                TsId(0),
                vec![Operand::cst("produced"), Operand::formal(0).add(1)],
            )
            // A move whose effect must also roll back on failure.
            .move_(
                TsId(0),
                TsId(1),
                vec![MF::actual(head2), MF::bind(TypeTag::Int)],
            );
        if fail_late {
            // This body in only matches when the store happens to hold
            // ("b", v) — often it doesn't, forcing rollback after the
            // earlier effects.
            b = b.in_(TsId(0), vec![MF::actual("b"), MF::actual(v)]);
        }
        b.build().unwrap()
    })
}

fn stores_with(contents: &[Tuple]) -> BTreeMap<TsId, IndexedStore> {
    let mut m = BTreeMap::new();
    let mut s0 = IndexedStore::new();
    for t in contents {
        s0.insert(t.clone());
    }
    m.insert(TsId(0), s0);
    m.insert(TsId(1), IndexedStore::new());
    m
}

fn full_snapshot(stores: &BTreeMap<TsId, IndexedStore>) -> Vec<(u32, Vec<Tuple>)> {
    stores.iter().map(|(id, s)| (id.0, s.snapshot())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn failed_or_blocked_ags_changes_nothing(
        contents in arb_store_contents(),
        ags in arb_ags(),
        host in 0u32..4,
        seq in 1u64..1000,
    ) {
        let mut stores = stores_with(&contents);
        let before = full_snapshot(&stores);
        match try_execute(&mut stores, &ags, host, seq) {
            TryOutcome::Fired { .. } => {
                // Effects are allowed; spot-check conservation: guard
                // removed one tuple, body added one, moves conserve
                // total count across the two stores.
                let total_before = before.iter().map(|(_, v)| v.len()).sum::<usize>();
                let total_after: usize =
                    stores.values().map(linda_space::Store::len).sum();
                // in(-1) + out(+1) + move(0 net) + optional in(-1)
                prop_assert!(
                    total_after == total_before || total_after == total_before - 1
                );
            }
            TryOutcome::Blocked | TryOutcome::Failed(_) => {
                prop_assert_eq!(full_snapshot(&stores), before,
                    "aborted AGS must be a perfect no-op");
            }
        }
    }

    #[test]
    fn execution_is_deterministic_across_hosts(
        contents in arb_store_contents(),
        ags in arb_ags(),
        seq in 1u64..1000,
    ) {
        // The *stable-space* outcome may not depend on which replica
        // evaluates it (host id only feeds SelfHost operands, which this
        // generator does not use in stable outs... it does not at all).
        let mut s1 = stores_with(&contents);
        let mut s2 = stores_with(&contents);
        let r1 = try_execute(&mut s1, &ags, 0, seq);
        let r2 = try_execute(&mut s2, &ags, 3, seq);
        // Same branch/blocked/failure classification:
        let class = |r: &TryOutcome| match r {
            TryOutcome::Fired { outcome, .. } => format!("fired{}", outcome.branch),
            TryOutcome::Blocked => "blocked".into(),
            TryOutcome::Failed(e) => format!("failed{e}"),
        };
        prop_assert_eq!(class(&r1), class(&r2));
        prop_assert_eq!(full_snapshot(&s1), full_snapshot(&s2));
    }
}

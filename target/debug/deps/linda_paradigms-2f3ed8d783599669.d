/root/repo/target/debug/deps/linda_paradigms-2f3ed8d783599669.d: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

/root/repo/target/debug/deps/linda_paradigms-2f3ed8d783599669: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

crates/paradigms/src/lib.rs:
crates/paradigms/src/barrier.rs:
crates/paradigms/src/bot.rs:
crates/paradigms/src/checkpoint.rs:
crates/paradigms/src/consensus.rs:
crates/paradigms/src/distvar.rs:
crates/paradigms/src/dnc.rs:
crates/paradigms/src/pool.rs:

/root/repo/target/debug/deps/ftlinda_kernel-2016e670eea35784.d: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

/root/repo/target/debug/deps/ftlinda_kernel-2016e670eea35784: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

crates/kernel/src/lib.rs:
crates/kernel/src/exec.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/proto.rs:

/root/repo/target/debug/deps/linda_repro-d11e9382ea40aae7.d: src/lib.rs

/root/repo/target/debug/deps/liblinda_repro-d11e9382ea40aae7.rlib: src/lib.rs

/root/repo/target/debug/deps/liblinda_repro-d11e9382ea40aae7.rmeta: src/lib.rs

src/lib.rs:

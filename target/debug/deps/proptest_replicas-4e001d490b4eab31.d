/root/repo/target/debug/deps/proptest_replicas-4e001d490b4eab31.d: tests/proptest_replicas.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_replicas-4e001d490b4eab31.rmeta: tests/proptest_replicas.rs Cargo.toml

tests/proptest_replicas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

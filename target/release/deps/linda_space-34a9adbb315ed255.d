/root/repo/target/release/deps/linda_space-34a9adbb315ed255.d: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs

/root/repo/target/release/deps/liblinda_space-34a9adbb315ed255.rlib: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs

/root/repo/target/release/deps/liblinda_space-34a9adbb315ed255.rmeta: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs

crates/space/src/lib.rs:
crates/space/src/space.rs:
crates/space/src/store.rs:

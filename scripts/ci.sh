#!/usr/bin/env bash
# Full local CI: exactly what .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --workspace

echo "==> bench smoke (assertions only, no measurement)"
# batch_window sweeps the group-commit window {off, 100us, 1ms} and
# writes the multicasts-per-AGS / throughput curve as a JSON artifact.
BENCH_MSGS_PER_AGS_JSON="${BENCH_MSGS_PER_AGS_JSON:-$PWD/BENCH_msgs_per_ags.json}" \
    cargo bench -p linda-bench --bench batch_window -- --test
cargo bench -p linda-bench --bench msgs_per_ags -- --test
# shard_sweep runs K in {1,2,4} single-shard write traffic under the
# 10 Mb-Ethernet NIC model (group commit off) and fails if K=4 does not
# beat K=1 by at least SHARD_SWEEP_MIN_SPEEDUP (default 2x); it also
# asserts the 2S+1 cross-shard multicast price, adds the shard_sweep
# section to the same JSON artifact, and writes the per-shard
# multicast-load census (with the basis-point imbalance gauge) to the
# shard-balance artifact.
BENCH_MSGS_PER_AGS_JSON="${BENCH_MSGS_PER_AGS_JSON:-$PWD/BENCH_msgs_per_ags.json}" \
BENCH_SHARD_BALANCE_JSON="${BENCH_SHARD_BALANCE_JSON:-$PWD/BENCH_shard_balance.json}" \
SHARD_SWEEP_MIN_SPEEDUP="${SHARD_SWEEP_MIN_SPEEDUP:-2}" \
    cargo bench -p linda-bench --bench shard_sweep -- --test
# match_probes compares probes-per-attempt for the indexed vs linear
# store across hit / second-field hit / fresh miss / repeated miss and
# writes the observatory's match-cost artifact. The bench asserts the
# checked-in probe budgets (indexed repeated miss ≤ 1 probe/attempt
# amortized via the antituple cache; fresh 100k-tuple indexed miss ≤ 8
# probes and ≤ 10 µs via the value index), so a matching-engine
# regression fails this step.
BENCH_MATCH_PROBES_JSON="${BENCH_MATCH_PROBES_JSON:-$PWD/BENCH_match_probes.json}" \
    cargo bench -p linda-bench --bench match_probes -- --test

echo "==> HTTP exporter smoke (3-member 2-shard cluster, curl every member)"
./scripts/obs_smoke.sh

echo "==> long-history rejoin smoke (O(state) checkpoint transfer)"
# Crashes a host, orders 1k then 10k records of history with constant
# live state, restarts it, and asserts the rejoin transfer bytes do not
# grow with history (release build: the 10k run is the slow part).
cargo test --release -q -p ftlinda --test checkpoint_tests \
    rejoin_bytes_scale_with_state_not_history -- --exact

echo "==> TCP transport smoke (3 processes, aggregator, federated trace, kill -9 + rejoin)"
# Boots a 3-process 2-shard cluster over real localhost sockets via the
# launcher, curls every member's /healthz and per-link net counters,
# runs the ftlinda-top aggregator against all three exporters (merged
# page must carry shard-labeled families and every host's wire RTT),
# assembles a federated cross-shard trace from a non-origin member,
# SIGKILLs one member, relaunches it with --rejoin as the pingpong
# driver, and requires the BENCH_tcp_pingpong.json and
# BENCH_cluster_top.json artifacts the run writes.
BENCH_TCP_PINGPONG_JSON="${BENCH_TCP_PINGPONG_JSON:-$PWD/BENCH_tcp_pingpong.json}" \
BENCH_CLUSTER_TOP_JSON="${BENCH_CLUSTER_TOP_JSON:-$PWD/BENCH_cluster_top.json}" \
    ./scripts/tcp_smoke.sh

echo "CI green."

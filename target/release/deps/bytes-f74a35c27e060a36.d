/root/repo/target/release/deps/bytes-f74a35c27e060a36.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-f74a35c27e060a36.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-f74a35c27e060a36.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:

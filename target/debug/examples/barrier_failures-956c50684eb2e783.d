/root/repo/target/debug/examples/barrier_failures-956c50684eb2e783.d: examples/barrier_failures.rs Cargo.toml

/root/repo/target/debug/examples/libbarrier_failures-956c50684eb2e783.rmeta: examples/barrier_failures.rs Cargo.toml

examples/barrier_failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ftlinda-81363290d63de3c8.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

/root/repo/target/debug/deps/libftlinda-81363290d63de3c8.rlib: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

/root/repo/target/debug/deps/libftlinda-81363290d63de3c8.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/error.rs:
crates/core/src/runtime.rs:
crates/core/src/server.rs:

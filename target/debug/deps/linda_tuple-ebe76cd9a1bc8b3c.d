/root/repo/target/debug/deps/linda_tuple-ebe76cd9a1bc8b3c.d: crates/tuple/src/lib.rs crates/tuple/src/codec.rs crates/tuple/src/pattern.rs crates/tuple/src/signature.rs crates/tuple/src/tuple.rs crates/tuple/src/value.rs

/root/repo/target/debug/deps/liblinda_tuple-ebe76cd9a1bc8b3c.rlib: crates/tuple/src/lib.rs crates/tuple/src/codec.rs crates/tuple/src/pattern.rs crates/tuple/src/signature.rs crates/tuple/src/tuple.rs crates/tuple/src/value.rs

/root/repo/target/debug/deps/liblinda_tuple-ebe76cd9a1bc8b3c.rmeta: crates/tuple/src/lib.rs crates/tuple/src/codec.rs crates/tuple/src/pattern.rs crates/tuple/src/signature.rs crates/tuple/src/tuple.rs crates/tuple/src/value.rs

crates/tuple/src/lib.rs:
crates/tuple/src/codec.rs:
crates/tuple/src/pattern.rs:
crates/tuple/src/signature.rs:
crates/tuple/src/tuple.rs:
crates/tuple/src/value.rs:

/root/repo/target/debug/deps/fig_divide_conquer-8a5adf6003ed3051.d: crates/bench/benches/fig_divide_conquer.rs

/root/repo/target/debug/deps/fig_divide_conquer-8a5adf6003ed3051: crates/bench/benches/fig_divide_conquer.rs

crates/bench/benches/fig_divide_conquer.rs:

//! Static shard-key analysis for AGS routing.
//!
//! Matching in FT-Linda only ever happens inside one `(tuple space,
//! signature)` bucket: a pattern can only match tuples with an identical
//! ordered type list. When stable spaces are partitioned across K
//! independently-sequenced shards by `(TsId, signature stable_hash)`, an
//! AGS whose stable-space accesses all land on one shard can be submitted
//! to that shard's sequencer alone — no cross-shard coordination, no
//! global total order.
//!
//! Whether that is the case is decidable *statically*: signatures are type
//! lists, `MatchField::Bind` carries its type, and every [`Operand`]
//! exposes [`Operand::static_type`]. Values never influence a signature,
//! so the analysis here is exact whenever it returns `Some` — the keys an
//! execution touches are precisely the keys reported, for every branch and
//! every possible binding.

use crate::ags_mod::{Ags, Guard};
use crate::expr::Operand;
use crate::ops::{BodyOp, MatchField, SpaceRef, TsId};
use linda_tuple::{Signature, TypeTag};

/// A statically-determined stable-space access key: the matching bucket
/// `(ts, signature stable_hash)` an AGS operation touches.
pub type ShardKey = (TsId, u64);

/// Owning shard of a `(ts, signature)` bucket among `shards` replica
/// groups. Deterministic, identical at every host (no per-process seed):
/// a splitmix64-style finalizer over the ts id and signature hash.
pub fn shard_of(ts: TsId, sig_hash: u64, shards: u32) -> u32 {
    if shards <= 1 {
        return 0;
    }
    let mut h = sig_hash ^ (ts.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    (h % shards as u64) as u32
}

fn pattern_sig(fields: &[MatchField], formals: &[TypeTag]) -> Option<u64> {
    let mut tags = Vec::with_capacity(fields.len());
    for f in fields {
        tags.push(match f {
            MatchField::Bind(t) => *t,
            MatchField::Expr(op) => op.static_type(formals)?,
        });
    }
    Some(Signature::new(tags).stable_hash())
}

fn template_sig(template: &[Operand], formals: &[TypeTag]) -> Option<u64> {
    let mut tags = Vec::with_capacity(template.len());
    for op in template {
        tags.push(op.static_type(formals)?);
    }
    Some(Signature::new(tags).stable_hash())
}

/// Every `(ts, signature)` bucket any branch of `ags` may touch, sorted
/// and deduplicated — or `None` if some signature cannot be inferred
/// statically (the caller must then route conservatively).
///
/// Scratch-space operations are excluded: scratch spaces live on the
/// submitting host and never cross the ordering substrate.
pub fn static_keys(ags: &Ags) -> Option<Vec<ShardKey>> {
    let mut keys: Vec<ShardKey> = Vec::new();
    for branch in &ags.branches {
        let formals = &branch.formal_types;
        match &branch.guard {
            Guard::True => {}
            Guard::In { ts, pattern } | Guard::Rd { ts, pattern } => {
                if let SpaceRef::Stable(id) = ts {
                    // Guard expressions reference no formals (validated),
                    // but the full formal list is a safe superset context.
                    keys.push((*id, pattern_sig(pattern, formals)?));
                }
            }
        }
        for op in &branch.body {
            match op {
                BodyOp::Out { ts, template } => {
                    if let SpaceRef::Stable(id) = ts {
                        keys.push((*id, template_sig(template, formals)?));
                    }
                }
                BodyOp::In { ts, pattern } | BodyOp::Rd { ts, pattern } => {
                    if let SpaceRef::Stable(id) = ts {
                        keys.push((*id, pattern_sig(pattern, formals)?));
                    }
                }
                BodyOp::Move { from, to, pattern } | BodyOp::Copy { from, to, pattern } => {
                    let sig = pattern_sig(pattern, formals)?;
                    if let SpaceRef::Stable(id) = from {
                        keys.push((*id, sig));
                    }
                    if let SpaceRef::Stable(id) = to {
                        keys.push((*id, sig));
                    }
                }
            }
        }
    }
    keys.sort_unstable();
    keys.dedup();
    Some(keys)
}

/// Load imbalance of a K-way partition in integer basis points, from
/// per-shard load counts (tuples, AGSs, expected multicasts — any
/// non-negative load measure).
///
/// `0` means a perfectly even spread (every shard carries `1/K` of the
/// total), `10000` means everything landed on one shard. The formula
/// normalizes the heaviest shard's excess share over the best possible
/// share: `10000 · (max_i(load_i/total) − 1/K) / (1 − 1/K)`. Degenerate
/// inputs — no load, a single shard, an empty slice — read `0`: there
/// is nothing to rebalance.
pub fn imbalance_bp(loads: &[u64]) -> i64 {
    let k = loads.len() as u64;
    let total: u64 = loads.iter().sum();
    if k <= 1 || total == 0 {
        return 0;
    }
    let max = *loads.iter().max().expect("non-empty") as f64;
    let share = max / total as f64;
    let floor = 1.0 / k as f64;
    let bp = 10_000.0 * (share - floor) / (1.0 - floor);
    (bp.round() as i64).clamp(0, 10_000)
}

/// The sorted, deduplicated set of shards `ags` touches under a K-way
/// partition, or `None` if it cannot be determined statically. An empty
/// set (pure-scratch AGS) and a singleton both admit single-shard
/// submission; larger sets require the cross-shard commit protocol.
pub fn shard_set(ags: &Ags, shards: u32) -> Option<Vec<u32>> {
    let keys = static_keys(ags)?;
    let mut out: Vec<u32> = keys
        .iter()
        .map(|(ts, sig)| shard_of(*ts, *sig, shards))
        .collect();
    out.sort_unstable();
    out.dedup();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Func;
    use crate::ops::ScratchId;
    use linda_tuple::TypeTag::*;

    fn sig_hash(tags: &[TypeTag]) -> u64 {
        Signature::new(tags.to_vec()).stable_hash()
    }

    #[test]
    fn counter_ags_is_single_key() {
        // ⟨ in(ts0, "count", ?int) ⇒ out(ts0, "count", f0 + 1) ⟩ — the
        // guard pattern and the out template share the <str,int> signature.
        let ags = Ags::builder()
            .guard_in(
                TsId(0),
                vec![MatchField::actual("count"), MatchField::bind(Int)],
            )
            .out(
                TsId(0),
                vec![Operand::cst("count"), Operand::formal(0).add(1)],
            )
            .build()
            .unwrap();
        let keys = static_keys(&ags).unwrap();
        assert_eq!(keys, vec![(TsId(0), sig_hash(&[Str, Int]))]);
        assert_eq!(shard_set(&ags, 4).unwrap().len(), 1);
    }

    #[test]
    fn scratch_ops_are_excluded() {
        let ags = Ags::builder()
            .guard_in(TsId(1), vec![MatchField::bind(Int)])
            .out(ScratchId(0), vec![Operand::formal(0)])
            .build()
            .unwrap();
        assert_eq!(
            static_keys(&ags).unwrap(),
            vec![(TsId(1), sig_hash(&[Int]))]
        );
    }

    #[test]
    fn pure_scratch_ags_has_no_keys() {
        let ags = Ags::builder()
            .guard_true()
            .out(ScratchId(0), vec![Operand::cst(1)])
            .build()
            .unwrap();
        assert_eq!(static_keys(&ags).unwrap(), vec![]);
        assert_eq!(shard_set(&ags, 8).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn move_touches_both_spaces_same_signature() {
        let ags = Ags::builder()
            .guard_true()
            .move_(
                TsId(0),
                TsId(1),
                vec![MatchField::actual("task"), MatchField::bind(Int)],
            )
            .build()
            .unwrap();
        let s = sig_hash(&[Str, Int]);
        assert_eq!(static_keys(&ags).unwrap(), vec![(TsId(0), s), (TsId(1), s)]);
    }

    #[test]
    fn disjunction_unions_branch_keys() {
        let ags = Ags::builder()
            .guard_in(TsId(0), vec![MatchField::actual("token")])
            .or()
            .guard_rd(
                TsId(0),
                vec![MatchField::actual("failure"), MatchField::bind(Int)],
            )
            .build()
            .unwrap();
        let keys = static_keys(&ags).unwrap();
        assert_eq!(keys, {
            let mut v = vec![
                (TsId(0), sig_hash(&[Str])),
                (TsId(0), sig_hash(&[Str, Int])),
            ];
            v.sort_unstable();
            v
        });
    }

    #[test]
    fn formal_types_resolve_through_out_templates() {
        // Formal 1 is a Float bound by a body rd; the out template's
        // signature must pick that up.
        let ags = Ags::builder()
            .guard_in(TsId(0), vec![MatchField::bind(Int)])
            .in_(
                TsId(0),
                vec![
                    MatchField::bind(Float),
                    MatchField::Expr(Operand::formal(0)),
                ],
            )
            .out(TsId(2), vec![Operand::formal(1)])
            .build()
            .unwrap();
        let keys = static_keys(&ags).unwrap();
        assert!(keys.contains(&(TsId(2), sig_hash(&[Float]))));
        assert!(keys.contains(&(TsId(0), sig_hash(&[Float, Int]))));
    }

    #[test]
    fn underdetermined_template_yields_none() {
        // A malformed Apply with no arguments has no static type (it
        // would also abort at eval time); analysis must refuse, not guess.
        let ags = Ags::builder()
            .guard_true()
            .out(TsId(0), vec![Operand::Apply(Func::Add, vec![])])
            .build()
            .unwrap();
        assert_eq!(static_keys(&ags), None);
        assert_eq!(shard_set(&ags, 2), None);
    }

    #[test]
    fn imbalance_bp_spans_even_to_degenerate() {
        assert_eq!(imbalance_bp(&[]), 0, "no shards");
        assert_eq!(imbalance_bp(&[7]), 0, "K=1 cannot be imbalanced");
        assert_eq!(imbalance_bp(&[0, 0, 0, 0]), 0, "no load");
        assert_eq!(imbalance_bp(&[25, 25, 25, 25]), 0, "perfectly even");
        assert_eq!(imbalance_bp(&[100, 0, 0, 0]), 10_000, "all on one shard");
        assert_eq!(imbalance_bp(&[100, 0]), 10_000);
        // Max share 1/2 at K=4: (0.5 − 0.25) / 0.75 = 1/3 → 3333 bp.
        assert_eq!(imbalance_bp(&[50, 30, 10, 10]), 3333);
        // Mild skew stays small; monotone in the heaviest share.
        let mild = imbalance_bp(&[26, 25, 25, 24]);
        assert!(mild > 0 && mild < 200, "mild skew reads small: {mild}");
        assert!(imbalance_bp(&[40, 20, 20, 20]) > mild);
    }

    #[test]
    fn shard_of_is_deterministic_and_spreads() {
        assert_eq!(shard_of(TsId(3), 12345, 1), 0);
        assert_eq!(shard_of(TsId(3), 12345, 4), shard_of(TsId(3), 12345, 4));
        // Distinct signatures should not all collapse onto one shard.
        let hit: std::collections::BTreeSet<u32> = (0..64)
            .map(|i| shard_of(TsId(0), sig_hash(&[Int]) ^ i, 4))
            .collect();
        assert!(hit.len() > 1);
        // All results in range.
        for i in 0..64 {
            assert!(shard_of(TsId(i), 99, 4) < 4);
        }
    }
}

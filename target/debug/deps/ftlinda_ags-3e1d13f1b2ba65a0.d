/root/repo/target/debug/deps/ftlinda_ags-3e1d13f1b2ba65a0.d: crates/ags/src/lib.rs crates/ags/src/ags.rs crates/ags/src/expr.rs crates/ags/src/ops.rs crates/ags/src/wire.rs

/root/repo/target/debug/deps/ftlinda_ags-3e1d13f1b2ba65a0: crates/ags/src/lib.rs crates/ags/src/ags.rs crates/ags/src/expr.rs crates/ags/src/ops.rs crates/ags/src/wire.rs

crates/ags/src/lib.rs:
crates/ags/src/ags.rs:
crates/ags/src/expr.rs:
crates/ags/src/ops.rs:
crates/ags/src/wire.rs:

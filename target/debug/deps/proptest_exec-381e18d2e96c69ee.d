/root/repo/target/debug/deps/proptest_exec-381e18d2e96c69ee.d: crates/kernel/tests/proptest_exec.rs

/root/repo/target/debug/deps/proptest_exec-381e18d2e96c69ee: crates/kernel/tests/proptest_exec.rs

crates/kernel/tests/proptest_exec.rs:

//! Concurrency stress tests for the classic Linda kernel: exactly-once
//! withdrawal under contention, producer/consumer pipelines, eval
//! process trees, and the master/worker idiom from the 1985 Linda
//! papers running purely locally.

use linda_space::{EvalField, LocalSpace};
use linda_tuple::{pat, tuple, Value};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn exactly_once_under_heavy_contention() {
    let ls = LocalSpace::new();
    let n_tuples = 2000i64;
    let n_consumers = 8;
    let consumers: Vec<_> = (0..n_consumers)
        .map(|_| {
            let ls = ls.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(t) = ls.in_(&pat!("item", ?int)) {
                    let v = t[1].as_int().unwrap();
                    if v < 0 {
                        // poison: pass it on and stop
                        ls.out(tuple!("item", -1));
                        break;
                    }
                    got.push(v);
                }
                got
            })
        })
        .collect();
    for i in 0..n_tuples {
        ls.out(tuple!("item", i));
    }
    ls.out(tuple!("item", -1));
    let mut all: Vec<i64> = consumers
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..n_tuples).collect::<Vec<_>>());
}

#[test]
fn pipeline_stages_preserve_every_item() {
    // stage1: ("raw", n) → ("cooked", n*2); stage2: ("cooked", m) → sum.
    let ls = LocalSpace::new();
    let n = 500i64;
    let ls1 = ls.clone();
    let stage1 = std::thread::spawn(move || {
        for _ in 0..n {
            let t = ls1.in_(&pat!("raw", ?int)).unwrap();
            ls1.out(tuple!("cooked", t[1].as_int().unwrap() * 2));
        }
    });
    let ls2 = ls.clone();
    let stage2 = std::thread::spawn(move || {
        let mut sum = 0i64;
        for _ in 0..n {
            let t = ls2.in_(&pat!("cooked", ?int)).unwrap();
            sum += t[1].as_int().unwrap();
        }
        sum
    });
    for i in 0..n {
        ls.out(tuple!("raw", i));
    }
    stage1.join().unwrap();
    assert_eq!(stage2.join().unwrap(), (0..n).map(|i| i * 2).sum::<i64>());
    assert!(ls.is_empty());
}

#[test]
fn eval_tree_fans_out_and_collects() {
    // A recursive eval tree: each node spawns two children until depth 0,
    // each leaf deposits one tuple.
    let ls = LocalSpace::new();
    fn node(ls: &LocalSpace, depth: i64, id: i64) {
        if depth == 0 {
            ls.out(tuple!("leaf", id));
            return;
        }
        let l1 = ls.clone();
        let l2 = ls.clone();
        let h1 = ls.eval(move || {
            node(&l1, depth - 1, id * 2);
            tuple!("join")
        });
        let h2 = ls.eval(move || {
            node(&l2, depth - 1, id * 2 + 1);
            tuple!("join")
        });
        h1.join().unwrap();
        h2.join().unwrap();
    }
    node(&ls, 4, 1);
    assert_eq!(ls.count(&pat!("leaf", ?int)), 16);
    let ids: HashSet<i64> = ls
        .take_all(&pat!("leaf", ?int))
        .into_iter()
        .map(|t| t[1].as_int().unwrap())
        .collect();
    assert_eq!(ids, (16..32).collect::<HashSet<i64>>());
}

#[test]
fn classic_master_worker_with_active_tuples() {
    // The 1985 paper's signature pattern: eval() active tuples computing
    // results that turn passive when done.
    let ls = LocalSpace::new();
    let handles: Vec<_> = (2..12i64)
        .map(|n| {
            ls.eval_active(vec![
                EvalField::from("fact"),
                EvalField::from(n),
                EvalField::later(move || Value::Int((1..=n).product())),
            ])
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Results are addressable by content.
    let t = ls.rd(&pat!("fact", 5, ?int)).unwrap();
    assert_eq!(t[2].as_int().unwrap(), 120);
    let t = ls.rd(&pat!("fact", 10, ?int)).unwrap();
    assert_eq!(t[2].as_int().unwrap(), 3628800);
    assert_eq!(ls.count(&pat!("fact", ?int, ?int)), 10);
}

#[test]
fn rd_waiters_all_wake_on_one_out() {
    let ls = LocalSpace::new();
    let readers: Vec<_> = (0..6)
        .map(|_| {
            let ls = ls.clone();
            std::thread::spawn(move || ls.rd(&pat!("bcast", ?int)).unwrap())
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    ls.out(tuple!("bcast", 7));
    for r in readers {
        assert_eq!(r.join().unwrap(), tuple!("bcast", 7));
    }
    assert_eq!(ls.len(), 1, "rd leaves the tuple");
}

#[test]
fn mixed_readers_and_takers() {
    let ls = Arc::new(LocalSpace::new());
    // One slot tuple cycles between takers; readers observe it whenever
    // present; everything terminates cleanly.
    ls.out(tuple!("slot", 0));
    let takers: Vec<_> = (0..4)
        .map(|_| {
            let ls = ls.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let t = ls.in_(&pat!("slot", ?int)).unwrap();
                    ls.out(tuple!("slot", t[1].as_int().unwrap() + 1));
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let ls = ls.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let t = ls.rd(&pat!("slot", ?int)).unwrap();
                    assert!(t[1].as_int().unwrap() >= 0);
                }
            })
        })
        .collect();
    for t in takers {
        t.join().unwrap();
    }
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(
        ls.rd(&pat!("slot", ?int)).unwrap(),
        tuple!("slot", 200),
        "4 takers × 50 increments, none lost"
    );
}

#[test]
fn timeout_waiters_do_not_steal() {
    let ls = LocalSpace::new();
    // A timed-out in must not consume a tuple that arrives later for a
    // different waiter.
    let r = ls
        .in_timeout(&pat!("x"), Duration::from_millis(20))
        .unwrap();
    assert_eq!(r, None);
    ls.out(tuple!("x"));
    assert_eq!(ls.in_(&pat!("x")).unwrap(), tuple!("x"));
}

//! The FT-lcc pipeline end-to-end: compile a textual FT-Linda program,
//! inspect the signature catalog the precompiler builds, and execute the
//! compiled AGSs against a live replicated cluster.
//!
//! ```text
//! cargo run --example lcc_compile
//! ```

use ft_lcc::Compiler;
use ftlinda::Cluster;
use linda_tuple::pat;

const PROGRAM: &str = r#"
    # FT-Linda source (ASCII rendition of the paper's notation).
    stable bank;

    out(bank, "account", "alice", 100);
    out(bank, "account", "bob", 40);

    # Atomic transfer: both updates or neither, in one multicast.
    < in(bank, "account", "alice", ?int a) =>
        in(bank, "account", "bob", ?int b);
        out(bank, "account", "alice", a - 25);
        out(bank, "account", "bob", b + 25) >

    # Strong rdp to audit the result.
    rdp(bank, "account", "alice", ?int);
"#;

fn main() {
    // ----- compile --------------------------------------------------------
    let mut compiler = Compiler::new();
    let program = compiler.compile(PROGRAM).expect("program compiles");
    println!(
        "compiled {} statements over spaces {:?}",
        program.statements.len(),
        program.declared_stables
    );
    println!("signature catalog (FT-lcc §5.2 analysis):");
    for (id, sig) in program.catalog.iter() {
        println!("  {id} = {sig}");
    }

    // ----- execute on a live cluster ---------------------------------------
    let (cluster, rts) = Cluster::new(3);
    // The program declared `bank` as the first stable space; creating the
    // cluster's first space gives it the matching TsId(0).
    let ts = rts[0].create_stable_ts("bank").unwrap();
    assert_eq!(ts.0, 0, "declaration order matches runtime assignment");

    for (i, ags) in program.statements.iter().enumerate() {
        let out = rts[i % 3].execute(ags).expect("statement executes");
        println!(
            "stmt {i}: branch {} bindings {:?}",
            out.branch, out.bindings
        );
    }

    // Audit: alice 75, bob 65, and the total is conserved.
    let alice = rts[1].rd(ts, &pat!("account", "alice", ?int)).unwrap();
    let bob = rts[2].rd(ts, &pat!("account", "bob", ?int)).unwrap();
    println!("final: {alice}, {bob}");
    assert_eq!(alice[2].as_int().unwrap(), 75);
    assert_eq!(bob[2].as_int().unwrap(), 65);
    assert_eq!(
        alice[2].as_int().unwrap() + bob[2].as_int().unwrap(),
        140,
        "money conserved by atomicity"
    );
    println!("done.");
    cluster.shutdown();
}

//! Transport selection for the sequencer: simulated or real TCP.
//!
//! [`SeqNet`] is the narrow surface the protocol state machine actually
//! uses — point-to-point send, multicast, heartbeat parameters — with
//! the simulation-only extras (crash/restart injection, the oracle
//! detector) reachable only through [`SeqNet::sim`]. Everything built in
//! earlier PRs keeps running on [`SimNet`] unchanged; a TCP-backed
//! member runs the identical state machine over a [`TcpLane`].

use crate::net::{Heartbeat, HostId, NetEvent, SimNet};
use crate::sequencer::SeqMsg;
use crate::tcp::TcpLane;

/// The transport a sequencer member sends through.
#[derive(Clone)]
pub enum SeqNet {
    /// In-process simulated LAN (latency model, crash injection,
    /// optional oracle failure detector).
    Sim(SimNet<SeqMsg>),
    /// One shard lane of a process's TCP mesh.
    Tcp(TcpLane),
}

impl SeqNet {
    /// Point-to-point send.
    pub fn send(&self, from: HostId, to: HostId, msg: SeqMsg) {
        match self {
            SeqNet::Sim(net) => net.send(from, to, msg),
            SeqNet::Tcp(lane) => lane.send(to, msg),
        }
    }

    /// Multicast to `to` (encoded once on TCP).
    pub fn multicast(&self, from: HostId, to: &[HostId], msg: SeqMsg) {
        match self {
            SeqNet::Sim(net) => net.multicast(from, to.iter().copied(), msg),
            SeqNet::Tcp(lane) => lane.multicast(to, msg),
        }
    }

    /// Heartbeat parameters, when heartbeat failure detection is active.
    /// Always `Some` on TCP (there is no oracle across processes).
    pub fn heartbeats(&self) -> Option<Heartbeat> {
        match self {
            SeqNet::Sim(net) => net.config().heartbeats,
            SeqNet::Tcp(lane) => Some(lane.heartbeat()),
        }
    }

    /// Transport-level live view: simulation truth on `Sim`, established
    /// links on `Tcp`. Health/metrics use this; the protocol's ordered
    /// membership is authoritative for correctness.
    pub fn live_hosts(&self) -> Vec<HostId> {
        match self {
            SeqNet::Sim(net) => net.live_hosts(),
            SeqNet::Tcp(lane) => lane.live_hosts(),
        }
    }

    /// `(messages, bytes)` sent through this transport.
    pub fn stats_snapshot(&self) -> (u64, u64) {
        match self {
            SeqNet::Sim(net) => net.stats().snapshot(),
            SeqNet::Tcp(lane) => lane.stats().snapshot(),
        }
    }

    /// Reset the message/byte counters.
    pub fn reset_stats(&self) {
        match self {
            SeqNet::Sim(net) => net.stats().reset(),
            SeqNet::Tcp(lane) => lane.stats().reset(),
        }
    }

    /// Restart a host's inbox (simulation only).
    pub fn restart(&self, host: HostId) -> Option<crossbeam::channel::Receiver<NetEvent<SeqMsg>>> {
        match self {
            SeqNet::Sim(net) => Some(net.restart(host)),
            SeqNet::Tcp(_) => None,
        }
    }

    /// Crash a host fail-silently (simulation only; no-op on TCP, where
    /// you kill the process instead).
    pub fn crash(&self, host: HostId) {
        if let SeqNet::Sim(net) = self {
            net.crash(host);
        }
    }

    /// Stop router/mesh threads. On TCP this only detaches the lane;
    /// the owning process shuts the mesh down once.
    pub fn shutdown(&self) {
        if let SeqNet::Sim(net) = self {
            net.shutdown();
        }
    }

    /// The underlying simulated network, if this is the Sim transport.
    pub fn sim(&self) -> Option<&SimNet<SeqMsg>> {
        match self {
            SeqNet::Sim(net) => Some(net),
            SeqNet::Tcp(_) => None,
        }
    }
}

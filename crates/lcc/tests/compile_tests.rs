//! Compilation tests: DSL source → AGS IR, compared against the builder.

use ft_lcc::Compiler;
use ftlinda_ags::{Ags, MatchField as MF, Operand, ScratchId, TsId};
use linda_tuple::TypeTag::*;

fn compile_one(src: &str) -> Ags {
    let mut c = Compiler::new();
    c.bind_stable("ts", TsId(0));
    c.bind_stable("ts2", TsId(1));
    c.bind_scratch("tmp", ScratchId(0));
    let mut p = c.compile(src).unwrap();
    assert_eq!(p.statements.len(), 1, "expected one statement");
    p.statements.remove(0)
}

#[test]
fn bare_out() {
    let got = compile_one(r#"out(ts, "count", 0);"#);
    let want = Ags::out_one(TsId(0), vec![Operand::cst("count"), Operand::cst(0)]);
    assert_eq!(got, want);
}

#[test]
fn bare_in_with_named_formal() {
    let got = compile_one(r#"in(ts, "count", ?int x);"#);
    let want = Ags::in_one(TsId(0), vec![MF::actual("count"), MF::bind(Int)]).unwrap();
    assert_eq!(got, want);
}

#[test]
fn bare_inp_gets_true_branch() {
    let got = compile_one(r#"inp(ts, "x", ?int);"#);
    let want = Ags::inp_one(TsId(0), vec![MF::actual("x"), MF::bind(Int)]).unwrap();
    assert_eq!(got, want);
}

#[test]
fn bare_rdp_gets_true_branch() {
    let got = compile_one(r#"rdp(ts, ?str);"#);
    let want = Ags::rdp_one(TsId(0), vec![MF::bind(Str)]).unwrap();
    assert_eq!(got, want);
}

#[test]
fn counter_increment_ags() {
    let got = compile_one(r#"< in(ts, "count", ?int old) => out(ts, "count", old + 1) >"#);
    let want = Ags::builder()
        .guard_in(TsId(0), vec![MF::actual("count"), MF::bind(Int)])
        .out(
            TsId(0),
            vec![Operand::cst("count"), Operand::formal(0).add(1)],
        )
        .build()
        .unwrap();
    assert_eq!(got, want);
}

#[test]
fn disjunction_with_true_branch() {
    let got = compile_one(
        r#"< in(ts, "token") => out(ts, "held", self)
           or true => out(ts, "gaveup", seq) >"#,
    );
    let want = Ags::builder()
        .guard_in(TsId(0), vec![MF::actual("token")])
        .out(TsId(0), vec![Operand::cst("held"), Operand::SelfHost])
        .or()
        .guard_true()
        .out(TsId(0), vec![Operand::cst("gaveup"), Operand::RequestSeq])
        .build()
        .unwrap();
    assert_eq!(got, want);
}

#[test]
fn body_in_extends_environment() {
    let got = compile_one(
        r#"< in(ts, "a", ?int x) =>
             in(ts, "b", ?int y);
             out(ts, "sum", x + y) >"#,
    );
    let want = Ags::builder()
        .guard_in(TsId(0), vec![MF::actual("a"), MF::bind(Int)])
        .in_(TsId(0), vec![MF::actual("b"), MF::bind(Int)])
        .out(
            TsId(0),
            vec![
                Operand::cst("sum"),
                Operand::formal(0).add(Operand::formal(1)),
            ],
        )
        .build()
        .unwrap();
    assert_eq!(got, want);
}

#[test]
fn move_and_copy_between_spaces() {
    let got = compile_one(r#"< true => move(ts, ts2, "job", ?int); copy(ts2, tmp, ?str) >"#);
    let want = Ags::builder()
        .guard_true()
        .move_(TsId(0), TsId(1), vec![MF::actual("job"), MF::bind(Int)])
        .copy(TsId(1), ScratchId(0), vec![MF::bind(Str)])
        .build()
        .unwrap();
    assert_eq!(got, want);
}

#[test]
fn arithmetic_precedence() {
    let got = compile_one(r#"out(ts, 1 + 2 * 3 - 4 / 2);"#);
    // 1 + (2*3) - (4/2)
    let want = Ags::out_one(
        TsId(0),
        vec![Operand::cst(1)
            .add(Operand::cst(2).mul(3))
            .sub(Operand::cst(4).div(2))],
    );
    assert_eq!(got, want);
}

#[test]
fn parens_and_unary_minus() {
    let got = compile_one(r#"out(ts, -(1 + 2) * 3);"#);
    let want = Ags::out_one(
        TsId(0),
        vec![Operand::Apply(ftlinda_ags::Func::Neg, vec![Operand::cst(1).add(2)]).mul(3)],
    );
    assert_eq!(got, want);
}

#[test]
fn functions_compile() {
    let got = compile_one(
        r#"out(ts, min(1, 2), max(3, 4), if_(true, 1, 0), concat("a", "b"), int(2.5), float(7));"#,
    );
    match &got.branches[0].body[0] {
        ftlinda_ags::BodyOp::Out { template, .. } => {
            assert_eq!(template.len(), 6);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn float_and_literals() {
    let got = compile_one(r#"out(ts, 2.5, 'c', "s", true, false);"#);
    let want = Ags::out_one(
        TsId(0),
        vec![
            Operand::cst(2.5),
            Operand::cst('c'),
            Operand::cst("s"),
            Operand::cst(true),
            Operand::cst(false),
        ],
    );
    assert_eq!(got, want);
}

#[test]
fn declarations_auto_assign_ids() {
    let mut c = Compiler::new();
    let p = c
        .compile(
            r#"
            stable main;
            stable aux;
            scratch local;
            out(main, 1);
            out(aux, 2);
            < in(main, ?int v) => out(local, v) >
        "#,
        )
        .unwrap();
    assert_eq!(p.declared_stables, vec!["main", "aux"]);
    assert_eq!(p.declared_scratches, vec!["local"]);
    assert_eq!(p.statements.len(), 3);
    // main = TsId(0), aux = TsId(1), local = ScratchId(0)
    assert_eq!(
        p.statements[1],
        Ags::out_one(TsId(1), vec![Operand::cst(2)])
    );
}

#[test]
fn signature_catalog_populated() {
    let mut c = Compiler::new();
    let p = c
        .compile(
            r#"
            stable ts;
            out(ts, "count", 0);
            in(ts, "count", ?int);
            out(ts, "name", "x");
        "#,
        )
        .unwrap();
    // (str,int) appears twice → interned once; (str,str) once.
    assert_eq!(p.catalog.len(), 2);
}

#[test]
fn paper_bag_of_tasks_worker_compiles() {
    // The take/commit pair from the paper's FT bag-of-tasks, verbatim in
    // the DSL.
    let mut c = Compiler::new();
    let p = c
        .compile(
            r#"
            stable bag;
            < in(bag, "subtask", ?int id, ?tuple payload) =>
                out(bag, "inprog", self, id, payload) >
            < in(bag, "inprog", self, 7, ?tuple p2) =>
                out(bag, "result", 7, p2)
              or true => >
        "#,
        )
        .unwrap();
    assert_eq!(p.statements.len(), 2);
    assert_eq!(p.statements[0].branches[0].formal_types, vec![Int, Tuple]);
    assert_eq!(p.statements[1].branches.len(), 2);
}

// ----- error reporting ----------------------------------------------------

fn compile_err(src: &str) -> String {
    let mut c = Compiler::new();
    c.bind_stable("ts", TsId(0));
    c.bind_scratch("tmp", ScratchId(0));
    c.compile(src).unwrap_err().to_string()
}

#[test]
fn unknown_space_reported() {
    let e = compile_err(r#"out(nowhere, 1);"#);
    assert!(e.contains("unknown tuple space"), "{e}");
}

#[test]
fn unknown_identifier_reported() {
    let e = compile_err(r#"out(ts, bogus);"#);
    assert!(e.contains("unknown identifier"), "{e}");
}

#[test]
fn unknown_type_reported() {
    let e = compile_err(r#"in(ts, ?quux x);"#);
    assert!(e.contains("unknown type"), "{e}");
}

#[test]
fn duplicate_formal_reported() {
    let e = compile_err(r#"< in(ts, ?int x, ?int x) => >"#);
    assert!(e.contains("already bound"), "{e}");
}

#[test]
fn scratch_guard_rejected_via_validation() {
    let e = compile_err(r#"< in(tmp, ?int) => >"#);
    assert!(e.contains("stable"), "{e}");
}

#[test]
fn arity_mismatch_in_function() {
    let e = compile_err(r#"out(ts, min(1));"#);
    assert!(e.contains("expects 2"), "{e}");
}

#[test]
fn missing_arrow_reported() {
    let e = compile_err(r#"< in(ts, ?int) out(ts, 1) >"#);
    assert!(e.contains("expected"), "{e}");
}

#[test]
fn error_positions_are_plausible() {
    let mut c = Compiler::new();
    c.bind_stable("ts", TsId(0));
    let err = c.compile("out(ts,\n   bogus);").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.col >= 3);
}

#[test]
fn formals_referencable_across_guard_and_body() {
    let got = compile_one(
        r#"< in(ts, "var", ?int v) =>
             out(ts, "var", v * v % 10) >"#,
    );
    let out_op = &got.branches[0].body[0];
    match out_op {
        ftlinda_ags::BodyOp::Out { template, .. } => {
            let expected = Operand::Apply(
                ftlinda_ags::Func::Mod,
                vec![Operand::formal(0).mul(Operand::formal(0)), Operand::cst(10)],
            );
            assert_eq!(template[1], expected);
        }
        other => panic!("{other:?}"),
    }
}

/root/repo/target/debug/examples/quickstart-e1d12c771771a682.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e1d12c771771a682: examples/quickstart.rs

examples/quickstart.rs:

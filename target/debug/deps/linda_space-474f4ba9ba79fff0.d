/root/repo/target/debug/deps/linda_space-474f4ba9ba79fff0.d: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs Cargo.toml

/root/repo/target/debug/deps/liblinda_space-474f4ba9ba79fff0.rmeta: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs Cargo.toml

crates/space/src/lib.rs:
crates/space/src/space.rs:
crates/space/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

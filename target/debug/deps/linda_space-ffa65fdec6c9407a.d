/root/repo/target/debug/deps/linda_space-ffa65fdec6c9407a.d: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs Cargo.toml

/root/repo/target/debug/deps/liblinda_space-ffa65fdec6c9407a.rmeta: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs Cargo.toml

crates/space/src/lib.rs:
crates/space/src/space.rs:
crates/space/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Cluster assembly and fault injection.
//!
//! A [`Cluster`] is the simulated network of workstations: it owns the
//! Consul group and hands out one [`Runtime`] per host. Crashing and
//! restarting hosts goes through the cluster, mirroring how the paper's
//! evaluation kills workstations under a running application.
//!
//! The cluster also runs a *digest-divergence detector*: a background
//! thread that periodically cross-checks [`Runtime::applied_digest`]
//! across live hosts. Replica application is deterministic, so two hosts
//! at the same applied sequence number must have identical digests; a
//! mismatch means replica state has diverged (a bug, or deliberate fault
//! injection in tests) and is surfaced as a `digest_divergence` event
//! plus a `ftlinda_digest_divergence_total` counter on
//! [`Cluster::obs`].

use crate::runtime::Runtime;
use consul_sim::{BatchConfig, HostId, NetConfig, SeqGroup};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Builder for a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    hosts: u32,
    net: NetConfig,
    divergence_period: Option<Duration>,
    batch: BatchConfig,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            hosts: 3,
            net: NetConfig::instant(),
            divergence_period: Some(Duration::from_millis(10)),
            batch: BatchConfig::default(),
        }
    }
}

impl ClusterBuilder {
    /// Number of hosts (replicas). The paper's prototype used 3 Sun-3s.
    pub fn hosts(mut self, n: u32) -> Self {
        self.hosts = n;
        self
    }

    /// Simulated network configuration (latency, jitter, detection delay).
    pub fn net(mut self, cfg: NetConfig) -> Self {
        self.net = cfg;
        self
    }

    /// LAN-like latency shortcut.
    pub fn latency(mut self, one_way: Duration) -> Self {
        self.net = NetConfig::lan(one_way);
        self
    }

    /// Use heartbeat-based failure detection instead of the simulated
    /// oracle detector: crashes are discovered from ping silence, as a
    /// real deployment would.
    pub fn heartbeats(mut self, period: Duration, timeout: Duration) -> Self {
        self.net.heartbeats = Some(consul_sim::Heartbeat { period, timeout });
        self
    }

    /// How often the divergence detector cross-checks replica digests.
    pub fn divergence_period(mut self, p: Duration) -> Self {
        self.divergence_period = Some(p);
        self
    }

    /// Disable the background divergence detector.
    pub fn no_divergence_detector(mut self) -> Self {
        self.divergence_period = None;
        self
    }

    /// Full group-commit configuration for the sequencer coordinator.
    pub fn batch(mut self, cfg: BatchConfig) -> Self {
        self.batch = cfg;
        self
    }

    /// Coalescing window for concurrent AGS submits at the coordinator
    /// (`Duration::ZERO` disables batching).
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.batch.window = window;
        self
    }

    /// Flush an open batch as soon as it reaches `n` entries.
    pub fn batch_max_entries(mut self, n: usize) -> Self {
        self.batch.max_entries = n;
        self
    }

    /// Disable submit batching: every AGS is ordered with its own
    /// multicast, wire-identical to the pre-batching protocol.
    pub fn no_batching(mut self) -> Self {
        self.batch = BatchConfig::disabled();
        self
    }

    /// Build the cluster and one runtime per host.
    pub fn build(self) -> (Cluster, Vec<Runtime>) {
        let (group, members) = SeqGroup::new_with_batch(self.hosts, self.net, self.batch);
        let runtimes: Vec<Runtime> = members.into_iter().map(Runtime::new).collect();
        let by_host: HashMap<HostId, Runtime> =
            runtimes.iter().map(|rt| (rt.host(), rt.clone())).collect();
        let cluster = Cluster {
            group,
            runtimes: Arc::new(Mutex::new(by_host)),
            obs: Arc::new(linda_obs::Registry::new()),
            stop: Arc::new(AtomicBool::new(false)),
            detector: Mutex::new(None),
        };
        if let Some(period) = self.divergence_period {
            cluster.spawn_detector(period);
        }
        (cluster, runtimes)
    }
}

/// A running FT-Linda cluster over the simulated network.
pub struct Cluster {
    group: SeqGroup,
    /// Current runtime per host, replaced on restart so the divergence
    /// detector always samples the live incarnation.
    runtimes: Arc<Mutex<HashMap<HostId, Runtime>>>,
    /// Cluster-level registry: divergence counter + events.
    obs: Arc<linda_obs::Registry>,
    stop: Arc<AtomicBool>,
    detector: Mutex<Option<JoinHandle<()>>>,
}

impl Cluster {
    /// Start building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Convenience: `n` hosts, zero-latency network.
    pub fn new(n: u32) -> (Cluster, Vec<Runtime>) {
        Cluster::builder().hosts(n).build()
    }

    fn spawn_detector(&self, period: Duration) {
        let runtimes = self.runtimes.clone();
        let obs = self.obs.clone();
        let stop = self.stop.clone();
        let net = self.group.net().clone();
        let divergences = obs.counter(
            "ftlinda_digest_divergence_total",
            "Replica digest mismatches observed at equal applied sequence",
        );
        let handle = std::thread::Builder::new()
            .name("ftlinda-divergence".into())
            .spawn(move || {
                // Sequence numbers already reported, so a persistent
                // divergence is surfaced once, not every tick.
                let mut reported: HashSet<u64> = HashSet::new();
                while !stop.load(AtomicOrdering::Relaxed) {
                    std::thread::sleep(period);
                    let live: HashSet<HostId> = net.live_hosts().into_iter().collect();
                    let samples: Vec<(HostId, u64, u64)> = {
                        let map = runtimes.lock();
                        map.iter()
                            .filter(|(h, _)| live.contains(h))
                            .map(|(h, rt)| {
                                let (seq, dig) = rt.applied_digest();
                                (*h, seq, dig)
                            })
                            .collect()
                    };
                    // Group by applied seq; equal seq must imply equal
                    // digest (deterministic application of the same
                    // ordered prefix), so this never false-positives on
                    // replicas that merely lag.
                    let mut by_seq: HashMap<u64, Vec<(HostId, u64)>> = HashMap::new();
                    for (h, seq, dig) in samples {
                        by_seq.entry(seq).or_default().push((h, dig));
                    }
                    for (seq, group) in by_seq {
                        if group.len() < 2 || reported.contains(&seq) {
                            continue;
                        }
                        let first = group[0].1;
                        if group.iter().any(|(_, d)| *d != first) {
                            reported.insert(seq);
                            divergences.inc();
                            let mut fields = vec![("seq".to_string(), seq.to_string())];
                            for (h, d) in &group {
                                fields.push((format!("digest_h{}", h.0), format!("{d:#x}")));
                            }
                            obs.events()
                                .emit(linda_obs::Event::new("digest_divergence", fields));
                        }
                    }
                }
            })
            .expect("spawn divergence detector");
        *self.detector.lock() = Some(handle);
    }

    /// Cluster-level observability registry: the divergence counter and
    /// `digest_divergence` events live here (per-host pipeline metrics
    /// live on each [`Runtime::obs`]).
    pub fn obs(&self) -> Arc<linda_obs::Registry> {
        self.obs.clone()
    }

    /// Render cluster-level metrics in Prometheus text format.
    pub fn metrics_text(&self) -> String {
        self.obs.render()
    }

    /// Crash a host (fail-silent). Every surviving replica will deposit a
    /// `("failure", host)` tuple into each stable TS once the failure is
    /// detected and ordered.
    pub fn crash(&self, host: HostId) {
        self.group.crash(host);
    }

    /// Restart a crashed host. The fresh runtime replays the ordered log
    /// and converges to the surviving replicas' state; a `Join` record is
    /// ordered into the stream.
    pub fn restart(&self, host: HostId) -> Runtime {
        let rt = Runtime::new(self.group.restart(host));
        self.runtimes.lock().insert(host, rt.clone());
        rt
    }

    /// Network statistics (physical messages/bytes) — experiment E9.
    pub fn net_stats(&self) -> (u64, u64) {
        self.group.net().stats().snapshot()
    }

    /// Reset network statistics between measurement phases.
    pub fn reset_net_stats(&self) {
        self.group.net().stats().reset();
    }

    /// Ordering-layer statistics.
    pub fn order_stats(&self) -> &consul_sim::OrderStats {
        self.group.stats()
    }

    /// The group-commit configuration the sequencer runs with.
    pub fn batch_config(&self) -> BatchConfig {
        self.group.batch_config()
    }

    /// Tear everything down (idempotent).
    pub fn shutdown(&self) {
        self.stop.store(true, AtomicOrdering::Relaxed);
        if let Some(h) = self.detector.lock().take() {
            let _ = h.join();
        }
        for rt in self.runtimes.lock().values() {
            rt.shutdown();
        }
        self.group.shutdown();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

//! Barrier synchronization in tuple space (paper §4 example).
//!
//! A generation-numbered counter tuple implements a P-party barrier:
//! arrival is the atomic increment
//! `⟨ in("bar", gen, ?n) ⇒ out("bar", gen, n+1) ⟩`, and the release
//! condition is `rd("bar", gen, P)` — blocking until the counter tuple
//! *with value P* exists. The last arriver also seeds the next
//! generation's counter and garbage-collects the previous generation, so
//! the barrier is cyclic with O(1) tuples. Because the increment is a
//! single AGS, a crash can never strand the counter in a withdrawn state
//! (the plain-Linda version has exactly that window).

use ftlinda::{Ags, FtError, MatchField as MF, Operand, Runtime, TsId};
use linda_tuple::{PatField, Pattern, TypeTag, Value};

/// A cyclic barrier for `parties` participants.
#[derive(Debug, Clone, Copy)]
pub struct TsBarrier {
    ts: TsId,
    parties: i64,
}

impl TsBarrier {
    /// Create the barrier and seed generation 0.
    pub fn create(rt: &Runtime, ts: TsId, parties: usize) -> Result<TsBarrier, FtError> {
        let b = TsBarrier {
            ts,
            parties: parties as i64,
        };
        rt.execute(&Ags::out_one(
            ts,
            vec![Operand::cst("bar"), Operand::cst(0i64), Operand::cst(0i64)],
        ))?;
        Ok(b)
    }

    /// Attach to an existing barrier.
    pub fn attach(ts: TsId, parties: usize) -> TsBarrier {
        TsBarrier {
            ts,
            parties: parties as i64,
        }
    }

    /// Arrive at generation `gen` and block until all parties arrive.
    /// The caller must use consecutive generations starting at 0.
    pub fn wait(&self, rt: &Runtime, gen: i64) -> Result<(), FtError> {
        // Atomic arrival. The last arriver (n+1 == P) also seeds the next
        // generation's counter in the same AGS, keeping the barrier
        // cyclic without a separate reset phase.
        let arrive = Ags::builder()
            .guard_in(
                self.ts,
                vec![MF::actual("bar"), MF::actual(gen), MF::bind(TypeTag::Int)],
            )
            .out(
                self.ts,
                vec![
                    Operand::cst("bar"),
                    Operand::cst(gen),
                    Operand::formal(0).add(1),
                ],
            )
            .build()?;
        let o = rt.execute(&arrive)?;
        let n_after = o.bindings[0].as_int().expect("count") + 1;
        if n_after == self.parties {
            // Seed next generation and retire the previous one (if any):
            // both in one atomic statement.
            let mut b = Ags::builder().guard_true().out(
                self.ts,
                vec![
                    Operand::cst("bar"),
                    Operand::cst(gen + 1),
                    Operand::cst(0i64),
                ],
            );
            if gen > 0 {
                // The previous generation's counter is necessarily full
                // (every party passed it to reach this one); withdraw it.
                b = b.in_(
                    self.ts,
                    vec![
                        MF::actual("bar"),
                        MF::actual(gen - 1),
                        MF::actual(self.parties),
                    ],
                );
            }
            rt.execute(&b.build()?)?;
        }
        // Release: block until the full counter for this generation
        // exists.
        rt.rd(
            self.ts,
            &Pattern::new(vec![
                PatField::Actual(Value::Str("bar".into())),
                PatField::Actual(Value::Int(gen)),
                PatField::Actual(Value::Int(self.parties)),
            ]),
        )?;
        Ok(())
    }

    /// The number of parties.
    pub fn parties(&self) -> usize {
        self.parties as usize
    }
}

/// A counting semaphore in tuple space: `V` deposits a token, `P`
/// withdraws one. With single-op atomicity these are already safe; they
/// are provided for completeness of the paradigm library.
#[derive(Debug, Clone)]
pub struct TsSemaphore {
    ts: TsId,
    name: String,
}

impl TsSemaphore {
    /// Create a semaphore with `initial` tokens.
    pub fn create(
        rt: &Runtime,
        ts: TsId,
        name: &str,
        initial: usize,
    ) -> Result<TsSemaphore, FtError> {
        let s = TsSemaphore {
            ts,
            name: name.to_owned(),
        };
        for _ in 0..initial {
            s.v(rt)?;
        }
        Ok(s)
    }

    /// `V` (signal): deposit one token.
    pub fn v(&self, rt: &Runtime) -> Result<(), FtError> {
        rt.execute(&Ags::out_one(
            self.ts,
            vec![Operand::cst("sem"), Operand::cst(self.name.as_str())],
        ))
        .map(|_| ())
    }

    /// `P` (wait): withdraw one token, blocking.
    pub fn p(&self, rt: &Runtime) -> Result<(), FtError> {
        rt.in_(
            self.ts,
            &Pattern::new(vec![
                PatField::Actual(Value::Str("sem".into())),
                PatField::Actual(Value::Str(self.name.clone())),
            ]),
        )
        .map(|_| ())
    }

    /// Non-blocking `P`; `true` if a token was taken (strong semantics).
    pub fn try_p(&self, rt: &Runtime) -> Result<bool, FtError> {
        Ok(rt
            .inp(
                self.ts,
                &Pattern::new(vec![
                    PatField::Actual(Value::Str("sem".into())),
                    PatField::Actual(Value::Str(self.name.clone())),
                ]),
            )?
            .is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftlinda::Cluster;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn barrier_synchronizes_rounds() {
        let (cluster, rts) = Cluster::new(3);
        let ts = rts[0].create_stable_ts("bar").unwrap();
        let bar = TsBarrier::create(&rts[0], ts, 3).unwrap();
        let phase = Arc::new(AtomicUsize::new(0));
        let rounds = 4;
        let handles: Vec<_> = rts
            .iter()
            .map(|rt| {
                let rt = rt.clone();
                let phase = phase.clone();
                std::thread::spawn(move || {
                    for gen in 0..rounds {
                        // Everyone must observe phase >= gen before the
                        // barrier releases anyone into gen+1.
                        assert!(phase.load(Ordering::SeqCst) >= gen);
                        bar.wait(&rt, gen as i64).unwrap();
                        phase.fetch_max(gen + 1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(phase.load(Ordering::SeqCst), rounds);
        cluster.shutdown();
    }

    #[test]
    fn barrier_blocks_until_all_arrive() {
        let (cluster, rts) = Cluster::new(2);
        let ts = rts[0].create_stable_ts("bar").unwrap();
        let bar = TsBarrier::create(&rts[0], ts, 2).unwrap();
        let rt1 = rts[1].clone();
        let t = std::thread::spawn(move || {
            bar.wait(&rt1, 0).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!t.is_finished(), "single arrival must block");
        bar.wait(&rts[0], 0).unwrap();
        t.join().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn semaphore_limits_tokens() {
        let (cluster, rts) = Cluster::new(2);
        let ts = rts[0].create_stable_ts("sem").unwrap();
        let sem = TsSemaphore::create(&rts[0], ts, "s", 2).unwrap();
        assert!(sem.try_p(&rts[1]).unwrap());
        assert!(sem.try_p(&rts[1]).unwrap());
        assert!(!sem.try_p(&rts[1]).unwrap(), "no third token");
        sem.v(&rts[0]).unwrap();
        assert!(sem.try_p(&rts[1]).unwrap());
        cluster.shutdown();
    }

    #[test]
    fn semaphore_blocking_p() {
        let (cluster, rts) = Cluster::new(2);
        let ts = rts[0].create_stable_ts("sem").unwrap();
        let sem = TsSemaphore::create(&rts[0], ts, "s", 0).unwrap();
        let sem2 = sem.clone();
        let rt1 = rts[1].clone();
        let t = std::thread::spawn(move || sem2.p(&rt1).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!t.is_finished());
        sem.v(&rts[0]).unwrap();
        t.join().unwrap();
        cluster.shutdown();
    }
}

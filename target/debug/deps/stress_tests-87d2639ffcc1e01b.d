/root/repo/target/debug/deps/stress_tests-87d2639ffcc1e01b.d: crates/consul/tests/stress_tests.rs

/root/repo/target/debug/deps/stress_tests-87d2639ffcc1e01b: crates/consul/tests/stress_tests.rs

crates/consul/tests/stress_tests.rs:

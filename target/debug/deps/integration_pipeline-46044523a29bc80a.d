/root/repo/target/debug/deps/integration_pipeline-46044523a29bc80a.d: tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-46044523a29bc80a: tests/integration_pipeline.rs

tests/integration_pipeline.rs:

/root/repo/target/debug/deps/integration_runprogram-1898c30012498831.d: tests/integration_runprogram.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_runprogram-1898c30012498831.rmeta: tests/integration_runprogram.rs Cargo.toml

tests/integration_runprogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

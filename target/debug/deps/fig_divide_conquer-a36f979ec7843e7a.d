/root/repo/target/debug/deps/fig_divide_conquer-a36f979ec7843e7a.d: crates/bench/benches/fig_divide_conquer.rs Cargo.toml

/root/repo/target/debug/deps/libfig_divide_conquer-a36f979ec7843e7a.rmeta: crates/bench/benches/fig_divide_conquer.rs Cargo.toml

crates/bench/benches/fig_divide_conquer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

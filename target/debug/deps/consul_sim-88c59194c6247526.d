/root/repo/target/debug/deps/consul_sim-88c59194c6247526.d: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

/root/repo/target/debug/deps/libconsul_sim-88c59194c6247526.rlib: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

/root/repo/target/debug/deps/libconsul_sim-88c59194c6247526.rmeta: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

crates/consul/src/lib.rs:
crates/consul/src/isis.rs:
crates/consul/src/net.rs:
crates/consul/src/order.rs:
crates/consul/src/sequencer.rs:
crates/consul/src/stats.rs:

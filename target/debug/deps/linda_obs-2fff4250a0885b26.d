/root/repo/target/debug/deps/linda_obs-2fff4250a0885b26.d: crates/obs/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblinda_obs-2fff4250a0885b26.rmeta: crates/obs/src/lib.rs Cargo.toml

crates/obs/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

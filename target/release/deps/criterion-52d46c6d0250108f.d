/root/repo/target/release/deps/criterion-52d46c6d0250108f.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-52d46c6d0250108f.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-52d46c6d0250108f.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:

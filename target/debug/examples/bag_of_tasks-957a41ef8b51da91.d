/root/repo/target/debug/examples/bag_of_tasks-957a41ef8b51da91.d: examples/bag_of_tasks.rs

/root/repo/target/debug/examples/bag_of_tasks-957a41ef8b51da91: examples/bag_of_tasks.rs

examples/bag_of_tasks.rs:

/root/repo/target/debug/deps/integration_observability-c7200b8b7ad5f30c.d: tests/integration_observability.rs

/root/repo/target/debug/deps/integration_observability-c7200b8b7ad5f30c: tests/integration_observability.rs

tests/integration_observability.rs:

//! Offline shim for the `proptest` crate.
//!
//! Implements the strategy combinators and `proptest!` runner macro this
//! workspace's property tests use, generating inputs from a deterministic
//! per-test seed. Differences from the real crate, on purpose:
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug`), the
//!   case index, and the seed so it can be replayed, but is not minimized.
//! * **No persisted regressions file.** Seeds derive from the test name, so
//!   runs are reproducible without `proptest-regressions/`.
//! * String "regex" strategies support the literal-class subset used here
//!   (`.{m,n}`, `[chars]{m,n}`, `[^chars]{m,n}`), not full regex syntax.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for containers.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// `proptest::option` — strategies for `Option<T>`.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// Strategy producing `Some` (biased ~3:1) or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy::new(inner)
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Strategy for "any" value of a primitive type, like `any::<i64>()`.
pub fn any<T: strategy::ArbPrimitive>() -> strategy::Any<T> {
    strategy::Any::new()
}

/root/repo/target/debug/deps/proptest_exec-29c8753201d6faf9.d: crates/kernel/tests/proptest_exec.rs

/root/repo/target/debug/deps/proptest_exec-29c8753201d6faf9: crates/kernel/tests/proptest_exec.rs

crates/kernel/tests/proptest_exec.rs:

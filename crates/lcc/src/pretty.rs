//! Pretty-printer: AGS IR back to DSL source.
//!
//! The inverse of the compiler, in the spirit of the Linda Program
//! Builder the paper cites (its references 1-2): tools can synthesize AGSs
//! programmatically and render them as readable FT-Linda source. The
//! printer and compiler round-trip: `compile(print(ags)) == ags` for any
//! AGS whose spaces are bound to names (verified by property tests).

use ftlinda_ags::{Ags, BodyOp, Func, Guard, MatchField, Operand, ScratchId, SpaceRef, TsId};
use linda_tuple::Value;
use std::collections::HashMap;
use std::fmt::Write;

/// Maps space ids back to source names for printing.
#[derive(Debug, Default, Clone)]
pub struct SpaceNames {
    stables: HashMap<TsId, String>,
    scratches: HashMap<ScratchId, String>,
}

impl SpaceNames {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Name a stable space.
    pub fn stable(mut self, id: TsId, name: &str) -> Self {
        self.stables.insert(id, name.to_owned());
        self
    }

    /// Name a scratch space.
    pub fn scratch(mut self, id: ScratchId, name: &str) -> Self {
        self.scratches.insert(id, name.to_owned());
        self
    }

    fn resolve(&self, s: SpaceRef) -> String {
        match s {
            SpaceRef::Stable(id) => self
                .stables
                .get(&id)
                .cloned()
                .unwrap_or_else(|| format!("ts{}", id.0)),
            SpaceRef::Scratch(id) => self
                .scratches
                .get(&id)
                .cloned()
                .unwrap_or_else(|| format!("scratch{}", id.0)),
        }
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(x) => {
            // Keep a decimal point so the lexer reads it back as a float.
            if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Char(c) => match c {
            '\n' => out.push_str("'\\n'"),
            '\t' => out.push_str("'\\t'"),
            '\\' => out.push_str("'\\\\'"),
            '\'' => out.push_str("'\\''"),
            c => {
                let _ = write!(out, "'{c}'");
            }
        },
        Value::Str(s) => {
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        // Bytes/Tuple literals have no DSL syntax; printed as calls the
        // compiler rejects — callers embedding them must keep the IR form.
        Value::Bytes(b) => {
            let _ = write!(out, "bytes_literal_{}", b.len());
        }
        Value::Tuple(t) => {
            let _ = write!(out, "tuple_literal_{}", t.len());
        }
    }
}

/// Precedence levels for infix printing.
fn prec(op: &Operand) -> u8 {
    match op {
        Operand::Apply(Func::Add | Func::Sub, _) => 1,
        Operand::Apply(Func::Mul | Func::Div | Func::Mod, _) => 2,
        _ => 3,
    }
}

fn func_name(f: Func) -> &'static str {
    match f {
        Func::Min => "min",
        Func::Max => "max",
        Func::Eq => "eq",
        Func::Ne => "ne",
        Func::Lt => "lt",
        Func::Le => "le",
        Func::Gt => "gt",
        Func::Ge => "ge",
        Func::Not => "not",
        Func::And => "and",
        Func::Or => "or_",
        Func::Concat => "concat",
        Func::If => "if_",
        Func::ToInt => "int",
        Func::ToFloat => "float",
        Func::Add | Func::Sub | Func::Mul | Func::Div | Func::Mod | Func::Neg => {
            unreachable!("infix/prefix operators")
        }
    }
}

fn write_operand(out: &mut String, op: &Operand, parent_prec: u8) {
    match op {
        Operand::Const(v) => write_value(out, v),
        Operand::Formal(i) => {
            let _ = write!(out, "f{i}");
        }
        Operand::SelfHost => out.push_str("self"),
        Operand::RequestSeq => out.push_str("seq"),
        Operand::Apply(Func::Neg, args) => {
            out.push('-');
            write_operand(out, &args[0], 3);
        }
        Operand::Apply(f @ (Func::Add | Func::Sub | Func::Mul | Func::Div | Func::Mod), args) => {
            let my = prec(op);
            let needs_parens = my < parent_prec;
            if needs_parens {
                out.push('(');
            }
            write_operand(out, &args[0], my);
            out.push_str(match f {
                Func::Add => " + ",
                Func::Sub => " - ",
                Func::Mul => " * ",
                Func::Div => " / ",
                Func::Mod => " % ",
                _ => unreachable!(),
            });
            // Right operand needs strictly-higher precedence context for
            // left-associative operators.
            write_operand(out, &args[1], my + 1);
            if needs_parens {
                out.push(')');
            }
        }
        Operand::Apply(f, args) => {
            let _ = write!(out, "{}(", func_name(*f));
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_operand(out, a, 0);
            }
            out.push(')');
        }
    }
}

fn write_fields(out: &mut String, fields: &[MatchField], next_formal: &mut u16, bind_names: bool) {
    for f in fields {
        out.push_str(", ");
        match f {
            MatchField::Bind(t) => {
                if bind_names {
                    let _ = write!(out, "?{} f{}", t.name(), next_formal);
                    *next_formal += 1;
                } else {
                    let _ = write!(out, "?{}", t.name());
                }
            }
            MatchField::Expr(op) => write_operand(out, op, 0),
        }
    }
}

fn write_template(out: &mut String, template: &[Operand]) {
    for op in template {
        out.push_str(", ");
        write_operand(out, op, 0);
    }
}

/// Render one AGS as DSL source (without a trailing semicolon).
pub fn print_ags(ags: &Ags, names: &SpaceNames) -> String {
    let mut out = String::from("< ");
    for (bi, br) in ags.branches.iter().enumerate() {
        if bi > 0 {
            out.push_str("\n  or ");
        }
        let mut next_formal: u16 = 0;
        match &br.guard {
            Guard::True => out.push_str("true"),
            Guard::In { ts, pattern } => {
                let _ = write!(out, "in({}", names.resolve(*ts));
                write_fields(&mut out, pattern, &mut next_formal, true);
                out.push(')');
            }
            Guard::Rd { ts, pattern } => {
                let _ = write!(out, "rd({}", names.resolve(*ts));
                write_fields(&mut out, pattern, &mut next_formal, true);
                out.push(')');
            }
        }
        out.push_str(" =>");
        for op in &br.body {
            out.push_str("\n    ");
            match op {
                BodyOp::Out { ts, template } => {
                    let _ = write!(out, "out({}", names.resolve(*ts));
                    write_template(&mut out, template);
                    out.push(')');
                }
                BodyOp::In { ts, pattern } => {
                    let _ = write!(out, "in({}", names.resolve(*ts));
                    write_fields(&mut out, pattern, &mut next_formal, true);
                    out.push(')');
                }
                BodyOp::Rd { ts, pattern } => {
                    let _ = write!(out, "rd({}", names.resolve(*ts));
                    write_fields(&mut out, pattern, &mut next_formal, true);
                    out.push(')');
                }
                BodyOp::Move { from, to, pattern } => {
                    let _ = write!(out, "move({}, {}", names.resolve(*from), names.resolve(*to));
                    write_fields(&mut out, pattern, &mut next_formal, false);
                    out.push(')');
                }
                BodyOp::Copy { from, to, pattern } => {
                    let _ = write!(out, "copy({}, {}", names.resolve(*from), names.resolve(*to));
                    write_fields(&mut out, pattern, &mut next_formal, false);
                    out.push(')');
                }
            }
            out.push(';');
        }
    }
    out.push_str(" >");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;
    use ftlinda_ags::MatchField as MF;
    use linda_tuple::TypeTag::*;

    fn names() -> SpaceNames {
        SpaceNames::new()
            .stable(TsId(0), "ts")
            .stable(TsId(1), "ts2")
            .scratch(ScratchId(0), "tmp")
    }

    fn roundtrip(ags: &Ags) {
        let src = print_ags(ags, &names());
        let mut c = Compiler::new();
        c.bind_stable("ts", TsId(0));
        c.bind_stable("ts2", TsId(1));
        c.bind_scratch("tmp", ScratchId(0));
        let prog = c
            .compile(&src)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nsource:\n{src}"));
        assert_eq!(&prog.statements[0], ags, "roundtrip mismatch for:\n{src}");
    }

    #[test]
    fn counter_update_roundtrips() {
        roundtrip(
            &Ags::builder()
                .guard_in(TsId(0), vec![MF::actual("count"), MF::bind(Int)])
                .out(
                    TsId(0),
                    vec![Operand::cst("count"), Operand::formal(0).add(1)],
                )
                .build()
                .unwrap(),
        );
    }

    #[test]
    fn disjunction_and_all_ops_roundtrip() {
        roundtrip(
            &Ags::builder()
                .guard_rd(TsId(0), vec![MF::bind(Float), MF::actual(2.5)])
                .in_(TsId(1), vec![MF::actual("k"), MF::bind(Str)])
                .out(ScratchId(0), vec![Operand::formal(1), Operand::SelfHost])
                .move_(TsId(0), TsId(1), vec![MF::bind(Int)])
                .copy(TsId(1), ScratchId(0), vec![MF::actual(true)])
                .or()
                .guard_true()
                .out(TsId(0), vec![Operand::RequestSeq])
                .build()
                .unwrap(),
        );
    }

    #[test]
    fn precedence_preserved() {
        // (1 + 2) * 3 vs 1 + 2 * 3 must print differently and reparse
        // to the same trees.
        roundtrip(&Ags::out_one(TsId(0), vec![Operand::cst(1).add(2).mul(3)]));
        roundtrip(&Ags::out_one(
            TsId(0),
            vec![Operand::cst(1).add(Operand::cst(2).mul(3))],
        ));
        // Left-assoc subtraction: (1 - 2) - 3 vs 1 - (2 - 3).
        roundtrip(&Ags::out_one(TsId(0), vec![Operand::cst(1).sub(2).sub(3)]));
        roundtrip(&Ags::out_one(
            TsId(0),
            vec![Operand::cst(1).sub(Operand::cst(2).sub(3))],
        ));
    }

    #[test]
    fn functions_and_literals_roundtrip() {
        roundtrip(&Ags::out_one(
            TsId(0),
            vec![
                Operand::cst(2).min(3),
                Operand::cst("a\"b\\c").concat(Operand::cst("d\ne")),
                Operand::cst('\''),
                Operand::cst(2.0),
                Operand::cst(true).eq(Operand::cst(false)),
                // `-literal` folds to a negative constant at parse time;
                // Neg survives only over non-literal operands.
                Operand::cst(-5),
                Operand::Apply(Func::Neg, vec![Operand::SelfHost]),
                Operand::Apply(
                    Func::If,
                    vec![Operand::cst(true), Operand::cst(1), Operand::cst(2)],
                ),
            ],
        ));
    }

    #[test]
    fn float_integral_value_keeps_decimal() {
        let src = print_ags(&Ags::out_one(TsId(0), vec![Operand::cst(3.0)]), &names());
        assert!(src.contains("3.0"), "{src}");
    }

    #[test]
    fn unnamed_spaces_get_fallback_names() {
        let src = print_ags(
            &Ags::out_one(TsId(7), vec![Operand::cst(1)]),
            &SpaceNames::new(),
        );
        assert!(src.contains("ts7"), "{src}");
    }
}

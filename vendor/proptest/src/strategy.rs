//! Value-generation strategies: the `Strategy` trait and its combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of `Self::Value` from an RNG.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a pure generator.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate from `self`, then feed the value to `f` to pick the next
    /// strategy (dependent generation).
    fn prop_flat_map<O, S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        S: Strategy<Value = O>,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred` (re-drawing up to a bound).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase into a cheaply-cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Build recursive structures: `self` is the leaf case and `recurse`
    /// wraps a strategy for depth *n* into one for depth *n+1*. `depth`
    /// bounds nesting; the size hints are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            // Bias toward leaves so expected size stays bounded.
            cur = Union::new(vec![(2, leaf.clone()), (1, deeper)]).boxed();
        }
        cur
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate_dyn(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    S2: Strategy<Value = O>,
    F: Fn(S::Value) -> S2,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 draws in a row", self.whence);
    }
}

/// Weighted union of same-typed strategies; backs `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights need not be normalized.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Self { arms, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.arms.last().expect("nonempty").1.generate(rng)
    }
}

/// Length specification for [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        Self { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// See [`crate::option::of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> OptionStrategy<S> {
    pub(crate) fn new(inner: S) -> Self {
        Self { inner }
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_range(0..4u32) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Primitive types supported by [`crate::any`].
pub trait ArbPrimitive: fmt::Debug + Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arb_int {
    ($($t:ty),*) => {$(
        impl ArbPrimitive for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbPrimitive for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl ArbPrimitive for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Arbitrary bit patterns, excluding NaN so equality-based
        // properties (codec round-trips) remain meaningful.
        loop {
            let f = f64::from_bits(rng.gen::<u64>());
            if !f.is_nan() {
                return f;
            }
        }
    }
}

impl ArbPrimitive for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        loop {
            let f = f32::from_bits(rng.gen::<u64>() as u32);
            if !f.is_nan() {
                return f;
            }
        }
    }
}

impl ArbPrimitive for char {
    fn arbitrary(rng: &mut StdRng) -> char {
        // Mostly ASCII, sometimes any scalar value, for UTF-8 coverage.
        if rng.gen_range(0..4u32) > 0 {
            rng.gen_range(0x20u32..0x7f) as u8 as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x10ffff)) {
                    return c;
                }
            }
        }
    }
}

/// See [`crate::any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Self {
            _marker: PhantomData,
        }
    }
}

impl<T: ArbPrimitive> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String strategy from a regex-like pattern. Supports exactly the shapes
/// this workspace uses: `.{m,n}`, `[chars]{m,n}`, `[^chars]{m,n}`; any
/// other pattern is treated as a literal string.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let (class, min, max) = match parse_pattern(self) {
            Some(p) => p,
            None => return (*self).to_string(),
        };
        let len = rng.gen_range(min..=max);
        (0..len).map(|_| class.sample(rng)).collect()
    }
}

enum CharClass {
    /// `.` — any char except newline; mostly printable ASCII.
    Dot,
    /// `[...]` — one of the listed chars.
    OneOf(Vec<char>),
    /// `[^...]` — any char except the listed ones.
    NoneOf(Vec<char>),
}

impl CharClass {
    fn sample(&self, rng: &mut StdRng) -> char {
        match self {
            CharClass::Dot => loop {
                let c = <char as ArbPrimitive>::arbitrary(rng);
                if c != '\n' {
                    return c;
                }
            },
            CharClass::OneOf(set) => set[rng.gen_range(0..set.len())],
            CharClass::NoneOf(set) => loop {
                let c = <char as ArbPrimitive>::arbitrary(rng);
                if !set.contains(&c) {
                    return c;
                }
            },
        }
    }
}

fn parse_pattern(pat: &str) -> Option<(CharClass, usize, usize)> {
    let (class, rest) = if let Some(stripped) = pat.strip_prefix('.') {
        (CharClass::Dot, stripped)
    } else if let Some(inner) = pat.strip_prefix('[') {
        let close = inner.find(']')?;
        let (body, rest) = (&inner[..close], &inner[close + 1..]);
        let (negated, body) = match body.strip_prefix('^') {
            Some(b) => (true, b),
            None => (false, body),
        };
        let mut set = Vec::new();
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => set.push('\n'),
                    Some('t') => set.push('\t'),
                    Some('r') => set.push('\r'),
                    Some(other) => set.push(other),
                    None => return None,
                }
            } else {
                set.push(c);
            }
        }
        if negated {
            (CharClass::NoneOf(set), rest)
        } else {
            (CharClass::OneOf(set), rest)
        }
    } else {
        return None;
    };
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    Some((class, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Weighted-or-plain union builder macro.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn ranges_and_maps() {
        let s = (0usize..3, -3i64..4).prop_map(|(a, b)| (a, b * 2));
        let mut r = rng();
        for _ in 0..200 {
            let (a, b) = s.generate(&mut r);
            assert!(a < 3);
            assert!((-6..8).contains(&b) && b % 2 == 0);
        }
    }

    #[test]
    fn union_respects_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 3, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut r)) <= 7);
        }
    }

    #[test]
    fn str_pattern_strategies() {
        let mut r = rng();
        for _ in 0..100 {
            let s = ".{0,12}".generate(&mut r);
            assert!(s.chars().count() <= 12 && !s.contains('\n'));
            let t = "[^\\n\\t]{0,10}".generate(&mut r);
            assert!(t.chars().count() <= 10 && !t.contains('\n') && !t.contains('\t'));
            let u = "[ab]{2,2}".generate(&mut r);
            assert!(u.chars().all(|c| c == 'a' || c == 'b') && u.len() == 2);
        }
    }
}

/root/repo/target/debug/examples/quickstart-83f62914ab8a37ab.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-83f62914ab8a37ab.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/integration_failures-f77c19f275e31759.d: tests/integration_failures.rs

/root/repo/target/debug/deps/integration_failures-f77c19f275e31759: tests/integration_failures.rs

tests/integration_failures.rs:

/root/repo/target/release/deps/consul_sim-7e76de00c3bae53b.d: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

/root/repo/target/release/deps/libconsul_sim-7e76de00c3bae53b.rlib: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

/root/repo/target/release/deps/libconsul_sim-7e76de00c3bae53b.rmeta: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

crates/consul/src/lib.rs:
crates/consul/src/isis.rs:
crates/consul/src/net.rs:
crates/consul/src/order.rs:
crates/consul/src/sequencer.rs:
crates/consul/src/stats.rs:

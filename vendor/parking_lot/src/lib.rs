//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface this
//! workspace uses: an unpoisonable [`Mutex`] whose `lock()` returns the guard
//! directly, and a [`Condvar`] whose wait methods take `&mut MutexGuard`.
//! Poisoning is deliberately swallowed (parking_lot has no poisoning): a
//! panicking thread must not wedge every other replica in the simulation.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// Mutual exclusion primitive; `lock()` never fails and ignores poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar` can temporarily take the std guard by value.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable; wait methods reacquire the lock before returning.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Blocks until notified or the deadline `until` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        until: Instant,
    ) -> WaitTimeoutResult {
        let timeout = until.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Alias matching `std`'s naming, used by some call sites.
    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.wait_for(guard, timeout)
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock with the parking_lot API (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut g = m.lock();
            while !*g {
                c.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
